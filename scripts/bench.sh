#!/usr/bin/env sh
# VM hot-path benchmark, fully offline (no criterion, no registry
# dependencies). Builds the release `vmbench` binary and runs it:
#
#   sh scripts/bench.sh            # full run, writes BENCH_vm.json
#   sh scripts/bench.sh --smoke    # seconds-long harness check
#                                  # (writes target/BENCH_vm_smoke.json)
#   sh scripts/bench.sh --out P    # choose the JSON output path
#
# The full run measures instructions/sec on five workloads
# (tight-loop, call-heavy, memory-heavy, indirect-dispatch,
# PMA-crossing) across three engine tiers — superinstruction blocks
# with inline caches, the tier-1 fast path, and the everything-off
# baseline — plus attack attempts/sec on three harness workloads
# (aslr-bruteforce, canary-oracle, and fuzz-replay — a pre-mutated
# swsec-fuzz corpus served through the victim target) through the
# fork server vs per-attempt rebuild, a coverage-parity leg (per-input
# fingerprints must be byte-identical tiered vs tier-1, with tier 2
# and its inline caches demonstrably engaged), one campaign-service
# round (2000 simulated tenants behind the job queue, fork-served vs
# rebuilt, with p50/p99 job latency), and campaign wall time. It
# fails if the tight-loop fast-path speedup drops below 5x, the
# tier-2 speedup below 3x (tight-loop) / 2x (call-heavy,
# indirect-dispatch), any harness speedup below 10x, or the service
# speedup below 5x; --smoke runs the same workloads (harness and
# service ones included) at reduced sizes with a >1x floor.
#
# It also re-times the tight loop with event sinks attached (the
# telemetry overhead guard): an attached sink with no interests must
# cost within 3% of running with no sink at all, or the full run
# fails. The measured overheads land in BENCH_vm.json under
# "telemetry".
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline -p swsec-bench --bin vmbench
exec target/release/vmbench "$@"
