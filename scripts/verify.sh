#!/usr/bin/env sh
# Pre-merge verification, fully offline (the workspace has no registry
# dependencies; see DESIGN.md "Campaign API" / README "Offline builds").
#
#   sh scripts/verify.sh
#
# Runs, in order:
#   1. tier-1: release build + the root test suite (ROADMAP.md);
#   2. the full workspace test suite;
#   3. clippy over every target, warnings denied;
#   4. the VM benchmark harness in --smoke mode (scripts/bench.sh);
#   5. telemetry smoke: a quick campaign with the JSONL sink attached,
#      validated line-by-line by telcheck, and a render byte-identity
#      check against a sink-less run.
set -eu
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> workspace tests"
cargo test -q --offline --workspace

echo "==> clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> vmbench smoke"
sh scripts/bench.sh --smoke

echo "==> telemetry smoke"
cargo build -q --release --offline --example campaign
cargo build -q --release --offline -p swsec-obs --bin telcheck
TELDIR="target/telemetry-smoke"
mkdir -p "$TELDIR"
target/release/examples/campaign --quick --render-only \
    --telemetry "$TELDIR/campaign.jsonl" > "$TELDIR/render_with_sink.txt"
target/release/examples/campaign --quick --render-only \
    > "$TELDIR/render_no_sink.txt"
cmp "$TELDIR/render_with_sink.txt" "$TELDIR/render_no_sink.txt" || {
    echo "verify: render differs with telemetry sink attached" >&2
    exit 1
}
target/release/telcheck "$TELDIR/campaign.jsonl" \
    --require pma_violation --require canary_trip \
    --require metric --require meta

echo "verify: all checks passed"
