#!/usr/bin/env sh
# Pre-merge verification, fully offline (the workspace has no registry
# dependencies; see DESIGN.md "Campaign API" / README "Offline builds").
#
#   sh scripts/verify.sh
#
# Runs, in order:
#   1. tier-1: release build + the root test suite (ROADMAP.md);
#   2. the full workspace test suite;
#   3. clippy over every target, warnings denied;
#   4. the VM benchmark harness in --smoke mode (scripts/bench.sh).
set -eu
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> workspace tests"
cargo test -q --offline --workspace

echo "==> clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> vmbench smoke"
sh scripts/bench.sh --smoke

echo "verify: all checks passed"
