#!/usr/bin/env sh
# Pre-merge verification, fully offline (the workspace has no registry
# dependencies; see DESIGN.md "Campaign API" / README "Offline builds").
#
#   sh scripts/verify.sh
#
# Runs, in order:
#   1. tier-1: release build + the root test suite (ROADMAP.md);
#   2. the full workspace test suite;
#   3. clippy over every target, warnings denied;
#   4. the VM benchmark harness in --smoke mode (scripts/bench.sh);
#   5. telemetry smoke: a quick campaign with the JSONL sink attached,
#      validated line-by-line by telcheck, and a render byte-identity
#      check against a sink-less run;
#   6. snapshot smoke: the same quick campaign with --no-fork-server
#      must render byte-identically to the fork-served run (the
#      architectural-equivalence contract, DESIGN.md §10), and the
#      fork-served run's telemetry must carry vm.snapshot.* metrics;
#   7. tier smoke: the same quick campaign with --no-tier2 must render
#      byte-identically to the tiered run (tier 2 is a pure speedup,
#      DESIGN.md §12), and the tiered run's telemetry must carry
#      vm.tier2.* metrics — including the vm.tier2.ic_* inline-cache
#      counters — proving blocks actually compiled and ran;
#   8. fault-injection smoke: the E16 crash matrix standalone, plus a
#      --fault-demo run that must exit non-zero, report its failed
#      cells, and emit cell_failed telemetry;
#   9. fuzz smoke: the E18 coverage-guided campaign (swsec-fuzz) at a
#      fixed seed and budget must rediscover the E2 stack smash, see
#      zero fast-path-vs-baseline divergences, and render byte-identical
#      reports at 1 and 4 workers (deterministic findings contract,
#      DESIGN.md §11) and with --no-tier2 (the coverage feedback that
#      steers the campaign may not depend on the serving tier);
#  10. trace smoke: a quick campaign with spans and the sampling
#      profiler attached must render byte-identically to the plain run,
#      stream span records and vm.prof.* metrics into the telemetry
#      dump, export a structurally valid Chrome trace, and write a
#      non-empty .folded profile; the fuzz --profile pass must produce
#      a symbolized single-victim profile (DESIGN.md §13);
#  11. service smoke: a two-tenant campaign-service round must render
#      byte-identically at 1 vs 4 workers and fork-served vs rebuilt,
#      stream serve.* metrics and job spans into its telemetry dump,
#      never shed when the queue has room, and exit non-zero under
#      --saturate with typed shed/rejected outcomes in the report and
#      job_shed events in the telemetry (DESIGN.md §14).
set -eu
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> workspace tests"
cargo test -q --offline --workspace

echo "==> clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> vmbench smoke"
sh scripts/bench.sh --smoke

echo "==> telemetry smoke"
cargo build -q --release --offline --example campaign
cargo build -q --release --offline -p swsec-obs --bin telcheck
TELDIR="target/telemetry-smoke"
mkdir -p "$TELDIR"
target/release/examples/campaign --quick --render-only \
    --telemetry "$TELDIR/campaign.jsonl" > "$TELDIR/render_with_sink.txt"
target/release/examples/campaign --quick --render-only \
    > "$TELDIR/render_no_sink.txt"
cmp "$TELDIR/render_with_sink.txt" "$TELDIR/render_no_sink.txt" || {
    echo "verify: render differs with telemetry sink attached" >&2
    exit 1
}
target/release/telcheck "$TELDIR/campaign.jsonl" \
    --require pma_violation --require canary_trip \
    --require metric --require meta

echo "==> snapshot smoke"
# Fork-served and rebuild-per-attempt campaigns must render the same
# bytes: restored machines are architecturally identical to freshly
# built ones, and rendered reports exclude the (warm) cache counters.
target/release/examples/campaign --quick --render-only --no-fork-server \
    > "$TELDIR/render_no_fork.txt"
cmp "$TELDIR/render_with_sink.txt" "$TELDIR/render_no_fork.txt" || {
    echo "verify: render differs with the fork server disabled" >&2
    exit 1
}
# The fork-served run must have actually snapshotted and restored.
target/release/telcheck "$TELDIR/campaign.jsonl" \
    --require "metric:vm.snapshot.snapshots" \
    --require "metric:vm.snapshot.restores" \
    --require "metric:vm.snapshot.dirty_pages"

echo "==> tier smoke"
# Tier 2 must be semantically invisible: a campaign with the block
# engine disabled renders the same bytes as the tiered run...
target/release/examples/campaign --quick --render-only --no-tier2 \
    > "$TELDIR/render_no_tier2.txt"
cmp "$TELDIR/render_with_sink.txt" "$TELDIR/render_no_tier2.txt" || {
    echo "verify: render differs with tier 2 disabled" >&2
    exit 1
}
# ... while the tiered run must have actually compiled and served
# superinstruction blocks, and carried the inline-cache counters.
target/release/telcheck "$TELDIR/campaign.jsonl" \
    --require "metric:vm.tier2.blocks_compiled" \
    --require "metric:vm.tier2.block_hits" \
    --require "metric:vm.tier2.instructions" \
    --require "metric:vm.tier2.ic_hits" \
    --require "metric:vm.tier2.ic_misses" \
    --require "metric:vm.tier2.ic_installs" \
    --require "metric:vm.tier2.ic_megamorphic"

echo "==> fault-injection smoke"
FAULTDIR="target/fault-smoke"
mkdir -p "$FAULTDIR"
# The crash matrix alone: every CrashPoint x slot combination, the
# sealed-blob tampering probes, and the VM bit-flip cell must pass.
target/release/examples/campaign --quick --only 16 --render-only \
    > "$FAULTDIR/crash_matrix.txt"
grep -q "E16a" "$FAULTDIR/crash_matrix.txt" || {
    echo "verify: crash-matrix render is missing its tables" >&2
    exit 1
}
# The fault demo: cells panic and time out on purpose; the campaign
# must finish, name the failures, and exit non-zero.
if target/release/examples/campaign --fault-demo --quick \
    --telemetry "$FAULTDIR/fault_demo.jsonl" \
    > "$FAULTDIR/fault_demo.txt" 2> "$FAULTDIR/fault_demo.err"; then
    echo "verify: --fault-demo must exit non-zero on failed cells" >&2
    exit 1
fi
grep -q "failed cells" "$FAULTDIR/fault_demo.txt" || {
    echo "verify: --fault-demo did not render the failed-cells table" >&2
    exit 1
}
target/release/telcheck "$FAULTDIR/fault_demo.jsonl" \
    --require cell_failed --require metric --require meta

echo "==> fuzz smoke"
cargo build -q --release --offline -p swsec-fuzz --bin fuzz
FUZZDIR="target/fuzz-smoke"
mkdir -p "$FUZZDIR"
target/release/fuzz --seed 9 --workers 1 --render-only \
    > "$FUZZDIR/render_w1.txt"
target/release/fuzz --seed 9 --workers 4 --render-only \
    > "$FUZZDIR/render_w4.txt"
cmp "$FUZZDIR/render_w1.txt" "$FUZZDIR/render_w4.txt" || {
    echo "verify: fuzz render differs across worker counts" >&2
    exit 1
}
# Tier 2 (blocks, inline caches, in-block coverage) must be invisible
# to the campaign: same findings, same corpus growth, same bytes.
target/release/fuzz --seed 9 --workers 1 --render-only --no-tier2 \
    > "$FUZZDIR/render_no_tier2.txt"
cmp "$FUZZDIR/render_w1.txt" "$FUZZDIR/render_no_tier2.txt" || {
    echo "verify: fuzz render differs with tier 2 disabled" >&2
    exit 1
}
# The known-vulnerable victim must yield the exploit-path finding ...
grep -q "SECRET" "$FUZZDIR/render_w1.txt" || {
    echo "verify: fuzz smoke did not rediscover the E2 stack smash" >&2
    exit 1
}
grep -Eq "known exploit path rediscovered \(victim-smash\) +yes" \
    "$FUZZDIR/render_w1.txt" || {
    echo "verify: fuzz verdict table is missing the exploit row" >&2
    exit 1
}
# ... and the fast-path VM must agree with the baseline on every input.
grep -Eq "fast-path vs baseline divergences +0[[:space:]]*$" \
    "$FUZZDIR/render_w1.txt" || {
    echo "verify: fuzz smoke saw fast-vs-baseline divergences" >&2
    exit 1
}

echo "==> trace smoke"
TRACEDIR="target/trace-smoke"
mkdir -p "$TRACEDIR"
# Spans and the profiler ride the telemetry channel, so the rendering
# contract holds: the traced run's stdout is byte-identical to the
# plain run's. Interval 256: quick-campaign attempts are short and the
# sample countdown re-arms at every attempt boundary, so the stock
# 4096 would record nothing.
target/release/examples/campaign --quick --render-only \
    --spans --chrome "$TRACEDIR/trace.json" \
    --profile "$TRACEDIR/campaign.folded" --profile-interval 256 \
    --telemetry "$TRACEDIR/campaign.jsonl" > "$TRACEDIR/render_traced.txt"
cmp "$TELDIR/render_no_sink.txt" "$TRACEDIR/render_traced.txt" || {
    echo "verify: render differs with spans+profiler attached" >&2
    exit 1
}
target/release/telcheck "$TRACEDIR/campaign.jsonl" \
    --require span:campaign --require span:cell --require span:boot \
    --require "metric:vm.prof.*" \
    --chrome "$TRACEDIR/trace.json"
test -s "$TRACEDIR/campaign.folded" || {
    echo "verify: campaign profile is empty" >&2
    exit 1
}
# The single-victim profiling pass must symbolize: guest function
# names in the folded stacks, not just raw addresses.
target/release/fuzz --seed 9 --render-only \
    --profile "$TRACEDIR/victim.folded" > /dev/null
grep -q "main" "$TRACEDIR/victim.folded" || {
    echo "verify: victim profile is empty or unsymbolized" >&2
    exit 1
}

echo "==> service smoke"
cargo build -q --release --offline --example serve
SERVEDIR="target/serve-smoke"
mkdir -p "$SERVEDIR"
# The per-tenant report is architectural data: worker count and serve
# mode must not change a byte of it.
target/release/examples/serve --tenants 2 --jobs 4 --workers 1 --render-only \
    > "$SERVEDIR/render_w1.txt"
target/release/examples/serve --tenants 2 --jobs 4 --workers 4 --render-only \
    --telemetry "$SERVEDIR/serve.jsonl" > "$SERVEDIR/render_w4.txt"
target/release/examples/serve --tenants 2 --jobs 4 --workers 4 --rebuild \
    --render-only > "$SERVEDIR/render_rebuild.txt"
cmp "$SERVEDIR/render_w1.txt" "$SERVEDIR/render_w4.txt" || {
    echo "verify: service render differs across worker counts" >&2
    exit 1
}
cmp "$SERVEDIR/render_w1.txt" "$SERVEDIR/render_rebuild.txt" || {
    echo "verify: service render differs between fork and rebuild serving" >&2
    exit 1
}
# An idle-capacity run must not degrade anyone (shed-when-idle is the
# bug class this step pins down), and the round's telemetry must carry
# the service metrics and one job span per job.
if grep -Eq "shed|rejected" "$SERVEDIR/render_w1.txt"; then
    echo "verify: service shed or rejected jobs with queue capacity to spare" >&2
    exit 1
fi
target/release/telcheck "$SERVEDIR/serve.jsonl" \
    --require "metric:serve.rounds" --require "metric:serve.attempts" \
    --require "metric:serve.pool.hits" --require "metric:cache.hits" \
    --require span:job --require meta
# Saturation: a queue sized under the load must shed/reject with typed
# outcomes, emit job_shed telemetry, and make the run exit non-zero.
if target/release/examples/serve --tenants 3 --jobs 6 --saturate \
    --telemetry "$SERVEDIR/saturate.jsonl" \
    > "$SERVEDIR/render_saturate.txt" 2> "$SERVEDIR/saturate.err"; then
    echo "verify: --saturate must exit non-zero on degraded service" >&2
    exit 1
fi
grep -Eq "shed|rejected" "$SERVEDIR/render_saturate.txt" || {
    echo "verify: saturated service reported no typed shed/rejected outcomes" >&2
    exit 1
}
target/release/telcheck "$SERVEDIR/saturate.jsonl" --require job_shed

echo "verify: all checks passed"
