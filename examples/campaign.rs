//! Runs the full E1–E15 suite through the parallel campaign runner.
//!
//! ```sh
//! cargo run --release --example campaign -- \
//!     [--workers N] [--seed S] [--quick] [--progress] \
//!     [--telemetry out.jsonl] [--render-only]
//! ```
//!
//! Prints every experiment's report (byte-identical for any worker
//! count, with or without telemetry) followed by the run summary:
//! per-experiment busy time, the compile-cache counters, and the wall
//! clock. `--render-only` suppresses the summary, leaving exactly the
//! deterministic bytes on stdout.
//!
//! With `--telemetry PATH`, the run also streams a schema-v1 JSONL
//! dump to `PATH`: meta lines describing the run, one event line per
//! security event any machine in the campaign raised (faults, canary
//! trips, PMA violations, guard checks), and the final metric lines
//! (campaign counters, per-cell time histogram). `--progress` prints a
//! live per-cell progress line to stderr.

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

use swsec::campaign::{run_campaign_with, CampaignConfig, CampaignTelemetry};
use swsec_obs::jsonl::meta_line;
use swsec_obs::{clear_default_sink, set_default_sink, EventMask, JsonlSink, MetricsRegistry};

fn main() {
    let mut cfg = CampaignConfig::default();
    let mut telemetry_path: Option<String> = None;
    let mut progress = false;
    let mut render_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers takes a number");
            }
            "--seed" => {
                cfg.master_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a number");
            }
            "--quick" => {
                let workers = cfg.workers;
                let master_seed = cfg.master_seed;
                cfg = CampaignConfig {
                    workers,
                    master_seed,
                    ..CampaignConfig::quick()
                };
            }
            "--telemetry" => {
                telemetry_path = Some(args.next().expect("--telemetry takes a path"));
            }
            "--progress" => progress = true,
            "--render-only" => render_only = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: campaign [--workers N] [--seed S] [--quick] [--progress] \
                     [--telemetry out.jsonl] [--render-only]"
                );
                std::process::exit(2);
            }
        }
    }

    // Security events only: control transfers and syscalls at campaign
    // scale would dwarf the interesting lines.
    let security = EventMask::FAULT
        .union(EventMask::CANARY)
        .union(EventMask::PMA)
        .union(EventMask::GUARD);

    let mut telemetry = CampaignTelemetry::none();
    let mut sink = None;
    if let Some(path) = telemetry_path.as_deref() {
        let file = File::create(path)
            .unwrap_or_else(|e| panic!("cannot create telemetry file {path}: {e}"));
        let jsonl = Arc::new(JsonlSink::with_interests(
            Box::new(BufWriter::new(file)),
            security,
        ));
        jsonl.write_line(&meta_line("source", "examples/campaign"));
        jsonl.write_line(&meta_line("master_seed", &cfg.master_seed.to_string()));
        set_default_sink(jsonl.clone());
        let registry = Arc::new(MetricsRegistry::new());
        telemetry.metrics = Some(registry.clone());
        sink = Some((jsonl, registry));
    }
    if progress {
        telemetry = telemetry.on_progress(|p| {
            eprintln!(
                "[{:>3}/{:>3}] {} cell {} ({:.1}ms)",
                p.completed,
                p.total,
                p.experiment,
                p.cell,
                p.elapsed.as_secs_f64() * 1e3,
            );
        });
    }

    let report = run_campaign_with(&cfg, &telemetry);

    if let Some((sink, registry)) = sink {
        clear_default_sink();
        for line in registry.export_jsonl() {
            sink.write_line(&line);
        }
        sink.flush();
    }

    print!("{}", report.render());
    if !render_only {
        println!("{}", report.summary());
    }
}
