//! Runs the full E1–E16 suite through the parallel campaign runner.
//!
//! ```sh
//! cargo run --release --example campaign -- \
//!     [--workers N] [--seed S] [--quick] [--only N]... [--progress] \
//!     [--telemetry out.jsonl] [--render-only] [--fault-demo] \
//!     [--no-fork-server] [--no-tier2] [--spans] [--chrome out.json] \
//!     [--profile out.folded] [--profile-interval N]
//! ```
//!
//! Prints every experiment's report (byte-identical for any worker
//! count, with or without telemetry) followed by the run summary:
//! per-experiment busy time, the compile-cache counters, and the wall
//! clock. `--render-only` suppresses the summary, leaving exactly the
//! deterministic bytes on stdout. `--only N` (repeatable) restricts
//! the run to experiment N.
//!
//! With `--telemetry PATH`, the run also streams a schema-v1 JSONL
//! dump to `PATH`: meta lines describing the run, one event line per
//! security event any machine in the campaign raised (faults, canary
//! trips, PMA violations, guard checks, failed campaign cells), and
//! the final metric lines (campaign counters, per-cell time
//! histogram). `--progress` prints a live per-cell progress line to
//! stderr.
//!
//! `--no-fork-server` makes the guessing-attack experiments (E4, E14)
//! rebuild their victim machine for every attempt instead of serving
//! attempts from a boot-time snapshot. It exists to demonstrate — and
//! let CI verify — that the fork server is a pure speedup: stdout is
//! byte-identical with and without it.
//!
//! `--no-tier2` turns the VM's tier-2 superinstruction block engine
//! off for the whole campaign (every machine built after the switch).
//! Like `--no-fork-server`, it exists to demonstrate — and let CI
//! verify — that tier 2 is a pure speedup: stdout is byte-identical
//! with and without it (DESIGN.md §12).
//!
//! `--fault-demo` swaps the suite for the test-only fault-demo
//! experiment under a short cell deadline: its cells panic, stall and
//! flake on purpose, demonstrating the runner's containment, watchdog
//! and retry. Any run — demo or not — exits non-zero when a cell
//! failed, so CI can gate on campaign health.
//!
//! `--spans` records hierarchical spans (campaign/cell/compile/boot by
//! default) on deterministic per-slot tracks; with `--telemetry` they
//! are appended to the JSONL dump as `span` records, and `--chrome
//! FILE` (implies `--spans`) additionally exports a Chrome
//! `trace_event` JSON file loadable in Perfetto or `chrome://tracing`.
//! `--profile FILE` attaches a deterministic sampling profiler (every
//! 4096 retired instructions; override with `--profile-interval N`)
//! and writes the aggregated flamegraph-ready `.folded` stacks to
//! `FILE`. Campaign cells run many different programs at overlapping
//! layouts, so campaign-wide profiles render frames as raw `0x…`
//! addresses; `fuzz --profile` produces the symbolized single-victim
//! variant.

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;
use std::time::Duration;

use swsec::campaign::{
    run_campaign_on, run_campaign_with, CampaignConfig, CampaignReport, CampaignTelemetry,
};
use swsec::faults::FaultyExperiment;
use swsec::report::ExperimentId;
use swsec_obs::jsonl::{meta_line, span_line};
use swsec_obs::{
    clear_default_sink, set_default_sink, EventMask, JsonlSink, MetricsRegistry, SpanMask,
    SymbolTable,
};
use swsec_vm::profile::{Profiler, DEFAULT_INTERVAL};

fn main() {
    let mut cfg = CampaignConfig::default();
    let mut telemetry_path: Option<String> = None;
    let mut progress = false;
    let mut render_only = false;
    let mut fault_demo = false;
    let mut spans = false;
    let mut chrome_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut profile_interval = DEFAULT_INTERVAL;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers takes a number");
            }
            "--seed" => {
                cfg.master_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a number");
            }
            "--quick" => {
                let workers = cfg.workers;
                let master_seed = cfg.master_seed;
                let fork_server = cfg.fork_server;
                let experiments = std::mem::take(&mut cfg.experiments);
                cfg = CampaignConfig {
                    workers,
                    master_seed,
                    experiments,
                    fork_server,
                    ..CampaignConfig::quick()
                };
            }
            "--only" => {
                let n: u8 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--only takes an experiment number");
                cfg.experiments.push(ExperimentId::new(n));
            }
            "--telemetry" => {
                telemetry_path = Some(args.next().expect("--telemetry takes a path"));
            }
            "--progress" => progress = true,
            "--render-only" => render_only = true,
            "--fault-demo" => fault_demo = true,
            "--no-fork-server" => cfg.fork_server = false,
            "--no-tier2" => swsec_vm::cpu::set_default_tier2(false),
            "--spans" => spans = true,
            "--chrome" => {
                chrome_path = Some(args.next().expect("--chrome takes a path"));
            }
            "--profile" => {
                profile_path = Some(args.next().expect("--profile takes a path"));
            }
            "--profile-interval" => {
                profile_interval = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--profile-interval takes a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: campaign [--workers N] [--seed S] [--quick] [--only N]... \
                     [--progress] [--telemetry out.jsonl] [--render-only] [--fault-demo] \
                     [--no-fork-server] [--no-tier2] [--spans] [--chrome out.json] \
                     [--profile out.folded] [--profile-interval N]"
                );
                std::process::exit(2);
            }
        }
    }

    // Security events only: control transfers and syscalls at campaign
    // scale would dwarf the interesting lines. CELL rides along so a
    // telemetry dump always names the cells that failed.
    let security = EventMask::FAULT
        .union(EventMask::CANARY)
        .union(EventMask::PMA)
        .union(EventMask::GUARD)
        .union(EventMask::CELL);

    let mut telemetry = CampaignTelemetry::none();
    if chrome_path.is_some() {
        spans = true;
    }
    if spans {
        telemetry = telemetry.with_spans(SpanMask::DEFAULT);
    }
    let profiler = profile_path
        .as_ref()
        .map(|_| Arc::new(Profiler::new(profile_interval)));
    if let Some(prof) = &profiler {
        telemetry = telemetry.with_profiler(prof.clone());
    }
    let mut sink = None;
    if let Some(path) = telemetry_path.as_deref() {
        let file = File::create(path)
            .unwrap_or_else(|e| panic!("cannot create telemetry file {path}: {e}"));
        let jsonl = Arc::new(JsonlSink::with_interests(
            Box::new(BufWriter::new(file)),
            security,
        ));
        jsonl.write_line(&meta_line("source", "examples/campaign"));
        jsonl.write_line(&meta_line("master_seed", &cfg.master_seed.to_string()));
        set_default_sink(jsonl.clone());
        let registry = Arc::new(MetricsRegistry::new());
        telemetry.metrics = Some(registry.clone());
        sink = Some((jsonl, registry));
    }
    if progress {
        telemetry = telemetry.on_progress(|p| {
            eprintln!(
                "[{:>3}/{:>3}] {} cell {} ({:.1}ms){}",
                p.completed,
                p.total,
                p.experiment,
                p.cell,
                p.elapsed.as_secs_f64() * 1e3,
                if p.ok { "" } else { " FAILED" },
            );
        });
    }

    let report: CampaignReport = if fault_demo {
        // A deadline far under the demo's ~2 s stall cell, so the
        // watchdog visibly trips; everything else is unaffected.
        cfg.cell_deadline = Duration::from_millis(250);
        run_campaign_on(&cfg, &[FaultyExperiment::fresh()], &telemetry)
    } else {
        run_campaign_with(&cfg, &telemetry)
    };

    if let Some((sink, registry)) = sink {
        clear_default_sink();
        for (_, records) in &report.spans {
            for record in records {
                sink.write_line(&span_line(record));
            }
        }
        for line in registry.export_jsonl() {
            sink.write_line(&line);
        }
        sink.flush();
        // The fork-server economy, at a glance: how many attempts were
        // served from the snapshot and what each restore cost.
        let mean_dirty = match report.vm.mean_dirty_pages() {
            Some(mean) => format!("{mean:.1}"),
            None => "n/a".to_string(),
        };
        eprintln!(
            "campaign: vm snapshot/restore: {} snapshots, {} restores, \
             {} dirty pages/restore mean, {} bytes copied",
            report.vm.snapshots, report.vm.restores, mean_dirty, report.vm.restore_bytes,
        );
    }

    if let Some(path) = chrome_path.as_deref() {
        let json = swsec_obs::span::chrome_trace(&report.spans, &[]);
        std::fs::write(path, json)
            .unwrap_or_else(|e| panic!("cannot write chrome trace {path}: {e}"));
    }
    if let (Some(path), Some(prof)) = (profile_path.as_deref(), &profiler) {
        // Campaign cells run many different programs at overlapping
        // layouts, so the aggregated profile stays at raw addresses —
        // symbolizing against any one program's table would lie about
        // all the others.
        std::fs::write(path, prof.folded(&SymbolTable::empty()))
            .unwrap_or_else(|e| panic!("cannot write profile {path}: {e}"));
    }
    print!("{}", report.render());
    if !render_only {
        println!("{}", report.summary());
    }
    if !report.all_ok() {
        eprintln!(
            "campaign: {} cell(s) failed — see the failed-cells table",
            report.failed_cells().len()
        );
        std::process::exit(1);
    }
}
