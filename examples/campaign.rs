//! Runs the full E1–E15 suite through the parallel campaign runner.
//!
//! ```sh
//! cargo run --release --example campaign -- [--workers N] [--seed S] [--quick]
//! ```
//!
//! Prints every experiment's report (byte-identical for any worker
//! count) followed by the run summary: per-experiment busy time, the
//! compile-cache counters, and the wall clock.

use swsec::campaign::{run_campaign, CampaignConfig};

fn main() {
    let mut cfg = CampaignConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers takes a number");
            }
            "--seed" => {
                cfg.master_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a number");
            }
            "--quick" => {
                let workers = cfg.workers;
                let master_seed = cfg.master_seed;
                cfg = CampaignConfig {
                    workers,
                    master_seed,
                    ..CampaignConfig::quick()
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: campaign [--workers N] [--seed S] [--quick]");
                std::process::exit(2);
            }
        }
    }

    let report = run_campaign(&cfg);
    print!("{}", report.render());
    println!("{}", report.summary());
}
