//! Return-oriented programming end to end: scan a real binary for
//! gadgets (including *unintended* ones hiding inside immediates),
//! build a chain, and execute it past DEP.
//!
//! ```text
//! cargo run --example rop_attack
//! ```

use swsec::prelude::*;
use swsec_attacks::{GadgetFinder, Payload, RopChain};
use swsec_minc::{compile, parse, CompileOptions};
use swsec_vm::isa::{Instr, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let victim_src = swsec::attacker::VICTIM_SMASH;
    let unit = parse(victim_src)?;

    // The attacker's local copy of the binary.
    let local = compile(&unit, &CompileOptions::default())?;
    println!(
        "victim text: {} bytes at {:#010x}",
        local.text.len(),
        local.text_base
    );

    // Gadget discovery: decode from every byte offset.
    let finder = GadgetFinder::scan(&local.text, local.text_base, 3);
    println!("\n=== discovered gadgets (≤3 instructions, ending in ret) ===");
    for g in finder.gadgets().iter().take(12) {
        println!("  {g}");
    }
    println!("  … {} total", finder.gadgets().len());

    let pop_r0 = finder.pop_ret(Reg::R0).expect("a pop r0; ret gadget exists");
    println!("\nchosen: pop r0; ret @ {pop_r0:#010x} (hides inside a movi immediate!)");

    let exit_gadget = swsec_attacks::find_instr_addr(&local.text, local.text_base, |i| {
        matches!(i, Instr::Sys(0))
    })
    .expect("an exit syscall exists");
    println!("chosen: sys exit    @ {exit_gadget:#010x} (the tail of _start)");

    // Chain: r0 <- 0x1337, then "return" into sys exit.
    let chain = RopChain::new()
        .word(pop_r0)
        .word(0x1337)
        .word(exit_gadget);
    println!("\nchain: {:08x?}", chain.words());

    // Embed the chain in an overflow payload and fire it at a
    // DEP-protected victim (injected *code* would be stopped; reused
    // code is not).
    let smash = Payload::smash(&local.frames["handle"], "buf", chain.words()[0])
        .expect("buf exists");
    let mut payload = smash.build();
    payload.extend_from_slice(&chain.build()[4..]);

    let mut dep = DefenseConfig::none();
    dep.dep = true;
    let mut session = launch(&unit, dep, 9)?;
    session.machine.io_mut().feed_input(0, &payload);
    let outcome = session.run(1_000_000);
    println!("\nunder DEP: {outcome}  ← the attacker-chosen exit code, via reused code only");

    // The same chain dies against the hardware shadow stack.
    let mut shadow = dep;
    shadow.shadow_stack = true;
    let result = run_technique(Technique::Rop, shadow, 9)?;
    println!("under DEP+shadow stack: {}", result.outcome);

    Ok(())
}
