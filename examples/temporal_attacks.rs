//! Temporal-safety attacks: dangling stack frames (implicit
//! deallocation) and use-after-free on the heap (explicit
//! deallocation), with the quarantine-allocator mitigation.
//!
//! ```text
//! cargo run --example temporal_attacks
//! ```

use swsec::experiments::heap_uaf;
use swsec_minc::interp::{self, InterpOutcome};
use swsec_minc::parse;

fn main() {
    // The implicit case: a pointer into a dead frame.
    let dangling = "int *escape() { int local = 7; return &local; }\n\
                    void main() { int *p = escape(); exit(*p); }";
    let unit = parse(dangling).unwrap();
    let r = interp::run(&unit, &[], 100_000);
    println!("dangling stack frame, source semantics:");
    match r.outcome {
        InterpOutcome::Trap(v) => println!("  trap: {v}\n"),
        other => println!("  {other:?}\n"),
    }

    // The explicit case: the use-after-free experiment, end to end.
    let report = heap_uaf::compute();
    println!("{}", report.table());
    println!("source semantics for the attack input: {}", report.source_verdict);
    println!();
    println!("victim source:\n{}", heap_uaf::VICTIM_UAF);
}
