//! Drive the campaign service: multi-tenant job queue, warm
//! fork-server pools, typed degradation.
//!
//! ```text
//! cargo run --release --example serve -- \
//!     [--tenants N] [--jobs N] [--attempts N] [--workers N] [--seed S] \
//!     [--queue N] [--rebuild] [--saturate] [--spans] \
//!     [--telemetry out.jsonl] [--render-only]
//! ```
//!
//! Registers `--tenants` sessions (distinct seed namespaces,
//! staggered priorities), submits `--jobs` attack-attempt jobs per
//! tenant against the stock smash victim under a rotating set of
//! defense stacks (so the warm pool holds several keys), runs one
//! service round, and prints the deterministic per-tenant report —
//! byte-identical at any `--workers` count and with or without
//! `--rebuild` (snapshot-serving vs rebuild-per-attempt).
//!
//! `--saturate` shrinks the queue below the submitted load so
//! admission control visibly sheds and rejects; the process then
//! exits non-zero (degraded service is a reportable condition), which
//! the verify.sh smoke relies on. With `--telemetry PATH`, the run
//! streams shed events to a schema-v1 JSONL file and appends the
//! round's spans and `serve.*` / `cache.*` / `vm.*` metric windows —
//! `telcheck` validates the result.

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

use swsec::serve::{CampaignService, JobSpec, ServeConfig, ServeTelemetry, TenantConfig};
use swsec_defenses::DefenseConfig;
use swsec_obs::jsonl::{meta_line, span_line};
use swsec_obs::{
    clear_default_sink, set_default_sink, EventMask, JsonlSink, MetricsRegistry, SpanMask,
};
use swsec_rng::derive;

fn main() {
    let mut tenants = 2usize;
    let mut jobs = 4u32;
    let mut attempts = 32u32;
    let mut master_seed = 0x5EC5EED_u64;
    let mut cfg = ServeConfig::default();
    let mut saturate = false;
    let mut spans = false;
    let mut render_only = false;
    let mut telemetry_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tenants" => {
                tenants = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tenants takes a number");
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs takes a number");
            }
            "--attempts" => {
                attempts = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--attempts takes a number");
            }
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers takes a number");
            }
            "--seed" => {
                master_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a number");
            }
            "--queue" => {
                cfg.queue_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queue takes a number");
            }
            "--rebuild" => cfg.fork_server = false,
            "--saturate" => saturate = true,
            "--spans" => spans = true,
            "--render-only" => render_only = true,
            "--telemetry" => {
                telemetry_path = Some(args.next().expect("--telemetry takes a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: serve [--tenants N] [--jobs N] [--attempts N] [--workers N] \
                     [--seed S] [--queue N] [--rebuild] [--saturate] [--spans] \
                     [--telemetry out.jsonl] [--render-only]"
                );
                std::process::exit(2);
            }
        }
    }
    let tenants = tenants.max(1);
    if saturate {
        // A queue well under the submitted load, so admission control
        // must shed lower-priority tenants and reject the overflow.
        cfg.queue_capacity = ((tenants as u32 * jobs) / 3).max(1) as usize;
    }

    let mut telemetry = ServeTelemetry::default();
    if spans || telemetry_path.is_some() {
        telemetry.spans = Some(SpanMask::DEFAULT.union(SpanMask::JOB));
    }
    let mut sink = None;
    if let Some(path) = telemetry_path.as_deref() {
        let file = File::create(path)
            .unwrap_or_else(|e| panic!("cannot create telemetry file {path}: {e}"));
        // Security events plus the service's degradation signal: a
        // shed or rejected job is precisely the kind of silent quality
        // loss telemetry exists to surface.
        let interests = EventMask::FAULT
            .union(EventMask::CANARY)
            .union(EventMask::PMA)
            .union(EventMask::GUARD)
            .union(EventMask::SHED);
        let jsonl = Arc::new(JsonlSink::with_interests(
            Box::new(BufWriter::new(file)),
            interests,
        ));
        jsonl.write_line(&meta_line("source", "examples/serve"));
        jsonl.write_line(&meta_line("master_seed", &master_seed.to_string()));
        set_default_sink(jsonl.clone());
        let registry = Arc::new(MetricsRegistry::new());
        telemetry.metrics = Some(registry.clone());
        sink = Some((jsonl, registry));
    }

    // Rotating defense stacks, so the warm pool holds several
    // (program, options, config) keys instead of one hot entry.
    let stacks = [
        DefenseConfig::none(),
        DefenseConfig {
            canary: true,
            ..DefenseConfig::none()
        },
        DefenseConfig::modern(8),
    ];

    let mut svc = CampaignService::new(cfg);
    let ids: Vec<_> = (0..tenants)
        .map(|t| {
            svc.register_tenant(TenantConfig {
                name: format!("tenant-{t}"),
                seed: derive(master_seed, &[t as u64]),
                // Staggered priorities make --saturate shedding
                // deterministic and visible: tenant 0 is the least
                // important, the last tenant the most.
                priority: (t % 8) as u8,
                quota: jobs as usize,
            })
        })
        .collect();
    for j in 0..jobs {
        for (t, id) in ids.iter().enumerate() {
            let spec = JobSpec {
                attempts,
                ..JobSpec::new(
                    swsec::attacker::VICTIM_SMASH,
                    stacks[(t + j as usize) % stacks.len()],
                )
            };
            // Rejections are recorded in the report (and counted
            // below); the submit error itself needs no extra handling.
            let _ = svc.submit(*id, spec);
        }
    }

    let round = svc.run_with(&telemetry);

    if let Some((sink, registry)) = sink {
        clear_default_sink();
        for (_, records) in &round.spans {
            for record in records {
                sink.write_line(&span_line(record));
            }
        }
        for line in registry.export_jsonl() {
            sink.write_line(&line);
        }
        sink.flush();
    }

    print!("{}", svc.render());
    if !render_only {
        println!("{}", round.summary_line());
        let lat = svc.job_latency();
        println!(
            "serve latency: p50 <= {} us, p99 <= {} us over {} jobs",
            lat.quantile_upper_bound(0.50),
            lat.quantile_upper_bound(0.99),
            lat.count(),
        );
    }
    let totals = svc.totals();
    let degraded = totals.degraded() + totals.jobs_failed;
    if degraded > 0 {
        eprintln!(
            "serve: {} job(s) shed/rejected/failed — degraded service",
            degraded
        );
        std::process::exit(1);
    }
}
