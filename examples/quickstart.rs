//! Quickstart: compile a tiny MinC server, attack it, defend it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the arc of the paper in five minutes: a vulnerable program,
//! a working exploit, and the countermeasure that stops it — with the
//! observational-equivalence harness judging each run against the
//! source-code specification.

use swsec::prelude::*;
use swsec_minc::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A network echo server with the classic §III-A spatial bug: it
    // reads up to 64 bytes into a 16-byte stack buffer.
    let source = "\
void main() {\n\
    char buf[16];\n\
    int n = read(0, buf, 64);\n\
    write(1, \"thanks!\", 7);\n\
}\n";
    let unit = parse(source)?;

    println!("=== the program ===\n{source}");

    // 1. Benign input: the compiled program behaves exactly as the
    //    source specifies.
    let benign = compare(&unit, b"hello", DefenseConfig::none(), 7, 1_000_000)?;
    println!("benign input        → {}", benign.verdict);

    // 2. An overflowing request on the unprotected platform: the
    //    machine diverges from the source semantics.
    let smash = vec![0x41u8; 64];
    let attacked = compare(&unit, &smash, DefenseConfig::none(), 7, 1_000_000)?;
    println!("64-byte overflow    → {}", attacked.verdict);

    // 3. The canonical attack suite vs escalating defenses.
    println!("\n=== return-to-libc vs escalating defenses ===");
    let mut canary = DefenseConfig::none();
    canary.canary = true;
    for (name, config) in [
        ("no defenses", DefenseConfig::none()),
        ("stack canary", canary),
        ("canary+DEP+ASLR", DefenseConfig::modern(8)),
    ] {
        let result = run_technique(Technique::Ret2Libc, config, 42)?;
        println!("{name:<16} → {}", result.outcome);
    }

    // 4. And the paper's sobering point: data-only attacks slip past
    //    the whole modern stack.
    let data_only = run_technique(Technique::DataOnly, DefenseConfig::modern(8), 42)?;
    println!("\ndata-only vs canary+DEP+ASLR → {}", data_only.outcome);

    Ok(())
}
