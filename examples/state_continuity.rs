//! State continuity (§IV-C): the rollback attack against the PIN
//! vault, and crash-injection liveness for the three storage schemes.
//!
//! ```text
//! cargo run --example state_continuity
//! ```

use swsec::experiments::continuity::{self, Scheme};

fn main() {
    let report = continuity::compute();
    for table in report.tables() {
        println!("{table}");
    }

    println!("narrative:");
    for (scheme, result) in &report.rollback {
        match scheme {
            Scheme::Naive => println!(
                "  naive sealing:     the attacker replayed the fresh state before every \
                 guess and recovered the PIN in {} guesses — sealing alone has no freshness.",
                result.guesses
            ),
            Scheme::Counter => println!(
                "  monotonic counter: the first true replay was rejected as stale \
                 (guesses burned: {}).",
                result.guesses
            ),
            Scheme::TwoPhase => println!(
                "  two-phase:         rejected the rollback just the same (guesses \
                 burned: {}), and unlike the bare counter it also survives crashes.",
                result.guesses
            ),
        }
    }
}
