//! The machine-code attacker vs the Figure 2 secret module: scraping,
//! the protected-module access-control rules, the Figure 4 secure-
//! compilation attack, and remote attestation.
//!
//! ```text
//! cargo run --example protected_module
//! ```

use swsec::experiments::{attest, fig4, pma_rules, scraping, strict_reentry};

fn main() {
    // E7: memory scraping with and without PMA protection.
    println!("{}", scraping::compute().table());

    // E8: the three access-control rules, exhaustively.
    let rules = pma_rules::compute();
    println!("{}", rules.table());
    println!("end-to-end demonstrations:");
    for (name, outcome, ok) in &rules.vm_demos {
        println!("  {name:<32} {outcome} {}", if *ok { "✓" } else { "✗" });
    }
    println!();

    // E9: the Figure 4 function-pointer attack vs secure compilation.
    for table in fig4::compute().tables() {
        println!("{table}");
    }

    // E10: remote attestation.
    println!("{}", attest::compute().table());

    // E13: the full secure-compilation scheme under the strict
    // EntryPointsOnly policy (continuation stack + return entry).
    println!("{}", strict_reentry::compute().table());
}
