//! The classic stack smash with direct code injection, step by step —
//! the paper's §III-B walk-through, plus Figure 1's three panels.
//!
//! ```text
//! cargo run --example stack_smashing
//! ```

use swsec::experiments::fig1;
use swsec::prelude::*;
use swsec_attacks::Payload;
use swsec_minc::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1 first: the anatomy the attack exploits.
    let fig1 = fig1::compute(swsec::cache::global(), 1);
    println!("=== Figure 1(b): machine code of process() ===");
    println!("{}", fig1.listing);
    println!("{}", fig1.snapshot);

    // Now the smash. The attacker's local copy of the victim tells them
    // the frame geometry.
    let victim_src = swsec::attacker::VICTIM_SMASH;
    println!("=== the victim ===\n{victim_src}");
    let unit = parse(victim_src)?;
    let mut session = launch(&unit, DefenseConfig::none(), 1)?;
    let buf_addr = session.local_addr(&[("main", 0), ("handle", 1)], "buf")?;
    println!("attacker computes: buf will live at {buf_addr:#010x}");

    // Build shellcode that runs *from the buffer* and announces itself,
    // then a payload that overwrites the saved return address with the
    // buffer's own address.
    let shellcode =
        swsec_attacks::shellcode::write_shellcode(buf_addr, 1, b"PWNED by shellcode\n", 0x1337);
    let frame = session.program.frames["handle"].clone();
    let payload = Payload::smash_with_shellcode(&frame, "buf", buf_addr, &shellcode)
        .expect("shellcode fits the buffer")
        .build();
    println!(
        "payload: {} bytes = {} shellcode + filler + saved-bp + return address",
        payload.len(),
        shellcode.len()
    );

    session.machine.io_mut().feed_input(0, &payload);
    let outcome = session.run(1_000_000);
    println!("\nvictim outcome: {outcome}");
    println!(
        "victim output:  {:?}",
        String::from_utf8_lossy(session.machine.io().output(1))
    );

    // Same payload, platform with DEP: the injected bytes are data and
    // data is not executable.
    let mut dep = DefenseConfig::none();
    dep.dep = true;
    let mut session = launch(&unit, dep, 1)?;
    session.machine.io_mut().feed_input(0, &payload);
    println!("\nwith DEP:       {}", session.run(1_000_000));

    // Same payload, canary compile: detected before the return.
    let mut canary = DefenseConfig::none();
    canary.canary = true;
    let result = run_technique(Technique::CodeInjection, canary, 1)?;
    println!("with canaries:  {}", result.outcome);

    Ok(())
}
