//! Regenerates the full experiment tables of the reproduction: the
//! E2 catalogue, the E3 attack × countermeasure matrix, the E4 ASLR
//! sweep, the E5 overhead table and the E6 analysis table.
//!
//! ```text
//! cargo run --release --example defense_matrix
//! ```

// Exercises the legacy per-experiment entry points, kept as
// deprecated wrappers around the campaign API.
#![allow(deprecated)]

use swsec::experiments::{analysis, aslr, canary_oracle, catalogue, matrix, overhead};

fn main() {
    for table in catalogue::run(42).tables() {
        println!("{table}");
    }

    println!("{}", matrix::run(42).table());

    // Keep the sweep small outside --release; the bench harness runs
    // the full version.
    println!("{}", aslr::run(&[2, 4, 6], 5, 7).table());

    println!("{}", overhead::run().table());

    println!("{}", analysis::run().table());

    // E14: the crash-oracle canary brute force against a forking server.
    println!("{}", canary_oracle::run(31).table());
}
