//! Regenerates the full experiment tables of the reproduction: the
//! E2 catalogue, the E3 attack × countermeasure matrix, the E4 ASLR
//! sweep, the E5 overhead table and the E6 analysis table.
//!
//! ```text
//! cargo run --release --example defense_matrix
//! ```

use swsec::cache;
use swsec::experiments::{analysis, aslr, canary_oracle, catalogue, matrix, overhead};
use swsec::harness::ServeMode;

fn main() {
    // One process-wide compile cache: every victim/options pair below
    // compiles exactly once across all five experiments.
    let cache = cache::global();

    for table in catalogue::compute(42, cache).tables() {
        println!("{table}");
    }

    println!("{}", matrix::compute(42, cache).table());

    // Keep the sweep small outside --release; the bench harness runs
    // the full version.
    println!("{}", aslr::compute(&[2, 4, 6], 5, 7, cache, ServeMode::Fork).table());

    println!("{}", overhead::compute().table());

    println!("{}", analysis::compute().table());

    // E14: the crash-oracle canary brute force against a forking server.
    println!("{}", canary_oracle::compute(31, 2048, cache, ServeMode::Fork).table());
}
