//! Differential audit of `Machine::snapshot` / `restore_from`.
//!
//! The fork-server contract is that a restored machine is
//! *architecturally* indistinguishable from a freshly built one: same
//! outcomes, same registers, same memory, same I/O, and the same
//! [`ExecStats::architectural`] projection, with the fast path on or
//! off. The cache counters are the deliberate exception — a restore
//! keeps the icache and TLBs warm (that is where its speed comes
//! from), and rendered reports already exclude them.
//! These tests drive that contract through the public `Machine` API,
//! plus the cost side of the bargain: a restore copies exactly the
//! pages dirtied since the snapshot, observable both in the returned
//! `RestoreStats` and in the process-wide `vm.snapshot.*` counters.

use std::sync::Mutex;

use swsec_vm::cpu::{Machine, RunOutcome};
use swsec_vm::isa::{sys, AluOp, Cond, Instr, Reg, ALL_REGS};
use swsec_vm::mem::{Perm, RestoreStats, PAGE_SIZE};
use swsec_vm::policy::{ProtectedRegion, ProtectionMap};
use swsec_vm::trace::ExecStats;

const TEXT: u32 = 0x1000;
const DATA: u32 = 0x0020_0000;
const MODULE: u32 = 0x0040_0000;
const MDATA: u32 = 0x0041_0000;
const STACK_TOP: u32 = 0xbfff_f000;

/// The `vm.snapshot.*` counters are process-wide; tests in this binary
/// run on sibling threads and every restore bumps them. Counter-delta
/// assertions hold this lock, and so does every other test that
/// restores, so the deltas observe only their own machine.
static COUNTERS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COUNTERS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Resolves an instruction index to its address during assembly.
type AddrOf<'a> = &'a dyn Fn(usize) -> u32;

/// Two-pass assembly at `base`: instruction lengths are fixed per
/// opcode, so the first-pass layout is exact.
fn assemble_at(base: u32, build: &dyn Fn(AddrOf) -> Vec<Instr>) -> Vec<u8> {
    let draft = build(&|_| base);
    let mut addrs = Vec::with_capacity(draft.len());
    let mut off = 0u32;
    for i in &draft {
        addrs.push(base + off);
        let mut b = Vec::new();
        i.encode(&mut b);
        off += b.len() as u32;
    }
    let mut out = Vec::new();
    for i in &build(&|idx| addrs[idx]) {
        i.encode(&mut out);
    }
    out
}

/// A machine mapped with text (at `text_perm`), data and stack, code
/// poked at `TEXT`.
fn machine_with(text_perm: Perm, code: &[u8]) -> Machine {
    let mut m = Machine::new();
    m.mem_mut().map(TEXT, 0x1000, text_perm).expect("map text");
    m.mem_mut().map(DATA, 0x2000, Perm::RW).expect("map data");
    m.mem_mut()
        .map(STACK_TOP - 0x4000, 0x4000, Perm::RW)
        .expect("map stack");
    m.mem_mut().poke_bytes(TEXT, code).expect("load text");
    m.set_reg(Reg::Sp, STACK_TOP);
    m.set_ip(TEXT);
    m
}

/// Everything architecturally observable about a finished run:
/// outcome, every register, the architectural `ExecStats` projection
/// (cache counters excluded — restores keep caches warm), the I/O
/// bus, and every byte of every mapped region.
type Fingerprint = (
    RunOutcome,
    Vec<u32>,
    ExecStats,
    Vec<(u32, Vec<u8>)>,
    Vec<Vec<u8>>,
);

fn fingerprint(m: &Machine, outcome: RunOutcome) -> Fingerprint {
    let regs = ALL_REGS.iter().map(|&r| m.reg(r)).collect();
    let mem = m
        .mem()
        .regions()
        .into_iter()
        .map(|(range, _)| {
            m.mem()
                .peek_bytes(range.start, range.end - range.start)
                .expect("mapped region is peekable")
        })
        .collect();
    (outcome, regs, m.stats().architectural(), m.io().observable(), mem)
}

/// Reads 8 bytes from fd 0, byte-sums them through a loop, round-trips
/// the sum through a leaf call, stores it, writes 4 bytes back on fd 1
/// and exits with the sum: loads, stores, calls, stack traffic,
/// syscalls and I/O all in one program.
fn busy_program() -> Vec<u8> {
    assemble_at(TEXT, &|at| {
        vec![
            Instr::MovI { dst: Reg::R0, imm: 0 },    // 0: fd 0
            Instr::MovI { dst: Reg::R1, imm: DATA }, // 1: buf
            Instr::MovI { dst: Reg::R2, imm: 8 },    // 2: len
            Instr::Sys(sys::READ),                   // 3
            Instr::MovI { dst: Reg::R3, imm: 0 },    // 4: acc
            Instr::MovI { dst: Reg::R4, imm: 8 },    // 5: counter
            Instr::MovI { dst: Reg::R1, imm: DATA }, // 6
            Instr::LoadB { dst: Reg::R5, base: Reg::R1, disp: 0 }, // 7: loop head
            Instr::Alu { op: AluOp::Add, dst: Reg::R3, src: Reg::R5 }, // 8
            Instr::AddI { dst: Reg::R1, imm: 1 },    // 9
            Instr::AddI { dst: Reg::R4, imm: (-1i32) as u32 }, // 10
            Instr::CmpI { a: Reg::R4, imm: 0 },      // 11
            Instr::JCond { cond: Cond::Nz, target: at(7) }, // 12
            Instr::Call(at(21)),                     // 13: leaf
            Instr::MovI { dst: Reg::R1, imm: DATA }, // 14
            Instr::Store { base: Reg::R1, disp: 0x100, src: Reg::R3 }, // 15
            Instr::MovI { dst: Reg::R0, imm: 1 },    // 16: fd 1
            Instr::MovI { dst: Reg::R2, imm: 4 },    // 17
            Instr::Sys(sys::WRITE),                  // 18
            Instr::Mov { dst: Reg::R0, src: Reg::R3 }, // 19
            Instr::Sys(sys::EXIT),                   // 20
            Instr::Enter(16),                        // 21: leaf
            Instr::Push(Reg::R3),
            Instr::Pop(Reg::R6),
            Instr::Leave,
            Instr::Ret,
        ]
    })
}

#[test]
fn restored_run_matches_fresh_run_bit_for_bit() {
    let _g = lock();
    const INPUT: &[u8] = b"\x01\x02\x03\x04\x05\x06\x07\x08";
    for fast in [true, false] {
        // Reference: a freshly built machine, run once.
        let mut fresh = machine_with(Perm::RX, &busy_program());
        fresh.set_fast_path(fast);
        fresh.io_mut().feed_input(0, INPUT);
        let outcome = fresh.run(10_000);
        assert_eq!(outcome, RunOutcome::Halted(36), "fast={fast}");
        let reference = fingerprint(&fresh, outcome);

        // Candidate: snapshot at boot, then serve two attempts from it.
        let mut m = machine_with(Perm::RX, &busy_program());
        m.set_fast_path(fast);
        let snap = m.snapshot();
        for attempt in 0..2 {
            if attempt > 0 {
                m.restore_from(&snap);
            }
            m.io_mut().feed_input(0, INPUT);
            let outcome = m.run(10_000);
            assert_eq!(
                fingerprint(&m, outcome),
                reference,
                "fast={fast} attempt={attempt}"
            );
        }
    }
}

#[test]
fn self_modifying_code_replays_identically_after_restore() {
    let _g = lock();
    // The program overwrites its own upcoming instruction (a nop at
    // index 3) with `halt`, so it never reaches the `exit 42` behind
    // it. The snapshot is taken *mid-run*, after the fetch pipeline
    // has seen the original bytes, and the restore must both put the
    // nop back and drop the patched decode.
    let halt_byte = {
        let mut b = Vec::new();
        Instr::Halt.encode(&mut b);
        b[0]
    };
    let code = assemble_at(TEXT, &|at| {
        vec![
            Instr::MovI { dst: Reg::R1, imm: at(3) },
            Instr::MovI { dst: Reg::R2, imm: u32::from(halt_byte) },
            Instr::StoreB { base: Reg::R1, disp: 0, src: Reg::R2 },
            Instr::Nop, // 3: becomes `halt`
            Instr::MovI { dst: Reg::R0, imm: 42 },
            Instr::Sys(sys::EXIT),
        ]
    });
    let mut m = machine_with(Perm::RWX, &code);
    // Two steps in: both movi executed, the store not yet. R1 holds
    // the patch target the assembler resolved.
    for _ in 0..2 {
        m.step();
    }
    let patch_addr = m.reg(Reg::R1);
    assert!(patch_addr > TEXT && patch_addr < TEXT + 0x100, "{patch_addr:#x}");
    let snap = m.snapshot();

    let first = m.run(100);
    assert_eq!(first, RunOutcome::Halted(0), "patched halt, not exit 42");
    assert_eq!(
        m.mem().peek_bytes(patch_addr, 1).unwrap()[0],
        halt_byte,
        "the run really did patch its code"
    );

    let restore = m.restore_from(&snap);
    assert!(restore.dirty_pages >= 1, "the patched text page was dirty");
    assert_ne!(
        m.mem().peek_bytes(patch_addr, 1).unwrap()[0],
        halt_byte,
        "restore put the original nop back"
    );
    let second = m.run(100);
    assert_eq!(second, first);
    let second_stats = m.stats();

    // The first continuation ran with state warmed by the two
    // pre-snapshot steps; restored attempts all start from the same
    // steady state, so it is the restored attempts that are
    // counter-exact with *each other* — architecturally and, once the
    // cache warmth has converged, even on the cache counters.
    m.restore_from(&snap);
    let third = m.run(100);
    assert_eq!(third, first);
    assert_eq!(
        m.stats().architectural(),
        second_stats.architectural(),
        "restored replays are counter-exact"
    );
}

#[test]
fn dep_fault_reproduces_identically_after_restore() {
    let _g = lock();
    // A store into the RX text segment: the DEP check faults the
    // machine. Restored attempts must produce the identical fault at
    // the identical point with identical stats.
    let code = assemble_at(TEXT, &|_| {
        vec![
            Instr::MovI { dst: Reg::R1, imm: TEXT },
            Instr::MovI { dst: Reg::R2, imm: 0xdead },
            Instr::Store { base: Reg::R1, disp: 0, src: Reg::R2 },
            Instr::Sys(sys::EXIT),
        ]
    });
    for fast in [true, false] {
        let mut m = machine_with(Perm::RX, &code);
        m.set_fast_path(fast);
        let snap = m.snapshot();
        let first = m.run(100);
        assert!(
            matches!(first, RunOutcome::Fault(_)),
            "store to RX text faults, got {first:?}"
        );
        let reference = fingerprint(&m, first);
        m.restore_from(&snap);
        let second = m.run(100);
        assert_eq!(fingerprint(&m, second), reference, "fast={fast}");
    }
}

#[test]
fn pma_crossing_program_restores_cleanly() {
    let _g = lock();
    // Round trips into a protected module: PMA fetch checks on every
    // step, boundary crossings through the entry point, module-private
    // data traffic. The protection map is part of the snapshot, so a
    // restored run re-runs the same checks to the same effect.
    let main_code = assemble_at(TEXT, &|at| {
        vec![
            Instr::MovI { dst: Reg::R0, imm: 40 },
            Instr::Call(MODULE), // 1: loop head
            Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 },
            Instr::CmpI { a: Reg::R0, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: at(1) },
            Instr::Sys(sys::EXIT),
        ]
    });
    let module_code = assemble_at(MODULE, &|_| {
        vec![
            Instr::MovI { dst: Reg::R1, imm: MDATA },
            Instr::Load { dst: Reg::R2, base: Reg::R1, disp: 0 },
            Instr::AddI { dst: Reg::R2, imm: 1 },
            Instr::Store { base: Reg::R1, disp: 0, src: Reg::R2 },
            Instr::Ret,
        ]
    });
    for fast in [true, false] {
        let mut m = machine_with(Perm::RX, &main_code);
        m.set_fast_path(fast);
        m.mem_mut().map(MODULE, 0x1000, Perm::RX).expect("map module");
        m.mem_mut().map(MDATA, 0x1000, Perm::RW).expect("map mdata");
        m.mem_mut().poke_bytes(MODULE, &module_code).expect("load module");
        m.set_protection(Some(ProtectionMap::new(vec![ProtectedRegion::new(
            MODULE..MODULE + 0x1000,
            MDATA..MDATA + 0x1000,
            vec![MODULE],
        )])));
        let snap = m.snapshot();

        let first = m.run(10_000);
        assert_eq!(first, RunOutcome::Halted(0), "fast={fast}");
        assert_eq!(m.mem().peek_u32(MDATA).unwrap(), 40, "module counter ran");
        let reference = fingerprint(&m, first);

        m.restore_from(&snap);
        assert_eq!(m.mem().peek_u32(MDATA).unwrap(), 0, "module data rewound");
        let second = m.run(10_000);
        assert_eq!(fingerprint(&m, second), reference, "fast={fast}");
    }
}

#[test]
fn restore_copies_exactly_the_touched_pages() {
    let _g = lock();
    let mut m = Machine::new();
    m.mem_mut()
        .map(DATA, 8 * PAGE_SIZE, Perm::RW)
        .expect("map data");
    let snap = m.snapshot();

    // Touch exactly 3 of the 8 pages.
    for page in [0u32, 3, 7] {
        m.mem_mut()
            .poke_bytes(DATA + page * PAGE_SIZE, &[0xAB])
            .expect("poke");
    }
    let before = swsec_vm::counters::snapshot();
    let restore = m.restore_from(&snap);
    let delta = swsec_vm::counters::snapshot().since(before);

    assert_eq!(
        restore,
        RestoreStats {
            dirty_pages: 3,
            bytes_copied: 3 * u64::from(PAGE_SIZE),
        },
        "restore is O(dirty pages), not O(mapped pages)"
    );
    assert_eq!(delta.restores, 1);
    assert_eq!(delta.restore_dirty_pages, 3, "vm.snapshot.dirty_pages");
    assert_eq!(delta.restore_bytes, 3 * u64::from(PAGE_SIZE));
    for page in [0u32, 3, 7] {
        assert_eq!(m.mem().peek_bytes(DATA + page * PAGE_SIZE, 1).unwrap()[0], 0);
    }

    // Nothing touched since the last restore: nothing to copy.
    let restore = m.restore_from(&snap);
    assert_eq!(restore, RestoreStats::default(), "clean restore copies 0 pages");
}

#[test]
fn restore_never_executes_stale_tier2_blocks() {
    let _g = lock();
    // A countdown hot enough for tier 2 to compile its loop into a
    // block (32 trips ≫ threshold), exiting with the trip count. The
    // sequence snapshot → run → patch the loop's step → run → restore
    // → run flips the code under the block cache twice; each run must
    // behave exactly like a fresh uncached machine on the same bytes,
    // never like the block compiled from the previous code version.
    let step_imm_idx = 2; // AddI R1: imm low byte 2 bytes into it
    let code = assemble_at(TEXT, &|at| {
        vec![
            Instr::MovI { dst: Reg::R1, imm: 32 },
            Instr::MovI { dst: Reg::R2, imm: 0 },
            Instr::AddI { dst: Reg::R1, imm: (-1i32) as u32 }, // 2: loop head
            Instr::AddI { dst: Reg::R2, imm: 1 },
            Instr::CmpI { a: Reg::R1, imm: 0 },
            Instr::JCond { cond: Cond::Gt, target: at(2) },
            Instr::Mov { dst: Reg::R0, src: Reg::R2 },
            Instr::Sys(sys::EXIT),
        ]
    });
    let loop_head = TEXT + 12;
    let step_byte = loop_head + step_imm_idx;

    // Uncached references for both code versions.
    let reference = |patch: bool| {
        let mut r = machine_with(Perm::RWX, &code);
        r.set_tier2(false);
        r.set_fast_path(false);
        if patch {
            r.mem_mut().poke_bytes(step_byte, &[0xfe]).expect("patch");
        }
        let outcome = r.run(10_000);
        fingerprint(&r, outcome)
    };
    let ref_orig = reference(false);
    let ref_patched = reference(true);
    assert_eq!(ref_orig.0, RunOutcome::Halted(32));
    assert_eq!(ref_patched.0, RunOutcome::Halted(16));

    let mut m = machine_with(Perm::RWX, &code);
    m.set_tier2(true);
    let snap = m.snapshot();

    // Run 1: original code, block compiled and hot.
    let outcome = m.run(10_000);
    assert_eq!(fingerprint(&m, outcome), ref_orig);
    assert!(m.stats().tier2_compiled >= 1, "{:?}", m.stats());

    // Loader patches the step to -2 mid-campaign: the warm block is
    // now stale and must be dropped, not executed.
    m.restore_from(&snap);
    m.mem_mut().poke_bytes(step_byte, &[0xfe]).expect("patch");
    let outcome = m.run(10_000);
    assert_eq!(fingerprint(&m, outcome), ref_patched);
    assert!(
        m.stats().tier2_invalidations >= 1,
        "patched code must invalidate the warm block: {:?}",
        m.stats()
    );

    // Restore rewinds the patch; any block compiled from the patched
    // bytes is stale in turn.
    m.restore_from(&snap);
    let outcome = m.run(10_000);
    assert_eq!(fingerprint(&m, outcome), ref_orig);
}

#[test]
fn layout_change_falls_back_to_a_wholesale_rebuild() {
    let _g = lock();
    // Unmapping a region after the snapshot invalidates the dirty-page
    // fast path; the restore must still reproduce the captured memory
    // exactly, paying full price (every snapshot page copied).
    let code = assemble_at(TEXT, &|_| {
        vec![
            Instr::MovI { dst: Reg::R1, imm: DATA },
            Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 0 },
            Instr::Sys(sys::EXIT),
        ]
    });
    let mut m = machine_with(Perm::RX, &code);
    m.mem_mut().poke_bytes(DATA, &[99, 0, 0, 0]).expect("poke");
    let snap = m.snapshot();
    let pages = snap.page_count() as u64;

    m.mem_mut().unmap(DATA, 0x2000);
    assert!(!m.mem().is_mapped(DATA));
    let restore = m.restore_from(&snap);
    assert_eq!(restore.dirty_pages, pages, "fallback copies every page");
    assert!(m.mem().is_mapped(DATA), "unmapped region came back");
    assert_eq!(m.run(100), RunOutcome::Halted(99), "restored bytes intact");
}
