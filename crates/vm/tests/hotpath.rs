//! Cache-correctness audit for the interpreter hot path.
//!
//! The decoded-instruction cache and the one-entry TLBs must be
//! *semantically invisible*: every DEP, self-modifying-code and
//! partial-write behaviour of the uncached machine has to survive
//! bit-for-bit. These tests drive the edge cases through the public
//! `Machine` API, several of them mid-run so translations and decodes
//! are already cached when the invalidating event happens.

use swsec_vm::cpu::{Fault, Machine, RunOutcome, StepResult};
use swsec_vm::isa::{sys, Instr, Reg};
use swsec_vm::mem::{Access, MemErrorKind, Perm, PAGE_SIZE};

const TEXT: u32 = 0x1000;
const STACK_TOP: u32 = 0xbfff_f000;

fn assemble(instrs: &[Instr]) -> Vec<u8> {
    let mut out = Vec::new();
    for i in instrs {
        i.encode(&mut out);
    }
    out
}

fn machine_with(text_perm: Perm, instrs: &[Instr]) -> Machine {
    let mut m = Machine::new();
    m.mem_mut().map(TEXT, 0x1000, text_perm).unwrap();
    m.mem_mut()
        .map(STACK_TOP - 0x4000, 0x4000, Perm::RW)
        .unwrap();
    m.mem_mut().poke_bytes(TEXT, &assemble(instrs)).unwrap();
    m.set_reg(Reg::Sp, STACK_TOP);
    m.set_ip(TEXT);
    m
}

/// An infinite loop of nops, used to get decodes into the icache.
fn nop_loop() -> Vec<Instr> {
    vec![Instr::Nop, Instr::Nop, Instr::Jmp(TEXT)]
}

#[test]
fn loader_poke_is_seen_on_the_very_next_fetch() {
    // Run a few trips so every loop instruction is cached, then have
    // the *loader* (poke_bytes, the code-corruption attack's write
    // primitive) overwrite the first nop with `sys exit` — the very
    // next fetch at TEXT must execute the new bytes.
    let mut m = machine_with(Perm::RX, &nop_loop());
    for _ in 0..9 {
        assert_eq!(m.step(), StepResult::Continue);
    }
    // ip is back at TEXT (3 instructions per trip, 9 steps = 3 trips).
    assert_eq!(m.ip(), TEXT);
    assert!(m.stats().icache_hits >= 6, "{:?}", m.stats());
    let patch = assemble(&[Instr::Sys(sys::EXIT)]);
    m.mem_mut().poke_bytes(TEXT, &patch).unwrap();
    m.set_reg(Reg::R0, 7);
    assert_eq!(m.step(), StepResult::Halted(7));
}

#[test]
fn program_store_to_code_is_seen_on_the_very_next_fetch() {
    // Same property, but the overwrite comes from the running program
    // (a store to its own RWX text) and targets the *next* instruction:
    //   TEXT+0  movi r1, TEXT+16   (6 bytes)
    //   TEXT+6  movi r2, 0x27     (6 bytes) 0x27 = trap opcode... use sys
    //   TEXT+12 storeb [r1], r2    (4 bytes)
    //   TEXT+16 nop                (1 byte)  <- overwritten before it runs
    //   ...
    // We first prime the cache by running one full loop that *skips*
    // the store, so the nop at TEXT+16 is already cached, then let the
    // store run and fall through into the patched byte.
    let halt_byte = assemble(&[Instr::Halt])[0];
    let prog = vec![
        Instr::MovI { dst: Reg::R1, imm: TEXT + 16 },
        Instr::MovI { dst: Reg::R2, imm: u32::from(halt_byte) },
        Instr::StoreB { base: Reg::R1, disp: 0, src: Reg::R2 },
        Instr::Nop, // TEXT+16: becomes `halt`
        Instr::Jmp(TEXT),
    ];
    let mut m = machine_with(Perm::RWX, &prog);
    // First pass up to (not including) the store.
    assert_eq!(m.step(), StepResult::Continue); // movi r1
    assert_eq!(m.step(), StepResult::Continue); // movi r2
    assert_eq!(m.step(), StepResult::Continue); // storeb patches TEXT+16
    // Next fetch is the patched instruction itself.
    assert_eq!(m.step(), StepResult::Halted(0));
}

#[test]
fn removing_exec_permission_stops_cached_code() {
    // protect() (set_perm) mid-run: the text page loses X while its
    // decodes sit in the icache; the next fetch must fault as DEP
    // demands, not serve the stale decode.
    let mut m = machine_with(Perm::RX, &nop_loop());
    for _ in 0..6 {
        assert_eq!(m.step(), StepResult::Continue);
    }
    m.mem_mut().set_perm(TEXT, 0x1000, Perm::RW);
    match m.step() {
        StepResult::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Fetch);
            assert_eq!(e.kind, MemErrorKind::Denied { have: Perm::RW });
            assert_eq!(e.addr, TEXT);
        }
        other => panic!("expected DEP fetch fault, got {other:?}"),
    }
}

#[test]
fn unmapping_code_stops_cached_code() {
    let mut m = machine_with(Perm::RX, &nop_loop());
    for _ in 0..6 {
        assert_eq!(m.step(), StepResult::Continue);
    }
    m.mem_mut().unmap(TEXT, 0x1000);
    match m.step() {
        StepResult::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Fetch);
            assert_eq!(e.kind, MemErrorKind::Unmapped);
        }
        other => panic!("expected unmapped fetch fault, got {other:?}"),
    }
}

#[test]
fn data_tlb_invalidated_by_protect_and_unmap() {
    // A load loop against a data page; revoking read permission (and
    // later the mapping itself) must fault the next load even though
    // the translation was TLB-cached.
    let data = STACK_TOP - 0x100;
    let prog = vec![
        Instr::MovI { dst: Reg::R1, imm: data },
        Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 0 },
        Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 4 },
        Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 8 },
    ];
    let mut m = machine_with(Perm::RX, &prog);
    assert_eq!(m.step(), StepResult::Continue); // movi
    assert_eq!(m.step(), StepResult::Continue); // load (fills data TLB)
    let page = data & !(PAGE_SIZE - 1);
    m.mem_mut().set_perm(page, PAGE_SIZE, Perm::NONE);
    match m.step() {
        StepResult::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Read);
            assert_eq!(e.kind, MemErrorKind::Denied { have: Perm::NONE });
        }
        other => panic!("expected read denial, got {other:?}"),
    }
}

#[test]
fn straddling_store_that_faults_mid_word_leaves_earlier_bytes_written() {
    // A `store` instruction whose 4 bytes straddle a RW→R page
    // boundary: the paper's partial-write semantics (bytes land up to
    // the fault) must survive the single-lookup fast path.
    let lo_page = 0x0800_0000;
    let hi_page = lo_page + PAGE_SIZE;
    let addr = hi_page - 2; // two bytes in each page
    let prog = vec![
        Instr::MovI { dst: Reg::R1, imm: addr },
        Instr::MovI { dst: Reg::R2, imm: 0xddcc_bbaa },
        Instr::Store { base: Reg::R1, disp: 0, src: Reg::R2 },
    ];
    let mut m = machine_with(Perm::RX, &prog);
    m.mem_mut().map(lo_page, PAGE_SIZE, Perm::RW).unwrap();
    m.mem_mut().map(hi_page, PAGE_SIZE, Perm::R).unwrap();
    let outcome = m.run(10);
    match outcome {
        RunOutcome::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Write);
            assert_eq!(e.addr, hi_page, "fault names the first refused byte");
            assert_eq!(e.kind, MemErrorKind::Denied { have: Perm::R });
        }
        other => panic!("expected straddle write fault, got {other:?}"),
    }
    // The two low bytes were written before the fault.
    let mem = m.mem();
    assert_eq!(mem.read_u8(addr, Access::Read).unwrap(), 0xaa);
    assert_eq!(mem.read_u8(addr + 1, Access::Read).unwrap(), 0xbb);
    assert_eq!(mem.read_u8(hi_page, Access::Read).unwrap(), 0);
}

#[test]
fn instruction_straddling_pages_respects_second_page_permissions() {
    // Place a 6-byte movi so its tail crosses into the next page, then
    // run it once (cached), then revoke X on the *second* page only:
    // the next fetch of the same ip must fault at the second page.
    let text2 = TEXT + 0x1000; // second text page
    let start = text2 - 4; // movi occupies [start, start+6): 4+2 split
    let prog = vec![
        Instr::MovI { dst: Reg::R0, imm: 5 }, // at `start`, straddles
        Instr::Jmp(start),
    ];
    let mut m = Machine::new();
    m.mem_mut().map(TEXT, 0x2000, Perm::RX).unwrap();
    m.mem_mut().poke_bytes(start, &assemble(&prog)).unwrap();
    m.set_ip(start);
    // Two full trips: decode cached with its straddle flag.
    for _ in 0..4 {
        assert_eq!(m.step(), StepResult::Continue);
    }
    m.mem_mut().set_perm(text2, PAGE_SIZE, Perm::R);
    match m.step() {
        StepResult::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Fetch);
            assert_eq!(e.addr, text2, "fault names the first unfetchable byte");
        }
        other => panic!("expected straddling fetch fault, got {other:?}"),
    }
}

#[test]
fn fast_and_slow_machines_agree_on_a_busy_program() {
    // A program exercising calls, straddling data, byte ops and a DEP
    // fault at the end: both machines must produce identical outcomes,
    // identical architectural stats and identical memory.
    let scratch = STACK_TOP - 0x2000;
    let prog = vec![
        Instr::MovI { dst: Reg::R1, imm: scratch },
        Instr::MovI { dst: Reg::R2, imm: 0x1122_3344 },
        // f(x): store/load roundtrip, called a few times.
        Instr::MovI { dst: Reg::R3, imm: 3 },
        // loop:
        Instr::Call(TEXT + 44), // target computed below
        Instr::AddI { dst: Reg::R3, imm: (-1i32) as u32 },
        Instr::CmpI { a: Reg::R3, imm: 0 },
        Instr::JCond { cond: swsec_vm::isa::Cond::Nz, target: TEXT + 18 },
        Instr::Mov { dst: Reg::R0, src: Reg::R4 },
        Instr::Sys(sys::EXIT),
        // f: TEXT+44
        Instr::Store { base: Reg::R1, disp: 2, src: Reg::R2 },
        Instr::Load { dst: Reg::R4, base: Reg::R1, disp: 2 },
        Instr::LoadB { dst: Reg::R5, base: Reg::R1, disp: 3 },
        Instr::Ret,
    ];
    // Verify the hand-computed offsets: call site loop head and f.
    let bytes = assemble(&prog);
    let f_off: usize = prog[..9].iter().map(|i| assemble(&[*i]).len()).sum();
    assert_eq!(f_off, 44, "layout drifted: f at {f_off}");
    let loop_off: usize = prog[..3].iter().map(|i| assemble(&[*i]).len()).sum();
    assert_eq!(loop_off, 18, "layout drifted: loop at {loop_off}");

    let run = |fast: bool| {
        let mut m = Machine::new();
        m.set_fast_path(fast);
        m.mem_mut().map(TEXT, 0x1000, Perm::RX).unwrap();
        m.mem_mut()
            .map(STACK_TOP - 0x4000, 0x4000, Perm::RW)
            .unwrap();
        m.mem_mut().poke_bytes(TEXT, &bytes).unwrap();
        m.set_reg(Reg::Sp, STACK_TOP);
        m.set_ip(TEXT);
        let outcome = m.run(1000);
        let stats = m.stats();
        let snapshot = m.mem().peek_bytes(scratch, 16).unwrap();
        (
            outcome,
            stats.instructions,
            stats.calls,
            stats.rets,
            stats.mem_reads,
            stats.mem_writes,
            snapshot,
            m.reg(Reg::R4),
            m.reg(Reg::R5),
        )
    };
    assert_eq!(run(true), run(false));
}
