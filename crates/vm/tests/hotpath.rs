//! Cache-correctness audit for the interpreter hot path.
//!
//! The decoded-instruction cache and the one-entry TLBs must be
//! *semantically invisible*: every DEP, self-modifying-code and
//! partial-write behaviour of the uncached machine has to survive
//! bit-for-bit. These tests drive the edge cases through the public
//! `Machine` API, several of them mid-run so translations and decodes
//! are already cached when the invalidating event happens.

use std::sync::Arc;

use swsec_obs::CoverageSink;
use swsec_vm::cpu::{Fault, Machine, RunOutcome, StepResult};
use swsec_vm::isa::{sys, AluOp, Cond, Instr, Reg};
use swsec_vm::mem::{Access, MemErrorKind, Perm, PAGE_SIZE};

const TEXT: u32 = 0x1000;
const STACK_TOP: u32 = 0xbfff_f000;

fn assemble(instrs: &[Instr]) -> Vec<u8> {
    let mut out = Vec::new();
    for i in instrs {
        i.encode(&mut out);
    }
    out
}

fn machine_with(text_perm: Perm, instrs: &[Instr]) -> Machine {
    let mut m = Machine::new();
    m.mem_mut().map(TEXT, 0x1000, text_perm).unwrap();
    m.mem_mut()
        .map(STACK_TOP - 0x4000, 0x4000, Perm::RW)
        .unwrap();
    m.mem_mut().poke_bytes(TEXT, &assemble(instrs)).unwrap();
    m.set_reg(Reg::Sp, STACK_TOP);
    m.set_ip(TEXT);
    m
}

/// An infinite loop of nops, used to get decodes into the icache.
fn nop_loop() -> Vec<Instr> {
    vec![Instr::Nop, Instr::Nop, Instr::Jmp(TEXT)]
}

#[test]
fn loader_poke_is_seen_on_the_very_next_fetch() {
    // Run a few trips so every loop instruction is cached, then have
    // the *loader* (poke_bytes, the code-corruption attack's write
    // primitive) overwrite the first nop with `sys exit` — the very
    // next fetch at TEXT must execute the new bytes.
    let mut m = machine_with(Perm::RX, &nop_loop());
    for _ in 0..9 {
        assert_eq!(m.step(), StepResult::Continue);
    }
    // ip is back at TEXT (3 instructions per trip, 9 steps = 3 trips).
    assert_eq!(m.ip(), TEXT);
    assert!(m.stats().icache_hits >= 6, "{:?}", m.stats());
    let patch = assemble(&[Instr::Sys(sys::EXIT)]);
    m.mem_mut().poke_bytes(TEXT, &patch).unwrap();
    m.set_reg(Reg::R0, 7);
    assert_eq!(m.step(), StepResult::Halted(7));
}

#[test]
fn program_store_to_code_is_seen_on_the_very_next_fetch() {
    // Same property, but the overwrite comes from the running program
    // (a store to its own RWX text) and targets the *next* instruction:
    //   TEXT+0  movi r1, TEXT+16   (6 bytes)
    //   TEXT+6  movi r2, 0x27     (6 bytes) 0x27 = trap opcode... use sys
    //   TEXT+12 storeb [r1], r2    (4 bytes)
    //   TEXT+16 nop                (1 byte)  <- overwritten before it runs
    //   ...
    // We first prime the cache by running one full loop that *skips*
    // the store, so the nop at TEXT+16 is already cached, then let the
    // store run and fall through into the patched byte.
    let halt_byte = assemble(&[Instr::Halt])[0];
    let prog = vec![
        Instr::MovI { dst: Reg::R1, imm: TEXT + 16 },
        Instr::MovI { dst: Reg::R2, imm: u32::from(halt_byte) },
        Instr::StoreB { base: Reg::R1, disp: 0, src: Reg::R2 },
        Instr::Nop, // TEXT+16: becomes `halt`
        Instr::Jmp(TEXT),
    ];
    let mut m = machine_with(Perm::RWX, &prog);
    // First pass up to (not including) the store.
    assert_eq!(m.step(), StepResult::Continue); // movi r1
    assert_eq!(m.step(), StepResult::Continue); // movi r2
    assert_eq!(m.step(), StepResult::Continue); // storeb patches TEXT+16
    // Next fetch is the patched instruction itself.
    assert_eq!(m.step(), StepResult::Halted(0));
}

#[test]
fn removing_exec_permission_stops_cached_code() {
    // protect() (set_perm) mid-run: the text page loses X while its
    // decodes sit in the icache; the next fetch must fault as DEP
    // demands, not serve the stale decode.
    let mut m = machine_with(Perm::RX, &nop_loop());
    for _ in 0..6 {
        assert_eq!(m.step(), StepResult::Continue);
    }
    m.mem_mut().set_perm(TEXT, 0x1000, Perm::RW);
    match m.step() {
        StepResult::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Fetch);
            assert_eq!(e.kind, MemErrorKind::Denied { have: Perm::RW });
            assert_eq!(e.addr, TEXT);
        }
        other => panic!("expected DEP fetch fault, got {other:?}"),
    }
}

#[test]
fn unmapping_code_stops_cached_code() {
    let mut m = machine_with(Perm::RX, &nop_loop());
    for _ in 0..6 {
        assert_eq!(m.step(), StepResult::Continue);
    }
    m.mem_mut().unmap(TEXT, 0x1000);
    match m.step() {
        StepResult::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Fetch);
            assert_eq!(e.kind, MemErrorKind::Unmapped);
        }
        other => panic!("expected unmapped fetch fault, got {other:?}"),
    }
}

#[test]
fn data_tlb_invalidated_by_protect_and_unmap() {
    // A load loop against a data page; revoking read permission (and
    // later the mapping itself) must fault the next load even though
    // the translation was TLB-cached.
    let data = STACK_TOP - 0x100;
    let prog = vec![
        Instr::MovI { dst: Reg::R1, imm: data },
        Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 0 },
        Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 4 },
        Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 8 },
    ];
    let mut m = machine_with(Perm::RX, &prog);
    assert_eq!(m.step(), StepResult::Continue); // movi
    assert_eq!(m.step(), StepResult::Continue); // load (fills data TLB)
    let page = data & !(PAGE_SIZE - 1);
    m.mem_mut().set_perm(page, PAGE_SIZE, Perm::NONE);
    match m.step() {
        StepResult::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Read);
            assert_eq!(e.kind, MemErrorKind::Denied { have: Perm::NONE });
        }
        other => panic!("expected read denial, got {other:?}"),
    }
}

#[test]
fn straddling_store_that_faults_mid_word_leaves_earlier_bytes_written() {
    // A `store` instruction whose 4 bytes straddle a RW→R page
    // boundary: the paper's partial-write semantics (bytes land up to
    // the fault) must survive the single-lookup fast path.
    let lo_page = 0x0800_0000;
    let hi_page = lo_page + PAGE_SIZE;
    let addr = hi_page - 2; // two bytes in each page
    let prog = vec![
        Instr::MovI { dst: Reg::R1, imm: addr },
        Instr::MovI { dst: Reg::R2, imm: 0xddcc_bbaa },
        Instr::Store { base: Reg::R1, disp: 0, src: Reg::R2 },
    ];
    let mut m = machine_with(Perm::RX, &prog);
    m.mem_mut().map(lo_page, PAGE_SIZE, Perm::RW).unwrap();
    m.mem_mut().map(hi_page, PAGE_SIZE, Perm::R).unwrap();
    let outcome = m.run(10);
    match outcome {
        RunOutcome::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Write);
            assert_eq!(e.addr, hi_page, "fault names the first refused byte");
            assert_eq!(e.kind, MemErrorKind::Denied { have: Perm::R });
        }
        other => panic!("expected straddle write fault, got {other:?}"),
    }
    // The two low bytes were written before the fault.
    let mem = m.mem();
    assert_eq!(mem.read_u8(addr, Access::Read).unwrap(), 0xaa);
    assert_eq!(mem.read_u8(addr + 1, Access::Read).unwrap(), 0xbb);
    assert_eq!(mem.read_u8(hi_page, Access::Read).unwrap(), 0);
}

#[test]
fn instruction_straddling_pages_respects_second_page_permissions() {
    // Place a 6-byte movi so its tail crosses into the next page, then
    // run it once (cached), then revoke X on the *second* page only:
    // the next fetch of the same ip must fault at the second page.
    let text2 = TEXT + 0x1000; // second text page
    let start = text2 - 4; // movi occupies [start, start+6): 4+2 split
    let prog = vec![
        Instr::MovI { dst: Reg::R0, imm: 5 }, // at `start`, straddles
        Instr::Jmp(start),
    ];
    let mut m = Machine::new();
    m.mem_mut().map(TEXT, 0x2000, Perm::RX).unwrap();
    m.mem_mut().poke_bytes(start, &assemble(&prog)).unwrap();
    m.set_ip(start);
    // Two full trips: decode cached with its straddle flag.
    for _ in 0..4 {
        assert_eq!(m.step(), StepResult::Continue);
    }
    m.mem_mut().set_perm(text2, PAGE_SIZE, Perm::R);
    match m.step() {
        StepResult::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Fetch);
            assert_eq!(e.addr, text2, "fault names the first unfetchable byte");
        }
        other => panic!("expected straddling fetch fault, got {other:?}"),
    }
}

/// Runs `instrs` on three machines — tier 2 on, tier 2 off (fast
/// path only), and everything off — and asserts outcome, registers
/// and architectural stats agree bit-for-bit. Returns the tiered
/// machine for tier-specific assertions.
fn assert_three_way_identical(instrs: &[Instr], fuel: u64) -> Machine {
    assert_three_way_identical_cfg(instrs, fuel, &|_| {}).1
}

/// [`assert_three_way_identical`] with a configuration hook run on
/// each machine before execution (poke a dispatch table, enable the
/// shadow stack), returning the shared outcome as well.
fn assert_three_way_identical_cfg(
    instrs: &[Instr],
    fuel: u64,
    cfg: &dyn Fn(&mut Machine),
) -> (RunOutcome, Machine) {
    let build = |tier2: bool, fast: bool| {
        let mut m = machine_with(Perm::RWX, instrs);
        m.set_tier2(tier2);
        m.set_fast_path(fast);
        m.set_ip(TEXT); // set_fast_path cleared nothing architectural
        cfg(&mut m);
        m
    };
    let mut tiered = build(true, true);
    let mut fast = build(false, true);
    let mut base = build(false, false);
    let outcome = tiered.run(fuel);
    assert_eq!(outcome, fast.run(fuel));
    assert_eq!(outcome, base.run(fuel));
    assert_eq!(tiered.ip(), fast.ip());
    assert_eq!(tiered.ip(), base.ip());
    for r in [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::Sp,
        Reg::Bp,
    ] {
        assert_eq!(tiered.reg(r), fast.reg(r), "{r:?}");
        assert_eq!(tiered.reg(r), base.reg(r), "{r:?}");
    }
    assert_eq!(tiered.stats().architectural(), fast.stats().architectural());
    assert_eq!(tiered.stats().architectural(), base.stats().architectural());
    (outcome, tiered)
}

#[test]
fn tier2_block_storing_into_its_own_page_side_exits_every_entry() {
    // The hot loop's own body stores into its code page (a padding
    // byte, so no instruction actually changes): every store bumps the
    // page's write generation, so the block must side-exit after the
    // store and fail validation at the next entry — and the result
    // must still be bit-for-bit identical to stepping.
    let prog = vec![
        Instr::MovI { dst: Reg::R1, imm: 40 },
        Instr::MovI { dst: Reg::R2, imm: TEXT + 0x800 },
        Instr::MovI { dst: Reg::R3, imm: 0x5a },
        // TEXT+18: loop head.
        Instr::StoreB { base: Reg::R2, disp: 0, src: Reg::R3 },
        Instr::AddI { dst: Reg::R1, imm: (-1i32) as u32 },
        Instr::CmpI { a: Reg::R1, imm: 0 },
        Instr::JCond { cond: swsec_vm::isa::Cond::Nz, target: TEXT + 18 },
        Instr::Mov { dst: Reg::R0, src: Reg::R1 },
        Instr::Sys(sys::EXIT),
    ];
    let tiered = assert_three_way_identical(&prog, 100_000);
    let stats = tiered.stats();
    assert!(stats.tier2_compiled >= 1, "loop never compiled: {stats:?}");
    assert!(
        stats.tier2_side_exits >= 1,
        "self-modifying store must side-exit: {stats:?}"
    );
    assert!(
        stats.tier2_invalidations >= 1,
        "stale block must be dropped at re-entry: {stats:?}"
    );
}

#[test]
fn tier2_recompiles_patched_code_byte_identically() {
    // Phase 1 runs a countdown hot enough to be compiled (30 trips of
    // step -1), then the program patches the AddI immediate in its own
    // loop body to step -3 and re-enters the loop for phase 2. The
    // stale block must never run: the patched loop takes 10 trips, and
    // every register and architectural counter must match stepping.
    let prog = vec![
        Instr::MovI { dst: Reg::R1, imm: 30 },
        Instr::MovI { dst: Reg::R2, imm: TEXT + 20 }, // AddI imm low byte
        Instr::MovI { dst: Reg::R3, imm: 0xfd },      // -3 in the low byte
        // TEXT+18: loop head; imm low byte sits at TEXT+20.
        Instr::AddI { dst: Reg::R1, imm: (-1i32) as u32 },
        Instr::CmpI { a: Reg::R1, imm: 0 },
        Instr::JCond { cond: swsec_vm::isa::Cond::Nz, target: TEXT + 18 },
        // TEXT+35: fall-through; second time around, finish.
        Instr::CmpI { a: Reg::R7, imm: 0 },
        Instr::JCond { cond: swsec_vm::isa::Cond::Nz, target: TEXT + 67 },
        Instr::MovI { dst: Reg::R7, imm: 1 },
        Instr::MovI { dst: Reg::R1, imm: 30 },
        Instr::StoreB { base: Reg::R2, disp: 0, src: Reg::R3 },
        Instr::Jmp(TEXT + 18),
        // TEXT+67: done.
        Instr::Mov { dst: Reg::R0, src: Reg::R1 },
        Instr::Sys(sys::EXIT),
    ];
    // Guard the hand-computed offsets against encoding drift.
    let head: usize = prog[..3].iter().map(|i| assemble(&[*i]).len()).sum();
    assert_eq!(head, 18, "layout drifted: loop at {head}");
    let done: usize = prog[..12].iter().map(|i| assemble(&[*i]).len()).sum();
    assert_eq!(done, 67, "layout drifted: done at {done}");

    let tiered = assert_three_way_identical(&prog, 100_000);
    let stats = tiered.stats();
    assert!(stats.tier2_compiled >= 1, "phase 1 never compiled: {stats:?}");
    assert!(
        stats.tier2_invalidations >= 1,
        "patched block must be invalidated: {stats:?}"
    );
}

#[test]
fn fast_and_slow_machines_agree_on_a_busy_program() {
    // A program exercising calls, straddling data, byte ops and a DEP
    // fault at the end: both machines must produce identical outcomes,
    // identical architectural stats and identical memory.
    let scratch = STACK_TOP - 0x2000;
    let prog = vec![
        Instr::MovI { dst: Reg::R1, imm: scratch },
        Instr::MovI { dst: Reg::R2, imm: 0x1122_3344 },
        // f(x): store/load roundtrip, called a few times.
        Instr::MovI { dst: Reg::R3, imm: 3 },
        // loop:
        Instr::Call(TEXT + 44), // target computed below
        Instr::AddI { dst: Reg::R3, imm: (-1i32) as u32 },
        Instr::CmpI { a: Reg::R3, imm: 0 },
        Instr::JCond { cond: swsec_vm::isa::Cond::Nz, target: TEXT + 18 },
        Instr::Mov { dst: Reg::R0, src: Reg::R4 },
        Instr::Sys(sys::EXIT),
        // f: TEXT+44
        Instr::Store { base: Reg::R1, disp: 2, src: Reg::R2 },
        Instr::Load { dst: Reg::R4, base: Reg::R1, disp: 2 },
        Instr::LoadB { dst: Reg::R5, base: Reg::R1, disp: 3 },
        Instr::Ret,
    ];
    // Verify the hand-computed offsets: call site loop head and f.
    let bytes = assemble(&prog);
    let f_off: usize = prog[..9].iter().map(|i| assemble(&[*i]).len()).sum();
    assert_eq!(f_off, 44, "layout drifted: f at {f_off}");
    let loop_off: usize = prog[..3].iter().map(|i| assemble(&[*i]).len()).sum();
    assert_eq!(loop_off, 18, "layout drifted: loop at {loop_off}");

    let run = |fast: bool| {
        let mut m = Machine::new();
        m.set_fast_path(fast);
        m.mem_mut().map(TEXT, 0x1000, Perm::RX).unwrap();
        m.mem_mut()
            .map(STACK_TOP - 0x4000, 0x4000, Perm::RW)
            .unwrap();
        m.mem_mut().poke_bytes(TEXT, &bytes).unwrap();
        m.set_reg(Reg::Sp, STACK_TOP);
        m.set_ip(TEXT);
        let outcome = m.run(1000);
        let stats = m.stats();
        let snapshot = m.mem().peek_bytes(scratch, 16).unwrap();
        (
            outcome,
            stats.instructions,
            stats.calls,
            stats.rets,
            stats.mem_reads,
            stats.mem_writes,
            snapshot,
            m.reg(Reg::R4),
            m.reg(Reg::R5),
        )
    };
    assert_eq!(run(true), run(false));
}

/// Byte offset of instruction `i` in `instrs`, relative to TEXT.
fn addr_at(instrs: &[Instr], i: usize) -> u32 {
    TEXT + assemble(&instrs[..i]).len() as u32
}

#[test]
fn linked_call_and_return_collapse_the_loop_into_one_block() {
    use swsec_vm::isa::Cond;
    // The call-heavy shape: a counted loop whose body is a static call.
    // The block engine links the call into the callee and the callee's
    // return back to the call site, so the whole loop body becomes one
    // block with an in-block backedge — after warmup the loop must run
    // without re-entering the dispatcher every iteration.
    let mut prog = vec![
        Instr::MovI { dst: Reg::R0, imm: 2_000 },
        Instr::Call(0), // 1: loop head, patched below
        Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 },
        Instr::CmpI { a: Reg::R0, imm: 0 },
        Instr::JCond { cond: Cond::Nz, target: 0 }, // patched below
        Instr::Sys(sys::EXIT),
        Instr::Enter(16), // 6: callee
        Instr::Push(Reg::R0),
        Instr::Pop(Reg::R1),
        Instr::Leave,
        Instr::Ret,
    ];
    prog[1] = Instr::Call(addr_at(&prog, 6));
    prog[4] = Instr::JCond { cond: Cond::Nz, target: addr_at(&prog, 1) };
    let tiered = assert_three_way_identical(&prog, 100_000);
    let stats = tiered.stats();
    assert!(stats.tier2_compiled >= 1, "loop never compiled: {stats:?}");
    assert!(
        stats.tier2_hits <= 8,
        "linked call/return should keep the loop in-block, got {} entries: {stats:?}",
        stats.tier2_hits
    );
    assert!(
        stats.tier2_instructions >= stats.instructions * 9 / 10,
        "the mega-block should retire nearly everything: {stats:?}"
    );
}

#[test]
fn smashed_return_address_exits_the_linked_block() {
    use swsec_vm::isa::Cond;
    // The callee overwrites its own saved return address (the paper's
    // stack-smashing primitive) with the address of instruction 3,
    // skipping the nop the call would return to. The linked return's
    // runtime compare must catch the mismatch and exit the block with
    // the *attacker's* target pending — bit-for-bit what stepping does.
    let mut prog = vec![
        Instr::MovI { dst: Reg::R0, imm: 64 },
        Instr::Call(0), // 1: loop head, patched below
        Instr::Nop,     // 2: the honest return site (always skipped)
        Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 }, // 3: smash target
        Instr::CmpI { a: Reg::R0, imm: 0 },
        Instr::JCond { cond: Cond::Nz, target: 0 }, // patched below
        Instr::Sys(sys::EXIT),
        Instr::Enter(0), // 7: callee
        Instr::MovI { dst: Reg::R2, imm: 0 }, // patched below
        Instr::Store { base: Reg::Bp, disp: 4, src: Reg::R2 },
        Instr::Leave,
        Instr::Ret,
    ];
    prog[1] = Instr::Call(addr_at(&prog, 7));
    prog[5] = Instr::JCond { cond: Cond::Nz, target: addr_at(&prog, 1) };
    prog[8] = Instr::MovI { dst: Reg::R2, imm: addr_at(&prog, 3) };
    let tiered = assert_three_way_identical(&prog, 100_000);
    let stats = tiered.stats();
    assert!(stats.tier2_compiled >= 1, "loop never compiled: {stats:?}");
    // Every post-warmup iteration exits at the mismatched return, so
    // the nop at the honest return site never runs in any tier.
    assert_eq!(stats.rets, 64, "{stats:?}");
}

/// Scratch RW home for function-pointer tables, below the stack.
const TABLE: u32 = STACK_TOP - 0x2000;

/// The indirect-dispatch shape, sized for tests: `iters` trips
/// masking the counter into a four-entry function-pointer table at
/// [`TABLE`], `callr` through the loaded entry into one of four
/// rotating two-instruction callees, unlinked `ret` back. Returns the
/// program and the table bytes the caller must poke at [`TABLE`].
/// Every dynamic transfer in the loop goes through a tier-2 inline
/// cache once the loop is hot.
fn dispatch_prog(iters: u32) -> (Vec<Instr>, Vec<u8>) {
    let mut prog = vec![
        Instr::MovI { dst: Reg::R0, imm: iters },
        Instr::MovI { dst: Reg::R5, imm: TABLE },
        Instr::MovI { dst: Reg::R6, imm: 3 },
        Instr::MovI { dst: Reg::R7, imm: 2 },
        Instr::Mov { dst: Reg::R1, src: Reg::R0 }, // 4: loop head
        Instr::Alu { op: AluOp::And, dst: Reg::R1, src: Reg::R6 },
        Instr::Alu { op: AluOp::Shl, dst: Reg::R1, src: Reg::R7 },
        Instr::Alu { op: AluOp::Add, dst: Reg::R1, src: Reg::R5 },
        Instr::Load { dst: Reg::R2, base: Reg::R1, disp: 0 },
        Instr::CallR(Reg::R2),
        Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 },
        Instr::CmpI { a: Reg::R0, imm: 0 },
        Instr::JCond { cond: Cond::Nz, target: 0 }, // patched below
        Instr::Jmp(0), // 13: to the epilogue, patched below
        // 14..: four callees, `addi r3, k+1; ret` each.
    ];
    for k in 0..4u32 {
        prog.push(Instr::AddI { dst: Reg::R3, imm: k + 1 });
        prog.push(Instr::Ret);
    }
    prog[12] = Instr::JCond { cond: Cond::Nz, target: addr_at(&prog, 4) };
    // The epilogue lives past the callees so tests can swap it for a
    // multi-instruction driver without moving any code the table (or a
    // compiled block) already points at.
    prog[13] = Instr::Jmp(addr_at(&prog, 22));
    let mut table = Vec::new();
    for k in 0..4usize {
        table.extend_from_slice(&addr_at(&prog, 14 + 2 * k).to_le_bytes());
    }
    prog.push(Instr::Sys(sys::EXIT)); // 22: default epilogue
    (prog, table)
}

#[test]
fn patching_a_callee_behind_a_hot_inline_cache_recompiles_it() {
    // Phase 1 runs the dispatch loop hot — the `callr` and the four
    // `ret`s all hold inline-cache predictions. The driver then writes
    // through a function pointer into callee 0's body (AddI immediate
    // low byte: +1 becomes +9) and reruns the loop. The stale
    // prediction's target block fails generation validation, so the
    // patched callee must be recompiled and every tier must agree
    // bit-for-bit on the accumulator.
    let (mut prog, table) = dispatch_prog(96);
    // Swap the epilogue for the two-phase driver (the epilogue sits
    // past the callees, so nothing the table points at moves).
    // AddI encodes [op, dst, imm:le32]: the immediate low byte is +2.
    prog.pop();
    let d = prog.len();
    prog.extend([
        Instr::CmpI { a: Reg::R4, imm: 0 },
        Instr::JCond { cond: Cond::Nz, target: 0 }, // patched below
        Instr::MovI { dst: Reg::R4, imm: 1 },
        Instr::MovI { dst: Reg::R1, imm: addr_at(&prog, 14) + 2 },
        Instr::MovI { dst: Reg::R2, imm: 9 },
        Instr::StoreB { base: Reg::R1, disp: 0, src: Reg::R2 },
        Instr::MovI { dst: Reg::R0, imm: 96 },
        Instr::Jmp(addr_at(&prog, 4)),
        Instr::Mov { dst: Reg::R0, src: Reg::R3 },
        Instr::Sys(sys::EXIT),
    ]);
    prog[d + 1] = Instr::JCond { cond: Cond::Nz, target: addr_at(&prog, d + 8) };
    let (outcome, tiered) = assert_three_way_identical_cfg(&prog, 100_000, &|m| {
        m.mem_mut().poke_bytes(TABLE, &table).unwrap();
    });
    // 96 trips per phase, 24 per callee: phase 1 sums to 240, phase 2
    // with callee 0 adding 9 sums to 432.
    assert_eq!(outcome, RunOutcome::Halted(672));
    let stats = tiered.stats();
    assert!(stats.tier2_ic_installs >= 1, "no IC installed: {stats:?}");
    assert!(stats.tier2_ic_hits > 0, "ICs never predicted: {stats:?}");
    assert!(
        stats.tier2_invalidations >= 1,
        "patched callee must invalidate its block: {stats:?}"
    );
}

#[test]
fn smashed_function_pointer_faults_identically_under_dep() {
    // After the loop runs hot through its inline caches, the driver
    // overwrites table entry 0 with the table's own (RW, never X)
    // address — the paper's function-pointer-corruption primitive —
    // and re-enters the loop. The `callr` must land on a DEP fetch
    // denial at the smashed target, bit-for-bit in every tier: a
    // prediction keyed on the old callee must not swallow the fault.
    let (mut prog, table) = dispatch_prog(48);
    // Swap the epilogue for the smash driver (the epilogue sits past
    // the callees, so nothing the table points at moves).
    prog.pop();
    prog.extend([
        Instr::MovI { dst: Reg::R2, imm: TABLE },
        Instr::Store { base: Reg::R5, disp: 0, src: Reg::R2 },
        Instr::MovI { dst: Reg::R0, imm: 4 }, // index 0 first: faults
        Instr::Jmp(addr_at(&prog, 4)),
    ]);
    let (outcome, tiered) = assert_three_way_identical_cfg(&prog, 100_000, &|m| {
        m.mem_mut().poke_bytes(TABLE, &table).unwrap();
    });
    match outcome {
        RunOutcome::Fault(Fault::Mem(e)) => {
            assert_eq!(e.access, Access::Fetch);
            assert_eq!(e.addr, TABLE, "fault names the smashed target");
            assert_eq!(e.kind, MemErrorKind::Denied { have: Perm::RW });
        }
        other => panic!("expected DEP fetch fault, got {other:?}"),
    }
    let stats = tiered.stats();
    assert!(stats.tier2_ic_hits > 0, "ICs never predicted: {stats:?}");
}

#[test]
fn smashed_return_address_through_an_inline_cache_trips_the_shadow_stack() {
    // A register call into one fixed callee: its unlinked `ret` gets
    // an inline cache keyed on the popped return address. After 40
    // honest round trips the driver arms R2 and calls once more; the
    // callee overwrites its saved return address with the attacker
    // target. The popped address no longer matches the prediction key,
    // the cache side-steps, and the enabled shadow stack must report
    // the mismatch — identically in every tier.
    let mut prog = vec![
        Instr::MovI { dst: Reg::R0, imm: 40 },
        Instr::MovI { dst: Reg::R5, imm: 0 }, // patched: callee address
        Instr::CallR(Reg::R5),                // 2: loop head
        Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 },
        Instr::CmpI { a: Reg::R0, imm: 0 },
        Instr::JCond { cond: Cond::Nz, target: 0 }, // patched below
        Instr::MovI { dst: Reg::R2, imm: 0 },       // patched: smash target
        Instr::CallR(Reg::R5),
        Instr::Nop, // 8: honest return site (skipped by the smash)
        Instr::Sys(sys::EXIT),
        Instr::Sys(sys::EXIT), // 10: attacker target (never reached)
        Instr::Enter(0),       // 11: callee
        Instr::CmpI { a: Reg::R2, imm: 0 },
        Instr::JCond { cond: Cond::Z, target: 0 }, // patched below
        Instr::Store { base: Reg::Bp, disp: 4, src: Reg::R2 },
        Instr::Leave, // 15
        Instr::Ret,
    ];
    prog[1] = Instr::MovI { dst: Reg::R5, imm: addr_at(&prog, 11) };
    prog[5] = Instr::JCond { cond: Cond::Nz, target: addr_at(&prog, 2) };
    prog[6] = Instr::MovI { dst: Reg::R2, imm: addr_at(&prog, 10) };
    prog[13] = Instr::JCond { cond: Cond::Z, target: addr_at(&prog, 15) };
    let honest = addr_at(&prog, 8);
    let smashed = addr_at(&prog, 10);
    let (outcome, tiered) =
        assert_three_way_identical_cfg(&prog, 100_000, &|m| m.set_shadow_stack(true));
    assert_eq!(
        outcome,
        RunOutcome::Fault(Fault::ShadowStackMismatch { expected: honest, got: smashed })
    );
    let stats = tiered.stats();
    assert!(stats.tier2_ic_hits > 0, "the ret IC never predicted: {stats:?}");
}

#[test]
fn restore_from_drops_stale_inline_cache_predictions() {
    // Fork-server shape: snapshot at boot, run the dispatch loop hot
    // (blocks compiled, ICs predicting), restore, patch callee 0
    // through the loader, run again. The post-restore run must match a
    // fresh machine with the patched code bit-for-bit — no prediction
    // or block from the first attempt may survive into the second.
    let (prog, table) = dispatch_prog(96);
    let imm_byte = addr_at(&prog, 14) + 2; // callee-0 AddI imm low byte
    let build = || {
        let mut m = machine_with(Perm::RWX, &prog);
        m.set_tier2(true);
        m.mem_mut().poke_bytes(TABLE, &table).unwrap();
        m
    };
    let mut m = build();
    let snap = m.snapshot();
    let first = m.run(100_000);
    assert_eq!(first, RunOutcome::Halted(0));
    let r3_first = m.reg(Reg::R3);
    assert_eq!(r3_first, 240, "96 trips over +1..+4 callees sum to 240");
    assert!(m.stats().tier2_ic_hits > 0, "{:?}", m.stats());
    m.restore_from(&snap);
    m.mem_mut().poke_bytes(imm_byte, &[9]).unwrap();
    let second = m.run(100_000);
    let mut fresh = build();
    fresh.mem_mut().poke_bytes(imm_byte, &[9]).unwrap();
    let reference = fresh.run(100_000);
    assert_eq!(second, reference);
    assert_eq!(m.reg(Reg::R3), fresh.reg(Reg::R3));
    assert_eq!(m.reg(Reg::R3), 432, "patched callee 0 adds 9, not 1");
}

#[test]
fn coverage_fingerprints_are_tier_invariant_through_inline_caches() {
    // With a coverage sink attached, tier-2 blocks bump the edge map
    // directly from precomputed slots. The resulting map must be
    // byte-identical to the tier-1 hash-at-transfer path on the same
    // program — the fuzzer's novelty signal may not depend on which
    // tier served an attempt.
    let (prog, table) = dispatch_prog(200);
    let run = |tier2: bool| {
        let mut m = machine_with(Perm::RWX, &prog);
        m.set_tier2(tier2);
        m.mem_mut().poke_bytes(TABLE, &table).unwrap();
        let sink = Arc::new(CoverageSink::new());
        m.set_coverage(Some(Arc::clone(&sink)));
        let outcome = m.run(100_000);
        (outcome, sink.take_map().fingerprint(), m.stats().tier2_ic_hits)
    };
    let (tiered_outcome, tiered_fp, tiered_ic) = run(true);
    let (fast_outcome, fast_fp, fast_ic) = run(false);
    assert_eq!(tiered_outcome, fast_outcome);
    assert_eq!(tiered_fp, fast_fp, "coverage diverges between tiers");
    assert!(tiered_ic > 0, "the tiered run never hit an inline cache");
    assert_eq!(fast_ic, 0, "the tier-1 run counted inline-cache hits");
}
