//! The process-wide default event sink: machines created while one is
//! installed attach it automatically.
//!
//! This lives in its own integration-test binary because the default
//! sink is process-global state — sharing a process with the unit
//! tests would make both flaky.

use std::sync::Arc;

use swsec_obs::{clear_default_sink, set_default_sink, CountingSink};
use swsec_vm::cpu::{Machine, RunOutcome};
use swsec_vm::isa::{sys, Instr, Reg};
use swsec_vm::mem::Perm;

fn run_program() -> Machine {
    let prog = [
        Instr::Call(0x1000 + 13),
        Instr::MovI {
            dst: Reg::R0,
            imm: 0,
        },
        Instr::Sys(sys::EXIT),
        Instr::Ret,
    ];
    let mut code = Vec::new();
    for i in &prog {
        i.encode(&mut code);
    }
    let mut m = Machine::new();
    m.mem_mut().map(0x1000, 0x1000, Perm::RX).unwrap();
    m.mem_mut()
        .map(0xbfff_0000u32.wrapping_sub(0x4000), 0x4000, Perm::RW)
        .unwrap();
    m.mem_mut().poke_bytes(0x1000, &code).unwrap();
    m.set_reg(Reg::Sp, 0xbfff_0000);
    m.set_ip(0x1000);
    assert_eq!(m.run(100), RunOutcome::Halted(0));
    m
}

#[test]
fn default_sink_attaches_to_new_machines() {
    let counter = Arc::new(CountingSink::new());
    assert!(set_default_sink(counter.clone()).is_none());

    let m = run_program();
    assert!(m.has_event_sink());
    drop(m);

    let taken = clear_default_sink();
    assert!(taken.is_some());
    let c = counter.counts();
    assert_eq!(c.control, 2, "{c:?}"); // one call, one ret
    assert_eq!(c.syscall, 1);

    // Machines created after the sink is cleared see nothing.
    let m = run_program();
    assert!(!m.has_event_sink());
    drop(m);
    assert_eq!(counter.counts(), c);
}
