//! Property tests of the machine itself: ALU semantics against Rust's
//! reference arithmetic, stack discipline, flag/branch coherence and
//! memory roundtrips.
//
// Gated behind the non-default `proptest-tests` feature: the default
// workspace must build with zero network access, and `proptest` is a
// registry dependency. Enable with `--features proptest-tests` after
// restoring `proptest` to [dev-dependencies].
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use swsec_vm::isa::{sys, AluOp, Cond, Instr, Reg};
use swsec_vm::mem::Perm;
use swsec_vm::prelude::*;

const TEXT: u32 = 0x1000;
const STACK_TOP: u32 = 0x9_0000;

fn run_program(instrs: &[Instr]) -> (RunOutcome, Machine) {
    let mut bytes = Vec::new();
    for i in instrs {
        i.encode(&mut bytes);
    }
    let mut m = Machine::new();
    m.mem_mut().map(TEXT, 0x2000, Perm::RX).unwrap();
    m.mem_mut().poke_bytes(TEXT, &bytes).unwrap();
    m.mem_mut().map(STACK_TOP - 0x1000, 0x1000, Perm::RW).unwrap();
    m.set_reg(Reg::Sp, STACK_TOP - 16);
    m.set_ip(TEXT);
    let outcome = m.run(10_000);
    (outcome, m)
}

fn reference_alu(op: AluOp, a: u32, b: u32) -> Option<u32> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::DivU => {
            if b == 0 {
                return None;
            }
            a / b
        }
        AluOp::DivS => {
            if b == 0 {
                return None;
            }
            (a as i32).wrapping_div(b as i32) as u32
        }
        AluOp::ModU => {
            if b == 0 {
                return None;
            }
            a % b
        }
        AluOp::ModS => {
            if b == 0 {
                return None;
            }
            (a as i32).wrapping_rem(b as i32) as u32
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b),
        AluOp::Shr => a.wrapping_shr(b),
        AluOp::Sar => ((a as i32).wrapping_shr(b)) as u32,
    })
}

fn alu_strategy() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::DivU,
        AluOp::DivS,
        AluOp::ModU,
        AluOp::ModS,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
    ])
}

proptest! {
    #[test]
    fn alu_matches_reference_semantics(op in alu_strategy(), a in any::<u32>(), b in any::<u32>()) {
        let (outcome, _) = run_program(&[
            Instr::MovI { dst: Reg::R0, imm: a },
            Instr::MovI { dst: Reg::R1, imm: b },
            Instr::Alu { op, dst: Reg::R0, src: Reg::R1 },
            Instr::Sys(sys::EXIT),
        ]);
        match reference_alu(op, a, b) {
            Some(expected) => prop_assert_eq!(outcome, RunOutcome::Halted(expected)),
            None => {
                let div_fault =
                    matches!(outcome, RunOutcome::Fault(Fault::DivideByZero { .. }));
                prop_assert!(div_fault, "expected divide fault, got {:?}", outcome);
            }
        }
    }

    #[test]
    fn push_pop_is_identity(values in prop::collection::vec(any::<u32>(), 1..16)) {
        // Push all values, pop them back in reverse, xor-accumulate both
        // ways; the machine must agree with the model.
        let mut instrs = Vec::new();
        for &v in &values {
            instrs.push(Instr::PushI(v));
        }
        instrs.push(Instr::MovI { dst: Reg::R0, imm: 0 });
        for _ in &values {
            instrs.push(Instr::Pop(Reg::R1));
            instrs.push(Instr::Alu { op: AluOp::Xor, dst: Reg::R0, src: Reg::R1 });
        }
        instrs.push(Instr::Sys(sys::EXIT));
        let expected = values.iter().fold(0u32, |acc, v| acc ^ v);
        let (outcome, _) = run_program(&instrs);
        prop_assert_eq!(outcome, RunOutcome::Halted(expected));
    }

    #[test]
    fn branches_agree_with_comparison_semantics(a in any::<u32>(), b in any::<u32>()) {
        let cases: Vec<(Cond, bool)> = vec![
            (Cond::Z, a == b),
            (Cond::Nz, a != b),
            (Cond::Lt, (a as i32) < (b as i32)),
            (Cond::Ge, (a as i32) >= (b as i32)),
            (Cond::Le, (a as i32) <= (b as i32)),
            (Cond::Gt, (a as i32) > (b as i32)),
            (Cond::B, a < b),
            (Cond::Ae, a >= b),
        ];
        for (cond, expected) in cases {
            // taken -> exit 1, not taken -> exit 0.
            // Layout: movi(6) movi(6) cmp(2) jcc(5) movi(6) sys(2) [taken: movi(6) sys(2)]
            let taken_target = TEXT + 6 + 6 + 2 + 5 + 6 + 2;
            let (outcome, _) = run_program(&[
                Instr::MovI { dst: Reg::R0, imm: a },
                Instr::MovI { dst: Reg::R1, imm: b },
                Instr::Cmp { a: Reg::R0, b: Reg::R1 },
                Instr::JCond { cond, target: taken_target },
                Instr::MovI { dst: Reg::R0, imm: 0 },
                Instr::Sys(sys::EXIT),
                Instr::MovI { dst: Reg::R0, imm: 1 },
                Instr::Sys(sys::EXIT),
            ]);
            prop_assert_eq!(
                outcome,
                RunOutcome::Halted(u32::from(expected)),
                "cond {:?} a {} b {}", cond, a, b
            );
        }
    }

    #[test]
    fn memory_word_roundtrip_at_any_offset(
        value in any::<u32>(),
        offset in 0u32..4000,
    ) {
        let base = STACK_TOP - 0x1000;
        let (outcome, _) = run_program(&[
            Instr::MovI { dst: Reg::R1, imm: base + offset },
            Instr::MovI { dst: Reg::R0, imm: value },
            Instr::Store { base: Reg::R1, disp: 0, src: Reg::R0 },
            Instr::MovI { dst: Reg::R0, imm: 0 },
            Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 0 },
            Instr::Sys(sys::EXIT),
        ]);
        prop_assert_eq!(outcome, RunOutcome::Halted(value));
    }

    #[test]
    fn byte_stores_only_touch_one_byte(value in any::<u32>(), junk in any::<u32>()) {
        let base = STACK_TOP - 0x1000;
        let (outcome, _) = run_program(&[
            Instr::MovI { dst: Reg::R1, imm: base },
            Instr::MovI { dst: Reg::R0, imm: junk },
            Instr::Store { base: Reg::R1, disp: 0, src: Reg::R0 },
            Instr::MovI { dst: Reg::R0, imm: value },
            Instr::StoreB { base: Reg::R1, disp: 0, src: Reg::R0 },
            Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 0 },
            Instr::Sys(sys::EXIT),
        ]);
        let expected = (junk & 0xffff_ff00) | (value & 0xff);
        prop_assert_eq!(outcome, RunOutcome::Halted(expected));
    }

    #[test]
    fn call_ret_preserves_control_flow(depth in 1usize..12) {
        // A chain of `depth` nested calls, each adding 1, then returns
        // all the way back.
        // f_i: call f_{i+1}; addi r0, 1; ret     f_last: movi r0, 0; ret
        let call_len = 5 + 6 + 1; // call + addi + ret
        let mut instrs = Vec::new();
        // main: call f0; sys exit  (5 + 2 bytes)
        instrs.push(Instr::Call(TEXT + 7));
        instrs.push(Instr::Sys(sys::EXIT));
        for i in 0..depth {
            let next = TEXT + 7 + ((i + 1) * call_len) as u32;
            instrs.push(Instr::Call(next));
            instrs.push(Instr::AddI { dst: Reg::R0, imm: 1 });
            instrs.push(Instr::Ret);
        }
        instrs.push(Instr::MovI { dst: Reg::R0, imm: 0 });
        instrs.push(Instr::Ret);
        let (outcome, m) = run_program(&instrs);
        prop_assert_eq!(outcome, RunOutcome::Halted(depth as u32));
        prop_assert_eq!(m.stats().calls, depth as u64 + 1);
        prop_assert_eq!(m.stats().rets, depth as u64 + 1);
    }
}
