//! Process-wide VM counters, for fleet-level observability.
//!
//! Every [`Machine`](crate::cpu::Machine) folds its final
//! [`ExecStats`](crate::trace::ExecStats) into these atomics when it is
//! dropped. Callers that drive many machines — the campaign runner,
//! the benchmark harness — take a [`snapshot`] before and after a run
//! and report the difference, e.g. aggregate icache and TLB hit rates
//! across every machine any experiment launched.
//!
//! The totals are monotone and process-global (tests running in
//! parallel all contribute), so only *deltas* between snapshots are
//! meaningful, and they belong in run *metadata* (the campaign
//! summary), never in deterministic report bodies.
//!
//! ## Quarantine: detaching watchdog-abandoned threads
//!
//! The campaign runner contains misbehaving cells with a deadline
//! watchdog; a timed-out attempt's thread cannot be killed, only
//! *abandoned* — it keeps running (and keeps dropping machines) after
//! its campaign has resolved. Without intervention those zombie drops
//! would land in the live totals and skew the `vm.*` deltas of every
//! *later* campaign or service job sharing the process.
//!
//! The fix is a per-thread quarantine flag: the watchdog hands each
//! attempt thread a shared [`AtomicBool`] via [`with_quarantine`], and
//! flips it when it gives up on the attempt. From that moment every
//! counter update made by the abandoned thread is diverted into a
//! separate **leaked** bank, visible through [`leaked_snapshot`] but
//! excluded from [`snapshot`] — the live totals a healthy run windows
//! over. The flag is checked with one relaxed load per *machine event*
//! (drop/snapshot/restore/sample), not per instruction, so the hot
//! path is untouched.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::trace::ExecStats;

/// One full set of the twenty VM counters. Two instances exist: the
/// live bank (healthy threads) and the leaked bank (threads abandoned
/// by a deadline watchdog).
struct Bank {
    instructions: AtomicU64,
    icache_hits: AtomicU64,
    icache_misses: AtomicU64,
    tlb_hits: AtomicU64,
    tlb_misses: AtomicU64,
    tier2_compiled: AtomicU64,
    tier2_hits: AtomicU64,
    tier2_instructions: AtomicU64,
    tier2_side_exits: AtomicU64,
    tier2_invalidations: AtomicU64,
    tier2_ic_hits: AtomicU64,
    tier2_ic_misses: AtomicU64,
    tier2_ic_installs: AtomicU64,
    tier2_ic_megamorphic: AtomicU64,
    snapshots: AtomicU64,
    restores: AtomicU64,
    restore_dirty_pages: AtomicU64,
    restore_bytes: AtomicU64,
    prof_samples: AtomicU64,
    prof_frames: AtomicU64,
}

impl Bank {
    const fn new() -> Bank {
        Bank {
            instructions: AtomicU64::new(0),
            icache_hits: AtomicU64::new(0),
            icache_misses: AtomicU64::new(0),
            tlb_hits: AtomicU64::new(0),
            tlb_misses: AtomicU64::new(0),
            tier2_compiled: AtomicU64::new(0),
            tier2_hits: AtomicU64::new(0),
            tier2_instructions: AtomicU64::new(0),
            tier2_side_exits: AtomicU64::new(0),
            tier2_invalidations: AtomicU64::new(0),
            tier2_ic_hits: AtomicU64::new(0),
            tier2_ic_misses: AtomicU64::new(0),
            tier2_ic_installs: AtomicU64::new(0),
            tier2_ic_megamorphic: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            restore_dirty_pages: AtomicU64::new(0),
            restore_bytes: AtomicU64::new(0),
            prof_samples: AtomicU64::new(0),
            prof_frames: AtomicU64::new(0),
        }
    }

    fn read(&self) -> VmCounters {
        VmCounters {
            instructions: self.instructions.load(Ordering::Relaxed),
            icache_hits: self.icache_hits.load(Ordering::Relaxed),
            icache_misses: self.icache_misses.load(Ordering::Relaxed),
            tlb_hits: self.tlb_hits.load(Ordering::Relaxed),
            tlb_misses: self.tlb_misses.load(Ordering::Relaxed),
            tier2_compiled: self.tier2_compiled.load(Ordering::Relaxed),
            tier2_hits: self.tier2_hits.load(Ordering::Relaxed),
            tier2_instructions: self.tier2_instructions.load(Ordering::Relaxed),
            tier2_side_exits: self.tier2_side_exits.load(Ordering::Relaxed),
            tier2_invalidations: self.tier2_invalidations.load(Ordering::Relaxed),
            tier2_ic_hits: self.tier2_ic_hits.load(Ordering::Relaxed),
            tier2_ic_misses: self.tier2_ic_misses.load(Ordering::Relaxed),
            tier2_ic_installs: self.tier2_ic_installs.load(Ordering::Relaxed),
            tier2_ic_megamorphic: self.tier2_ic_megamorphic.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
            restore_dirty_pages: self.restore_dirty_pages.load(Ordering::Relaxed),
            restore_bytes: self.restore_bytes.load(Ordering::Relaxed),
            prof_samples: self.prof_samples.load(Ordering::Relaxed),
            prof_frames: self.prof_frames.load(Ordering::Relaxed),
        }
    }
}

/// Healthy-thread totals: what [`snapshot`] reads.
static LIVE: Bank = Bank::new();
/// Contributions diverted from watchdog-abandoned threads.
static LEAKED: Bank = Bank::new();

thread_local! {
    /// The quarantine flag the current thread's containment harness
    /// installed, if any. Shared with the watchdog that may abandon
    /// this thread.
    static QUARANTINE: RefCell<Option<Arc<AtomicBool>>> = const { RefCell::new(None) };
}

/// Runs `f` with `flag` installed as this thread's quarantine flag,
/// restoring the previous flag afterwards (unwind-safe: the guard
/// restores on panic too, so `catch_unwind` harnesses compose).
///
/// While the flag reads `true`, every VM counter update made by this
/// thread — machine drops, snapshots, restores, profiler samples — is
/// diverted to the leaked bank instead of the live totals. Containment
/// harnesses (the campaign watchdog, the serve job runner) install the
/// flag before running untrusted cell code and flip it when they give
/// the attempt up for dead.
pub fn with_quarantine<R>(flag: Arc<AtomicBool>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<AtomicBool>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            QUARANTINE.with(|q| *q.borrow_mut() = self.0.take());
        }
    }
    let prev = QUARANTINE.with(|q| q.borrow_mut().replace(flag));
    let _restore = Restore(prev);
    f()
}

/// Whether the current thread has been abandoned by its watchdog (its
/// installed quarantine flag reads `true`). Threads with no installed
/// flag are never quarantined.
pub fn thread_quarantined() -> bool {
    QUARANTINE.with(|q| {
        q.borrow()
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Acquire))
    })
}

/// The bank the current thread's updates belong in.
fn bank() -> &'static Bank {
    if thread_quarantined() {
        &LEAKED
    } else {
        &LIVE
    }
}

/// A point-in-time reading of the process-wide VM counters.
///
/// Subtract two snapshots (see [`VmCounters::since`]) to measure one
/// run's contribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmCounters {
    /// Instructions executed by machines dropped so far.
    pub instructions: u64,
    /// Decoded-instruction-cache hits.
    pub icache_hits: u64,
    /// Decoded-instruction-cache misses.
    pub icache_misses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Tier-2 superinstruction blocks compiled.
    pub tier2_compiled: u64,
    /// Tier-2 block-cache hits (block entries).
    pub tier2_hits: u64,
    /// Instructions retired inside tier-2 blocks.
    pub tier2_instructions: u64,
    /// Early exits from tier-2 blocks (fault, fuel, self-modifying
    /// store).
    pub tier2_side_exits: u64,
    /// Tier-2 blocks dropped on a failed generation check.
    pub tier2_invalidations: u64,
    /// Dynamic-transfer inline-cache hits (predicted chain entries).
    pub tier2_ic_hits: u64,
    /// Inline-cache probes that fell back to the full block lookup.
    pub tier2_ic_misses: u64,
    /// Predictions installed into inline caches after misses.
    pub tier2_ic_installs: u64,
    /// Inline caches gone megamorphic (prediction given up).
    pub tier2_ic_megamorphic: u64,
    /// Machine snapshots taken ([`Machine::snapshot`](crate::cpu::Machine::snapshot)).
    pub snapshots: u64,
    /// Machine restores performed
    /// ([`Machine::restore_from`](crate::cpu::Machine::restore_from)).
    pub restores: u64,
    /// Dirty pages copied back across all restores.
    pub restore_dirty_pages: u64,
    /// Bytes copied back across all restores.
    pub restore_bytes: u64,
    /// Profiler samples taken (see [`crate::profile`]).
    pub prof_samples: u64,
    /// Stack frames recorded across all profiler samples.
    pub prof_frames: u64,
}

impl VmCounters {
    /// The counter increments between `earlier` and `self` (saturating,
    /// so a stale snapshot never underflows).
    pub fn since(self, earlier: VmCounters) -> VmCounters {
        VmCounters {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            icache_hits: self.icache_hits.saturating_sub(earlier.icache_hits),
            icache_misses: self.icache_misses.saturating_sub(earlier.icache_misses),
            tlb_hits: self.tlb_hits.saturating_sub(earlier.tlb_hits),
            tlb_misses: self.tlb_misses.saturating_sub(earlier.tlb_misses),
            tier2_compiled: self.tier2_compiled.saturating_sub(earlier.tier2_compiled),
            tier2_hits: self.tier2_hits.saturating_sub(earlier.tier2_hits),
            tier2_instructions: self
                .tier2_instructions
                .saturating_sub(earlier.tier2_instructions),
            tier2_side_exits: self.tier2_side_exits.saturating_sub(earlier.tier2_side_exits),
            tier2_invalidations: self
                .tier2_invalidations
                .saturating_sub(earlier.tier2_invalidations),
            tier2_ic_hits: self.tier2_ic_hits.saturating_sub(earlier.tier2_ic_hits),
            tier2_ic_misses: self.tier2_ic_misses.saturating_sub(earlier.tier2_ic_misses),
            tier2_ic_installs: self.tier2_ic_installs.saturating_sub(earlier.tier2_ic_installs),
            tier2_ic_megamorphic: self
                .tier2_ic_megamorphic
                .saturating_sub(earlier.tier2_ic_megamorphic),
            snapshots: self.snapshots.saturating_sub(earlier.snapshots),
            restores: self.restores.saturating_sub(earlier.restores),
            restore_dirty_pages: self
                .restore_dirty_pages
                .saturating_sub(earlier.restore_dirty_pages),
            restore_bytes: self.restore_bytes.saturating_sub(earlier.restore_bytes),
            prof_samples: self.prof_samples.saturating_sub(earlier.prof_samples),
            prof_frames: self.prof_frames.saturating_sub(earlier.prof_frames),
        }
    }

    /// Mean dirty pages copied per restore; `None` when no restore was
    /// counted.
    pub fn mean_dirty_pages(self) -> Option<f64> {
        (self.restores > 0).then(|| self.restore_dirty_pages as f64 / self.restores as f64)
    }

    /// Hit fraction of the decoded-instruction cache, in `[0, 1]`;
    /// `None` when no fetch was counted.
    pub fn icache_hit_rate(self) -> Option<f64> {
        rate(self.icache_hits, self.icache_misses)
    }

    /// Hit fraction of the TLBs, in `[0, 1]`; `None` when no access
    /// was counted.
    pub fn tlb_hit_rate(self) -> Option<f64> {
        rate(self.tlb_hits, self.tlb_misses)
    }
}

fn rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| hits as f64 / total as f64)
}

/// Reads the current process-wide totals from healthy threads.
/// Contributions diverted from quarantined (watchdog-abandoned)
/// threads are excluded; see [`leaked_snapshot`].
pub fn snapshot() -> VmCounters {
    LIVE.read()
}

/// Reads the totals diverted from quarantined threads — machines still
/// being driven by attempts a deadline watchdog gave up on. Monotone,
/// like [`snapshot`]; a growing delta here is proof a leaked cell is
/// still burning cycles, and the live totals staying clean is the
/// detachment contract.
pub fn leaked_snapshot() -> VmCounters {
    LEAKED.read()
}

/// Counts one machine snapshot. Called from `Machine::snapshot`.
pub(crate) fn note_snapshot() {
    bank().snapshots.fetch_add(1, Ordering::Relaxed);
}

/// Counts one profiler sample and its recorded stack depth. Called
/// from the machine's (cold) sample path.
pub(crate) fn note_prof_sample(frames: u64) {
    let bank = bank();
    bank.prof_samples.fetch_add(1, Ordering::Relaxed);
    bank.prof_frames.fetch_add(frames, Ordering::Relaxed);
}

/// Counts one machine restore and what it copied. Called from
/// `Machine::restore_from`.
pub(crate) fn note_restore(dirty_pages: u64, bytes: u64) {
    let bank = bank();
    bank.restores.fetch_add(1, Ordering::Relaxed);
    bank.restore_dirty_pages.fetch_add(dirty_pages, Ordering::Relaxed);
    bank.restore_bytes.fetch_add(bytes, Ordering::Relaxed);
}

/// Folds one machine's lifetime stats into the global totals. Called
/// from `Machine::drop`; cheap (a handful of relaxed adds per machine,
/// not per instruction).
pub(crate) fn absorb(stats: &ExecStats) {
    let bank = bank();
    bank.instructions.fetch_add(stats.instructions, Ordering::Relaxed);
    bank.icache_hits.fetch_add(stats.icache_hits, Ordering::Relaxed);
    bank.icache_misses.fetch_add(stats.icache_misses, Ordering::Relaxed);
    bank.tlb_hits.fetch_add(stats.tlb_hits, Ordering::Relaxed);
    bank.tlb_misses.fetch_add(stats.tlb_misses, Ordering::Relaxed);
    bank.tier2_compiled.fetch_add(stats.tier2_compiled, Ordering::Relaxed);
    bank.tier2_hits.fetch_add(stats.tier2_hits, Ordering::Relaxed);
    bank.tier2_instructions
        .fetch_add(stats.tier2_instructions, Ordering::Relaxed);
    bank.tier2_side_exits
        .fetch_add(stats.tier2_side_exits, Ordering::Relaxed);
    bank.tier2_invalidations
        .fetch_add(stats.tier2_invalidations, Ordering::Relaxed);
    bank.tier2_ic_hits.fetch_add(stats.tier2_ic_hits, Ordering::Relaxed);
    bank.tier2_ic_misses.fetch_add(stats.tier2_ic_misses, Ordering::Relaxed);
    bank.tier2_ic_installs
        .fetch_add(stats.tier2_ic_installs, Ordering::Relaxed);
    bank.tier2_ic_megamorphic
        .fetch_add(stats.tier2_ic_megamorphic, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_and_rates() {
        let a = VmCounters {
            instructions: 100,
            icache_hits: 90,
            icache_misses: 10,
            restores: 4,
            restore_dirty_pages: 6,
            ..VmCounters::default()
        };
        let d = a.since(VmCounters::default());
        assert_eq!(d, a);
        assert_eq!(d.icache_hit_rate(), Some(0.9));
        assert_eq!(d.tlb_hit_rate(), None);
        assert_eq!(d.mean_dirty_pages(), Some(1.5));
        assert_eq!(VmCounters::default().mean_dirty_pages(), None);
        // Stale (larger) snapshots saturate instead of underflowing.
        assert_eq!(VmCounters::default().since(a).instructions, 0);
    }

    #[test]
    fn concurrent_machine_drops_absorb_without_loss() {
        use crate::cpu::{Machine, RunOutcome};
        use crate::isa::{sys, Instr, Reg};
        use crate::mem::Perm;

        // Two machines run and drop on separate threads; every
        // instruction both executed must land in the process totals
        // (relaxed atomics, but no lost updates).
        let run_one = |loops: u32| {
            let mut code = Vec::new();
            for _ in 0..loops {
                Instr::Nop.encode(&mut code);
            }
            Instr::MovI { dst: Reg::R0, imm: 0 }.encode(&mut code);
            Instr::Sys(sys::EXIT).encode(&mut code);
            let mut m = Machine::new();
            m.mem_mut().map(0x1000, 0x1000, Perm::RX).unwrap();
            m.mem_mut().poke_bytes(0x1000, &code).unwrap();
            m.set_ip(0x1000);
            assert_eq!(m.run(10_000), RunOutcome::Halted(0));
            let executed = m.stats().instructions;
            drop(m); // absorb happens here
            executed
        };
        let before = snapshot();
        let t1 = std::thread::spawn(move || run_one(300));
        let t2 = std::thread::spawn(move || run_one(500));
        let a = t1.join().expect("thread 1");
        let b = t2.join().expect("thread 2");
        assert_eq!(a, 302);
        assert_eq!(b, 502);
        let delta = snapshot().since(before);
        // Other tests may add more concurrently, never less.
        assert!(
            delta.instructions >= a + b,
            "absorbed {} < executed {}",
            delta.instructions,
            a + b
        );
    }

    #[test]
    fn absorb_moves_the_snapshot() {
        let before = snapshot();
        absorb(&ExecStats {
            instructions: 5,
            icache_hits: 3,
            tlb_misses: 2,
            ..ExecStats::default()
        });
        let delta = snapshot().since(before);
        // Parallel tests may add more, never less.
        assert!(delta.instructions >= 5);
        assert!(delta.icache_hits >= 3);
        assert!(delta.tlb_misses >= 2);
    }

    #[test]
    fn quarantined_updates_divert_to_the_leaked_bank() {
        let flag = Arc::new(AtomicBool::new(false));
        let live_before = snapshot();
        let leaked_before = leaked_snapshot();
        with_quarantine(Arc::clone(&flag), || {
            // Flag clear: the thread is contained but healthy, so its
            // updates stay live.
            assert!(!thread_quarantined());
            absorb(&ExecStats {
                instructions: 7,
                ..ExecStats::default()
            });
            // The watchdog gives this attempt up: from here on, every
            // update is diverted.
            flag.store(true, Ordering::Release);
            assert!(thread_quarantined());
            absorb(&ExecStats {
                instructions: 1_000_000_011,
                ..ExecStats::default()
            });
            note_snapshot();
            note_restore(3, 4096);
            note_prof_sample(5);
        });
        // The scope is over: the flag no longer applies to this thread.
        assert!(!thread_quarantined());
        let live = snapshot().since(live_before);
        let leaked = leaked_snapshot().since(leaked_before);
        // The healthy prefix landed live (parallel tests may add more).
        assert!(live.instructions >= 7);
        // The post-abandonment burst landed leaked, not live: the live
        // delta stays below the diverted amount even with every other
        // test in the process contributing.
        assert!(live.instructions < 1_000_000_011);
        assert!(leaked.instructions >= 1_000_000_011);
        assert!(leaked.snapshots >= 1);
        assert!(leaked.restores >= 1);
        assert!(leaked.restore_dirty_pages >= 3);
        assert!(leaked.prof_samples >= 1);
        assert!(leaked.prof_frames >= 5);
    }

    #[test]
    fn quarantine_scopes_nest_and_restore() {
        let outer = Arc::new(AtomicBool::new(true));
        let inner = Arc::new(AtomicBool::new(false));
        with_quarantine(Arc::clone(&outer), || {
            assert!(thread_quarantined());
            with_quarantine(Arc::clone(&inner), || {
                // The innermost flag wins while installed.
                assert!(!thread_quarantined());
            });
            assert!(thread_quarantined());
        });
        assert!(!thread_quarantined());
    }
}
