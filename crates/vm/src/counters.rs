//! Process-wide VM counters, for fleet-level observability.
//!
//! Every [`Machine`](crate::cpu::Machine) folds its final
//! [`ExecStats`](crate::trace::ExecStats) into these atomics when it is
//! dropped. Callers that drive many machines — the campaign runner,
//! the benchmark harness — take a [`snapshot`] before and after a run
//! and report the difference, e.g. aggregate icache and TLB hit rates
//! across every machine any experiment launched.
//!
//! The totals are monotone and process-global (tests running in
//! parallel all contribute), so only *deltas* between snapshots are
//! meaningful, and they belong in run *metadata* (the campaign
//! summary), never in deterministic report bodies.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::trace::ExecStats;

static INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static ICACHE_HITS: AtomicU64 = AtomicU64::new(0);
static ICACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static TLB_HITS: AtomicU64 = AtomicU64::new(0);
static TLB_MISSES: AtomicU64 = AtomicU64::new(0);
static TIER2_COMPILED: AtomicU64 = AtomicU64::new(0);
static TIER2_HITS: AtomicU64 = AtomicU64::new(0);
static TIER2_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static TIER2_SIDE_EXITS: AtomicU64 = AtomicU64::new(0);
static TIER2_INVALIDATIONS: AtomicU64 = AtomicU64::new(0);
static SNAPSHOTS: AtomicU64 = AtomicU64::new(0);
static RESTORES: AtomicU64 = AtomicU64::new(0);
static RESTORE_DIRTY_PAGES: AtomicU64 = AtomicU64::new(0);
static RESTORE_BYTES: AtomicU64 = AtomicU64::new(0);
static PROF_SAMPLES: AtomicU64 = AtomicU64::new(0);
static PROF_FRAMES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the process-wide VM counters.
///
/// Subtract two snapshots (see [`VmCounters::since`]) to measure one
/// run's contribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmCounters {
    /// Instructions executed by machines dropped so far.
    pub instructions: u64,
    /// Decoded-instruction-cache hits.
    pub icache_hits: u64,
    /// Decoded-instruction-cache misses.
    pub icache_misses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Tier-2 superinstruction blocks compiled.
    pub tier2_compiled: u64,
    /// Tier-2 block-cache hits (block entries).
    pub tier2_hits: u64,
    /// Instructions retired inside tier-2 blocks.
    pub tier2_instructions: u64,
    /// Early exits from tier-2 blocks (fault, fuel, self-modifying
    /// store).
    pub tier2_side_exits: u64,
    /// Tier-2 blocks dropped on a failed generation check.
    pub tier2_invalidations: u64,
    /// Machine snapshots taken ([`Machine::snapshot`](crate::cpu::Machine::snapshot)).
    pub snapshots: u64,
    /// Machine restores performed
    /// ([`Machine::restore_from`](crate::cpu::Machine::restore_from)).
    pub restores: u64,
    /// Dirty pages copied back across all restores.
    pub restore_dirty_pages: u64,
    /// Bytes copied back across all restores.
    pub restore_bytes: u64,
    /// Profiler samples taken (see [`crate::profile`]).
    pub prof_samples: u64,
    /// Stack frames recorded across all profiler samples.
    pub prof_frames: u64,
}

impl VmCounters {
    /// The counter increments between `earlier` and `self` (saturating,
    /// so a stale snapshot never underflows).
    pub fn since(self, earlier: VmCounters) -> VmCounters {
        VmCounters {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            icache_hits: self.icache_hits.saturating_sub(earlier.icache_hits),
            icache_misses: self.icache_misses.saturating_sub(earlier.icache_misses),
            tlb_hits: self.tlb_hits.saturating_sub(earlier.tlb_hits),
            tlb_misses: self.tlb_misses.saturating_sub(earlier.tlb_misses),
            tier2_compiled: self.tier2_compiled.saturating_sub(earlier.tier2_compiled),
            tier2_hits: self.tier2_hits.saturating_sub(earlier.tier2_hits),
            tier2_instructions: self
                .tier2_instructions
                .saturating_sub(earlier.tier2_instructions),
            tier2_side_exits: self.tier2_side_exits.saturating_sub(earlier.tier2_side_exits),
            tier2_invalidations: self
                .tier2_invalidations
                .saturating_sub(earlier.tier2_invalidations),
            snapshots: self.snapshots.saturating_sub(earlier.snapshots),
            restores: self.restores.saturating_sub(earlier.restores),
            restore_dirty_pages: self
                .restore_dirty_pages
                .saturating_sub(earlier.restore_dirty_pages),
            restore_bytes: self.restore_bytes.saturating_sub(earlier.restore_bytes),
            prof_samples: self.prof_samples.saturating_sub(earlier.prof_samples),
            prof_frames: self.prof_frames.saturating_sub(earlier.prof_frames),
        }
    }

    /// Mean dirty pages copied per restore; `None` when no restore was
    /// counted.
    pub fn mean_dirty_pages(self) -> Option<f64> {
        (self.restores > 0).then(|| self.restore_dirty_pages as f64 / self.restores as f64)
    }

    /// Hit fraction of the decoded-instruction cache, in `[0, 1]`;
    /// `None` when no fetch was counted.
    pub fn icache_hit_rate(self) -> Option<f64> {
        rate(self.icache_hits, self.icache_misses)
    }

    /// Hit fraction of the TLBs, in `[0, 1]`; `None` when no access
    /// was counted.
    pub fn tlb_hit_rate(self) -> Option<f64> {
        rate(self.tlb_hits, self.tlb_misses)
    }
}

fn rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| hits as f64 / total as f64)
}

/// Reads the current process-wide totals.
pub fn snapshot() -> VmCounters {
    VmCounters {
        instructions: INSTRUCTIONS.load(Ordering::Relaxed),
        icache_hits: ICACHE_HITS.load(Ordering::Relaxed),
        icache_misses: ICACHE_MISSES.load(Ordering::Relaxed),
        tlb_hits: TLB_HITS.load(Ordering::Relaxed),
        tlb_misses: TLB_MISSES.load(Ordering::Relaxed),
        tier2_compiled: TIER2_COMPILED.load(Ordering::Relaxed),
        tier2_hits: TIER2_HITS.load(Ordering::Relaxed),
        tier2_instructions: TIER2_INSTRUCTIONS.load(Ordering::Relaxed),
        tier2_side_exits: TIER2_SIDE_EXITS.load(Ordering::Relaxed),
        tier2_invalidations: TIER2_INVALIDATIONS.load(Ordering::Relaxed),
        snapshots: SNAPSHOTS.load(Ordering::Relaxed),
        restores: RESTORES.load(Ordering::Relaxed),
        restore_dirty_pages: RESTORE_DIRTY_PAGES.load(Ordering::Relaxed),
        restore_bytes: RESTORE_BYTES.load(Ordering::Relaxed),
        prof_samples: PROF_SAMPLES.load(Ordering::Relaxed),
        prof_frames: PROF_FRAMES.load(Ordering::Relaxed),
    }
}

/// Counts one machine snapshot. Called from `Machine::snapshot`.
pub(crate) fn note_snapshot() {
    SNAPSHOTS.fetch_add(1, Ordering::Relaxed);
}

/// Counts one profiler sample and its recorded stack depth. Called
/// from the machine's (cold) sample path.
pub(crate) fn note_prof_sample(frames: u64) {
    PROF_SAMPLES.fetch_add(1, Ordering::Relaxed);
    PROF_FRAMES.fetch_add(frames, Ordering::Relaxed);
}

/// Counts one machine restore and what it copied. Called from
/// `Machine::restore_from`.
pub(crate) fn note_restore(dirty_pages: u64, bytes: u64) {
    RESTORES.fetch_add(1, Ordering::Relaxed);
    RESTORE_DIRTY_PAGES.fetch_add(dirty_pages, Ordering::Relaxed);
    RESTORE_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Folds one machine's lifetime stats into the global totals. Called
/// from `Machine::drop`; cheap (a handful of relaxed adds per machine,
/// not per instruction).
pub(crate) fn absorb(stats: &ExecStats) {
    INSTRUCTIONS.fetch_add(stats.instructions, Ordering::Relaxed);
    ICACHE_HITS.fetch_add(stats.icache_hits, Ordering::Relaxed);
    ICACHE_MISSES.fetch_add(stats.icache_misses, Ordering::Relaxed);
    TLB_HITS.fetch_add(stats.tlb_hits, Ordering::Relaxed);
    TLB_MISSES.fetch_add(stats.tlb_misses, Ordering::Relaxed);
    TIER2_COMPILED.fetch_add(stats.tier2_compiled, Ordering::Relaxed);
    TIER2_HITS.fetch_add(stats.tier2_hits, Ordering::Relaxed);
    TIER2_INSTRUCTIONS.fetch_add(stats.tier2_instructions, Ordering::Relaxed);
    TIER2_SIDE_EXITS.fetch_add(stats.tier2_side_exits, Ordering::Relaxed);
    TIER2_INVALIDATIONS.fetch_add(stats.tier2_invalidations, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_and_rates() {
        let a = VmCounters {
            instructions: 100,
            icache_hits: 90,
            icache_misses: 10,
            restores: 4,
            restore_dirty_pages: 6,
            ..VmCounters::default()
        };
        let d = a.since(VmCounters::default());
        assert_eq!(d, a);
        assert_eq!(d.icache_hit_rate(), Some(0.9));
        assert_eq!(d.tlb_hit_rate(), None);
        assert_eq!(d.mean_dirty_pages(), Some(1.5));
        assert_eq!(VmCounters::default().mean_dirty_pages(), None);
        // Stale (larger) snapshots saturate instead of underflowing.
        assert_eq!(VmCounters::default().since(a).instructions, 0);
    }

    #[test]
    fn concurrent_machine_drops_absorb_without_loss() {
        use crate::cpu::{Machine, RunOutcome};
        use crate::isa::{sys, Instr, Reg};
        use crate::mem::Perm;

        // Two machines run and drop on separate threads; every
        // instruction both executed must land in the process totals
        // (relaxed atomics, but no lost updates).
        let run_one = |loops: u32| {
            let mut code = Vec::new();
            for _ in 0..loops {
                Instr::Nop.encode(&mut code);
            }
            Instr::MovI { dst: Reg::R0, imm: 0 }.encode(&mut code);
            Instr::Sys(sys::EXIT).encode(&mut code);
            let mut m = Machine::new();
            m.mem_mut().map(0x1000, 0x1000, Perm::RX).unwrap();
            m.mem_mut().poke_bytes(0x1000, &code).unwrap();
            m.set_ip(0x1000);
            assert_eq!(m.run(10_000), RunOutcome::Halted(0));
            let executed = m.stats().instructions;
            drop(m); // absorb happens here
            executed
        };
        let before = snapshot();
        let t1 = std::thread::spawn(move || run_one(300));
        let t2 = std::thread::spawn(move || run_one(500));
        let a = t1.join().expect("thread 1");
        let b = t2.join().expect("thread 2");
        assert_eq!(a, 302);
        assert_eq!(b, 502);
        let delta = snapshot().since(before);
        // Other tests may add more concurrently, never less.
        assert!(
            delta.instructions >= a + b,
            "absorbed {} < executed {}",
            delta.instructions,
            a + b
        );
    }

    #[test]
    fn absorb_moves_the_snapshot() {
        let before = snapshot();
        absorb(&ExecStats {
            instructions: 5,
            icache_hits: 3,
            tlb_misses: 2,
            ..ExecStats::default()
        });
        let delta = snapshot().since(before);
        // Parallel tests may add more, never less.
        assert!(delta.instructions >= 5);
        assert!(delta.icache_hits >= 3);
        assert!(delta.tlb_misses >= 2);
    }
}
