//! Deterministic sampling profiler: guest flamegraphs from retired
//! instructions, not wall time.
//!
//! A [`Profiler`] samples every `interval` **retired instructions** —
//! a pure function of the executed program, never of the host clock —
//! so the same seed produces the same profile at any worker count, on
//! any machine, and in fork vs rebuild serve modes. Each sample
//! records the guest PC plus a call-stack walk: the shadow stack when
//! the machine has one (exact), otherwise a bounded scan of the
//! `[bp] → saved bp / [bp+4] → return address` frame chain.
//!
//! # Tier-2 interaction
//!
//! Profiling never forces tier 1. The tier-2 block engine keeps
//! running between samples; the machine clips each block chain's fuel
//! budget to the distance to the next sample point, so the sampled
//! instruction itself always retires in a tier-1 step with an exact PC
//! and architectural stack. Retired-instruction attribution from
//! blocks is folded in bulk at chain exit — one subtraction per chain,
//! nothing per instruction.
//!
//! # Cost model
//!
//! The machine's hot path carries a single countdown decrement per
//! tier-1 step (initialized to `u64::MAX` when no profiler is attached
//! or sampling is disabled, so there is no `Option` check); everything
//! else lives behind a `#[cold]` function. The vmbench profiling leg
//! gates the disabled-profiler overhead at the bench stand's 3% noise
//! floor (design target ≤1%; the measured cost is ~0%) and 1/4096
//! sampling at ≤10%.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use swsec_obs::SymbolTable;

/// Sampling interval used by the stock integrations (one sample per
/// 4096 retired instructions — fine enough to profile a 10⁵-instruction
/// attempt, coarse enough to stay within the ≤10% overhead gate).
pub const DEFAULT_INTERVAL: u64 = 4096;

/// A shared, deterministic sampling profile. Clone the [`Arc`] onto as
/// many machines as you like; sample counts merge associatively, so
/// aggregation order (worker scheduling) cannot change the totals.
#[derive(Debug)]
pub struct Profiler {
    interval: u64,
    samples: Mutex<BTreeMap<Vec<u32>, u64>>,
}

impl Profiler {
    /// A profiler sampling every `interval` retired instructions.
    /// `interval` 0 means *attached but disabled*: machines carry the
    /// profiler (and may be enabled later via a fresh attach) but never
    /// sample — the configuration the ≤1% overhead gate measures.
    #[must_use]
    pub fn new(interval: u64) -> Profiler {
        Profiler {
            interval,
            samples: Mutex::new(BTreeMap::new()),
        }
    }

    /// The sampling interval (0 = disabled).
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The countdown a machine arms itself with: `u64::MAX` when
    /// sampling is disabled (the countdown then never reaches zero).
    pub(crate) fn countdown_init(&self) -> u64 {
        if self.interval == 0 {
            u64::MAX
        } else {
            self.interval
        }
    }

    /// Records one sample of a root-first stack (return addresses from
    /// the outermost caller inward, then the sampled PC as the leaf).
    pub fn record(&self, stack: &[u32]) {
        let mut samples = self.samples.lock().unwrap_or_else(|p| p.into_inner());
        *samples.entry(stack.to_vec()).or_insert(0) += 1;
    }

    /// Total samples recorded so far.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.samples
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .sum()
    }

    /// Every distinct stack with its sample count, in deterministic
    /// (lexicographic) stack order.
    #[must_use]
    pub fn samples(&self) -> Vec<(Vec<u32>, u64)> {
        self.samples
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(stack, n)| (stack.clone(), *n))
            .collect()
    }

    /// Discards every recorded sample (the interval is kept).
    pub fn clear(&self) {
        self.samples
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }

    /// Renders the profile in Brendan Gregg's `.folded` flamegraph
    /// format — one `frame;frame;leaf count` line per distinct stack,
    /// sorted lexicographically. Frames resolve through `symbols`;
    /// unresolved addresses render as `0x{addr:x}`. Deterministic: a
    /// pure function of the recorded samples and the table.
    #[must_use]
    pub fn folded(&self, symbols: &SymbolTable) -> String {
        let mut lines: Vec<String> = self
            .samples
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(stack, count)| {
                let frames: Vec<String> =
                    stack.iter().map(|addr| symbols.frame(*addr)).collect();
                format!("{} {count}", frames.join(";"))
            })
            .collect();
        lines.sort();
        let mut out = String::with_capacity(lines.len() * 32);
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

static DEFAULT_PROFILER: OnceLock<RwLock<Option<Arc<Profiler>>>> = OnceLock::new();

fn default_cell() -> &'static RwLock<Option<Arc<Profiler>>> {
    DEFAULT_PROFILER.get_or_init(|| RwLock::new(None))
}

/// Installs a process-wide default profiler; every subsequently created
/// [`Machine`](crate::cpu::Machine) attaches it (mirroring
/// [`set_default_sink`](swsec_obs::set_default_sink) for event sinks).
pub fn set_default_profiler(profiler: Arc<Profiler>) {
    *default_cell().write().unwrap_or_else(|p| p.into_inner()) = Some(profiler);
}

/// Removes the process-wide default profiler.
pub fn clear_default_profiler() {
    *default_cell().write().unwrap_or_else(|p| p.into_inner()) = None;
}

thread_local! {
    static THREAD_PROFILER: RefCell<Option<Arc<Profiler>>> = const { RefCell::new(None) };
}

/// Runs `f` with `profiler` scoped to the current thread: machines the
/// closure creates attach it in preference to the process-wide
/// default. The previous scope is restored on exit, panic included.
///
/// This is how the campaign runner confines profiling to its own cell
/// threads — concurrent VM activity on *other* threads (another test,
/// another campaign) never samples into the profile, which keeps the
/// aggregated `.folded` output a pure function of the campaign's seed.
pub fn with_thread_profiler<R>(profiler: Arc<Profiler>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<Profiler>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_PROFILER.with(|p| *p.borrow_mut() = self.0.take());
        }
    }
    let prev = THREAD_PROFILER.with(|p| p.borrow_mut().replace(profiler));
    let _restore = Restore(prev);
    f()
}

/// The profiler a freshly built machine attaches: the thread-scoped
/// one when inside [`with_thread_profiler`], otherwise the
/// process-wide default (if any).
#[must_use]
pub fn default_profiler() -> Option<Arc<Profiler>> {
    if let Some(prof) = THREAD_PROFILER.with(|p| p.borrow().clone()) {
        return Some(prof);
    }
    default_cell()
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merges_identical_stacks() {
        let prof = Profiler::new(100);
        prof.record(&[0x10, 0x20]);
        prof.record(&[0x10, 0x20]);
        prof.record(&[0x10, 0x30]);
        assert_eq!(prof.total_samples(), 3);
        assert_eq!(
            prof.samples(),
            vec![(vec![0x10, 0x20], 2), (vec![0x10, 0x30], 1)]
        );
    }

    #[test]
    fn folded_symbolizes_and_falls_back() {
        let prof = Profiler::new(100);
        prof.record(&[0x1000, 0x1044]);
        prof.record(&[0x1000, 0x1044]);
        prof.record(&[0x9999]);
        let table = SymbolTable::from_labels(
            vec![("main", 0x1000u32), ("handle", 0x1040)],
            0x1080,
        );
        assert_eq!(prof.folded(&table), "0x9999 1\nmain;handle 2\n");
    }

    #[test]
    fn interval_zero_is_disabled() {
        let prof = Profiler::new(0);
        assert_eq!(prof.countdown_init(), u64::MAX);
        assert_eq!(Profiler::new(4096).countdown_init(), 4096);
    }

    #[test]
    fn thread_profiler_scopes_and_restores() {
        let prof = Arc::new(Profiler::new(1));
        assert!(default_profiler().is_none() || default_profiler().is_some());
        let seen = with_thread_profiler(prof.clone(), || {
            default_profiler().expect("scoped profiler visible")
        });
        assert!(Arc::ptr_eq(&seen, &prof));
        // Scope ended: the thread-local override is gone.
        assert!(THREAD_PROFILER.with(|p| p.borrow().is_none()));
        // And other threads never see a scoped profiler.
        let handle = {
            let prof = prof.clone();
            with_thread_profiler(prof, || {
                std::thread::spawn(|| THREAD_PROFILER.with(|p| p.borrow().is_none()))
            })
        };
        assert!(handle.join().unwrap());
    }

    #[test]
    fn clear_drops_samples() {
        let prof = Profiler::new(1);
        prof.record(&[1]);
        prof.clear();
        assert_eq!(prof.total_samples(), 0);
        assert_eq!(prof.folded(&SymbolTable::empty()), "");
    }
}
