//! Instruction set architecture of the swsec virtual machine.
//!
//! The ISA is deliberately shaped like a classic 32-bit CISC target
//! (x86-32 in spirit): little-endian, variable-length instructions
//! between 1 and 6 bytes, a downward-growing call stack, and `call`/
//! `ret` instructions that push and pop return addresses on that same
//! data stack. Those four properties are exactly what the low-level
//! attacks of Piessens & Verbauwhede (DATE 2016) rely on, so they are
//! modelled faithfully:
//!
//! * a unified address space lets buffer overflows reach saved return
//!   addresses and even code;
//! * variable-length encoding means jumping into the *middle* of an
//!   instruction stream yields a different, possibly useful, instruction
//!   sequence — the raw material of ROP gadget discovery;
//! * `ret` transfers control to whatever word the stack pointer names.
//!
//! # Examples
//!
//! ```
//! use swsec_vm::isa::{Instr, Reg};
//!
//! let instr = Instr::MovI { dst: Reg::R0, imm: 0xdead_beef };
//! let mut bytes = Vec::new();
//! instr.encode(&mut bytes);
//! let (decoded, len) = Instr::decode(&bytes)?;
//! assert_eq!(decoded, instr);
//! assert_eq!(len, bytes.len());
//! # Ok::<(), swsec_vm::isa::DecodeError>(())
//! ```

use std::fmt;

/// Maximum encoded length of any instruction, in bytes.
pub const MAX_INSTR_LEN: usize = 6;

/// A general-purpose or stack-management register.
///
/// `Sp` is the stack pointer and `Bp` the base (frame) pointer, mirroring
/// the `%esp`/`%ebp` pair in the paper's Figure 1. The instruction
/// pointer is not directly addressable; it changes only through control
/// transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// General-purpose register 0 (also the syscall/return-value register).
    R0 = 0,
    /// General-purpose register 1.
    R1 = 1,
    /// General-purpose register 2.
    R2 = 2,
    /// General-purpose register 3.
    R3 = 3,
    /// General-purpose register 4.
    R4 = 4,
    /// General-purpose register 5.
    R5 = 5,
    /// General-purpose register 6.
    R6 = 6,
    /// General-purpose register 7.
    R7 = 7,
    /// Stack pointer; grows towards lower addresses.
    Sp = 8,
    /// Base (frame) pointer for the current activation record.
    Bp = 9,
}

/// Number of addressable registers.
pub const NUM_REGS: usize = 10;

/// All addressable registers, in encoding order.
pub const ALL_REGS: [Reg; NUM_REGS] = [
    Reg::R0,
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::Sp,
    Reg::Bp,
];

impl Reg {
    /// Decodes a 4-bit register id.
    ///
    /// Returns `None` for ids outside the register file.
    pub fn from_u4(id: u8) -> Option<Reg> {
        ALL_REGS.get(usize::from(id)).copied()
    }

    /// The register-file index of this register.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The assembler name of this register (`"r0"`, …, `"sp"`, `"bp"`).
    pub fn name(self) -> &'static str {
        match self {
            Reg::R0 => "r0",
            Reg::R1 => "r1",
            Reg::R2 => "r2",
            Reg::R3 => "r3",
            Reg::R4 => "r4",
            Reg::R5 => "r5",
            Reg::R6 => "r6",
            Reg::R7 => "r7",
            Reg::Sp => "sp",
            Reg::Bp => "bp",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Binary arithmetic/logic operation performed between two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division. Faults on a zero divisor.
    DivU,
    /// Signed division, truncating toward zero. Faults on a zero divisor;
    /// `i32::MIN / -1` wraps to `i32::MIN`.
    DivS,
    /// Unsigned remainder. Faults on a zero divisor.
    ModU,
    /// Signed remainder. Faults on a zero divisor; `i32::MIN % -1` is `0`.
    ModS,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical left shift (shift amount taken modulo 32).
    Shl,
    /// Logical right shift (shift amount taken modulo 32).
    Shr,
    /// Arithmetic right shift (shift amount taken modulo 32).
    Sar,
}

impl AluOp {
    fn opcode(self) -> u8 {
        match self {
            AluOp::Add => opcode::ADD,
            AluOp::Sub => opcode::SUB,
            AluOp::Mul => opcode::MUL,
            AluOp::DivU => opcode::DIVU,
            AluOp::DivS => opcode::DIVS,
            AluOp::ModU => opcode::MODU,
            AluOp::ModS => opcode::MODS,
            AluOp::And => opcode::AND,
            AluOp::Or => opcode::OR,
            AluOp::Xor => opcode::XOR,
            AluOp::Shl => opcode::SHL,
            AluOp::Shr => opcode::SHR,
            AluOp::Sar => opcode::SAR,
        }
    }

    /// The assembler mnemonic of this operation.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::DivU => "divu",
            AluOp::DivS => "divs",
            AluOp::ModU => "modu",
            AluOp::ModS => "mods",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
        }
    }
}

/// Condition tested by a conditional jump, relative to the most recent
/// `cmp a, b` (or `cmpi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `a == b`.
    Z,
    /// `a != b`.
    Nz,
    /// `a < b`, signed.
    Lt,
    /// `a >= b`, signed.
    Ge,
    /// `a <= b`, signed.
    Le,
    /// `a > b`, signed.
    Gt,
    /// `a < b`, unsigned ("below").
    B,
    /// `a >= b`, unsigned ("above or equal").
    Ae,
}

impl Cond {
    fn opcode(self) -> u8 {
        match self {
            Cond::Z => opcode::JZ,
            Cond::Nz => opcode::JNZ,
            Cond::Lt => opcode::JLT,
            Cond::Ge => opcode::JGE,
            Cond::Le => opcode::JLE,
            Cond::Gt => opcode::JGT,
            Cond::B => opcode::JB,
            Cond::Ae => opcode::JAE,
        }
    }

    /// The assembler mnemonic (`"jz"`, `"jnz"`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Z => "jz",
            Cond::Nz => "jnz",
            Cond::Lt => "jlt",
            Cond::Ge => "jge",
            Cond::Le => "jle",
            Cond::Gt => "jgt",
            Cond::B => "jb",
            Cond::Ae => "jae",
        }
    }
}

/// Software trap codes raised by compiler-inserted defensive checks.
///
/// These are conventions shared between the hardening passes in
/// `swsec-minc` and the fault reporting of the VM; the hardware itself
/// treats every code identically (execution stops with
/// [`Fault::SoftwareTrap`](crate::cpu::Fault::SoftwareTrap)).
pub mod trap {
    /// A stack canary was corrupted before function return.
    pub const CANARY: u8 = 1;
    /// A software bounds check failed.
    pub const BOUNDS: u8 = 2;
    /// A defensive function-pointer check in a protected module failed.
    pub const FNPTR: u8 = 3;
    /// Generic assertion failure.
    pub const ASSERT: u8 = 4;
    /// A temporal-safety (use-after-free / dangling frame) check failed.
    pub const TEMPORAL: u8 = 5;
}

/// System-call numbers understood by [`Instr::Sys`].
pub mod sys {
    /// `exit(r0)`: halt the machine with exit code `r0`.
    pub const EXIT: u8 = 0;
    /// `read(fd=r0, buf=r1, len=r2) -> r0`: consume up to `len` bytes of
    /// input from channel `fd` into memory at `buf`.
    pub const READ: u8 = 1;
    /// `write(fd=r0, buf=r1, len=r2) -> r0`: append `len` bytes at `buf`
    /// to the output of channel `fd`.
    pub const WRITE: u8 = 2;
    /// `rand() -> r0`: next word of the machine's deterministic RNG.
    pub const RAND: u8 = 3;
}

/// Raw opcode bytes. Exposed so the disassembler, the gadget scanner and
/// tests can reason about encodings directly.
#[allow(missing_docs)] // names mirror the mnemonics one-to-one
pub mod opcode {
    /// No operation.
    pub const NOP: u8 = 0x00;
    /// Halt with exit code 0.
    pub const HALT: u8 = 0x01;
    /// Move 32-bit immediate into register.
    pub const MOVI: u8 = 0x02;
    /// Register-to-register move.
    pub const MOV: u8 = 0x03;
    /// 32-bit load `dst <- [base+disp]`.
    pub const LOAD: u8 = 0x04;
    /// 32-bit store `[base+disp] <- src`.
    pub const STORE: u8 = 0x05;
    /// Zero-extending byte load.
    pub const LOADB: u8 = 0x06;
    /// Byte store (low byte of source).
    pub const STOREB: u8 = 0x07;
    /// Push register.
    pub const PUSH: u8 = 0x08;
    /// Pop register.
    pub const POP: u8 = 0x09;
    /// Push 32-bit immediate.
    pub const PUSHI: u8 = 0x0A;
    /// ALU operations.
    pub const ADD: u8 = 0x0B;
    pub const SUB: u8 = 0x0C;
    pub const MUL: u8 = 0x0D;
    pub const DIVU: u8 = 0x0E;
    pub const AND: u8 = 0x0F;
    pub const OR: u8 = 0x10;
    pub const XOR: u8 = 0x11;
    pub const SHL: u8 = 0x12;
    pub const SHR: u8 = 0x13;
    /// Add 32-bit immediate.
    pub const ADDI: u8 = 0x14;
    /// Compare two registers, setting flags.
    pub const CMP: u8 = 0x15;
    /// Compare register with immediate.
    pub const CMPI: u8 = 0x16;
    /// Unconditional absolute jump.
    pub const JMP: u8 = 0x17;
    pub const JZ: u8 = 0x18;
    pub const JNZ: u8 = 0x19;
    pub const JLT: u8 = 0x1A;
    pub const JGE: u8 = 0x1B;
    pub const JLE: u8 = 0x1C;
    pub const JGT: u8 = 0x1D;
    pub const JB: u8 = 0x1E;
    pub const JAE: u8 = 0x1F;
    /// Call absolute address (pushes return address).
    pub const CALL: u8 = 0x20;
    /// Call through register (function pointer).
    pub const CALLR: u8 = 0x21;
    /// Return (pops return address into IP).
    pub const RET: u8 = 0x22;
    /// Indirect jump through register.
    pub const JMPR: u8 = 0x23;
    /// Function prologue: push bp; bp = sp; sp -= imm.
    pub const ENTER: u8 = 0x24;
    /// Function epilogue: sp = bp; pop bp.
    pub const LEAVE: u8 = 0x25;
    /// System call.
    pub const SYS: u8 = 0x26;
    /// Software trap (defensive-check failure).
    pub const TRAP: u8 = 0x27;
    /// Unsigned remainder.
    pub const MODU: u8 = 0x28;
    /// Load effective address `dst <- base+disp`.
    pub const LEA: u8 = 0x29;
    /// Arithmetic right shift.
    pub const SAR: u8 = 0x2A;
    /// Signed division.
    pub const DIVS: u8 = 0x2B;
    /// Signed remainder.
    pub const MODS: u8 = 0x2C;
}

/// Returns the total encoded length of the instruction starting with
/// `op`, or `None` if `op` is not a valid opcode.
///
/// Lengths are fixed per opcode, which lets the fetch unit read exactly
/// the bytes it needs (important when an instruction sits at the end of
/// the last mapped page).
#[inline]
pub fn instr_len(op: u8) -> Option<usize> {
    use opcode::*;
    Some(match op {
        NOP | HALT | RET | LEAVE => 1,
        MOV | PUSH | POP | ADD | SUB | MUL | DIVU | AND | OR | XOR | SHL | SHR | CALLR | JMPR
        | SYS | TRAP | MODU | SAR | DIVS | MODS | CMP => 2,
        LOAD | STORE | LOADB | STOREB | LEA => 4,
        PUSHI | JMP | JZ | JNZ | JLT | JGE | JLE | JGT | JB | JAE | CALL | ENTER => 5,
        MOVI | ADDI | CMPI => 6,
        _ => return None,
    })
}

/// A decoded machine instruction.
///
/// The variants map one-to-one onto opcodes; see [`opcode`] for the
/// encodings and [`Instr::encode`]/[`Instr::decode`] for serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings are given in each variant's doc
pub enum Instr {
    /// Does nothing.
    Nop,
    /// Halts the machine with exit code 0.
    Halt,
    /// `dst <- imm`.
    MovI { dst: Reg, imm: u32 },
    /// `dst <- src`.
    Mov { dst: Reg, src: Reg },
    /// `dst <- mem32[base + disp]`.
    Load { dst: Reg, base: Reg, disp: i16 },
    /// `mem32[base + disp] <- src`.
    Store { base: Reg, disp: i16, src: Reg },
    /// `dst <- zero_extend(mem8[base + disp])`.
    LoadB { dst: Reg, base: Reg, disp: i16 },
    /// `mem8[base + disp] <- low_byte(src)`.
    StoreB { base: Reg, disp: i16, src: Reg },
    /// `sp -= 4; mem32[sp] <- src`.
    Push(Reg),
    /// `dst <- mem32[sp]; sp += 4`.
    Pop(Reg),
    /// `sp -= 4; mem32[sp] <- imm`.
    PushI(u32),
    /// `dst <- dst op src`.
    Alu { op: AluOp, dst: Reg, src: Reg },
    /// `dst <- dst + imm` (wrapping).
    AddI { dst: Reg, imm: u32 },
    /// Compare registers `a` and `b`, setting the flags.
    Cmp { a: Reg, b: Reg },
    /// Compare register `a` with immediate, setting the flags.
    CmpI { a: Reg, imm: u32 },
    /// `ip <- target`.
    Jmp(u32),
    /// `if cond { ip <- target }`.
    JCond { cond: Cond, target: u32 },
    /// `push(next_ip); ip <- target`.
    Call(u32),
    /// `push(next_ip); ip <- target` — an indirect call through a
    /// register, i.e. a function-pointer call.
    CallR(Reg),
    /// `ip <- pop()` — control goes to whatever the stack holds.
    Ret,
    /// `ip <- target` — an indirect jump through a register.
    JmpR(Reg),
    /// Prologue: `push bp; bp <- sp; sp <- sp - frame`.
    Enter(u32),
    /// Epilogue: `sp <- bp; bp <- pop()`.
    Leave,
    /// System call; see [`sys`] for the call numbers.
    Sys(u8),
    /// Software trap; see [`trap`] for the conventional codes.
    Trap(u8),
    /// `dst <- base + disp` (address computation, no memory access).
    Lea { dst: Reg, base: Reg, disp: i16 },
}

/// Error produced when decoding bytes that do not form an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings are given in each variant's doc
pub enum DecodeError {
    /// The first byte is not a defined opcode.
    UnknownOpcode(u8),
    /// Fewer bytes were available than the opcode's fixed length.
    Truncated { opcode: u8, have: usize, need: usize },
    /// A register field holds an id outside the register file.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::Truncated { opcode, have, need } => write!(
                f,
                "truncated instruction: opcode {opcode:#04x} needs {need} bytes, have {have}"
            ),
            DecodeError::BadRegister(id) => write!(f, "invalid register id {id:#x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn reg_pair(a: Reg, b: Reg) -> u8 {
    ((a as u8) << 4) | (b as u8)
}

fn split_pair(byte: u8) -> Result<(Reg, Reg), DecodeError> {
    let hi = Reg::from_u4(byte >> 4).ok_or(DecodeError::BadRegister(byte >> 4))?;
    let lo = Reg::from_u4(byte & 0xF).ok_or(DecodeError::BadRegister(byte & 0xF))?;
    Ok((hi, lo))
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

fn read_i16(bytes: &[u8]) -> i16 {
    i16::from_le_bytes([bytes[0], bytes[1]])
}

impl Instr {
    /// Appends the little-endian encoding of this instruction to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        use opcode::*;
        match *self {
            Instr::Nop => out.push(NOP),
            Instr::Halt => out.push(HALT),
            Instr::MovI { dst, imm } => {
                out.push(MOVI);
                out.push(dst as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::Mov { dst, src } => {
                out.push(MOV);
                out.push(reg_pair(dst, src));
            }
            Instr::Load { dst, base, disp } => {
                out.push(LOAD);
                out.push(reg_pair(dst, base));
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::Store { base, disp, src } => {
                out.push(STORE);
                out.push(reg_pair(base, src));
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::LoadB { dst, base, disp } => {
                out.push(LOADB);
                out.push(reg_pair(dst, base));
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::StoreB { base, disp, src } => {
                out.push(STOREB);
                out.push(reg_pair(base, src));
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::Push(r) => {
                out.push(PUSH);
                out.push(r as u8);
            }
            Instr::Pop(r) => {
                out.push(POP);
                out.push(r as u8);
            }
            Instr::PushI(imm) => {
                out.push(PUSHI);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::Alu { op, dst, src } => {
                out.push(op.opcode());
                out.push(reg_pair(dst, src));
            }
            Instr::AddI { dst, imm } => {
                out.push(ADDI);
                out.push(dst as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::Cmp { a, b } => {
                out.push(CMP);
                out.push(reg_pair(a, b));
            }
            Instr::CmpI { a, imm } => {
                out.push(CMPI);
                out.push(a as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::Jmp(t) => {
                out.push(JMP);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Instr::JCond { cond, target } => {
                out.push(cond.opcode());
                out.extend_from_slice(&target.to_le_bytes());
            }
            Instr::Call(t) => {
                out.push(CALL);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Instr::CallR(r) => {
                out.push(CALLR);
                out.push(r as u8);
            }
            Instr::Ret => out.push(RET),
            Instr::JmpR(r) => {
                out.push(JMPR);
                out.push(r as u8);
            }
            Instr::Enter(frame) => {
                out.push(ENTER);
                out.extend_from_slice(&frame.to_le_bytes());
            }
            Instr::Leave => out.push(LEAVE),
            Instr::Sys(n) => {
                out.push(SYS);
                out.push(n);
            }
            Instr::Trap(n) => {
                out.push(TRAP);
                out.push(n);
            }
            Instr::Lea { dst, base, disp } => {
                out.push(LEA);
                out.push(reg_pair(dst, base));
                out.extend_from_slice(&disp.to_le_bytes());
            }
        }
    }

    /// The encoded length of this instruction in bytes.
    pub fn len(&self) -> usize {
        let mut buf = Vec::with_capacity(MAX_INSTR_LEN);
        self.encode(&mut buf);
        buf.len()
    }

    /// Returns `true` iff the encoding is zero bytes long (never; present
    /// for `len`/`is_empty` pairing convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decodes one instruction from the front of `bytes`.
    ///
    /// Returns the instruction and the number of bytes it occupied.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnknownOpcode`] for an undefined first byte,
    /// [`DecodeError::Truncated`] when `bytes` is shorter than the
    /// opcode's fixed length, and [`DecodeError::BadRegister`] for
    /// out-of-range register fields.
    pub fn decode(bytes: &[u8]) -> Result<(Instr, usize), DecodeError> {
        use opcode::*;
        let op = *bytes.first().ok_or(DecodeError::Truncated {
            opcode: 0,
            have: 0,
            need: 1,
        })?;
        let need = instr_len(op).ok_or(DecodeError::UnknownOpcode(op))?;
        if bytes.len() < need {
            return Err(DecodeError::Truncated {
                opcode: op,
                have: bytes.len(),
                need,
            });
        }
        let one_reg = |b: u8| Reg::from_u4(b).ok_or(DecodeError::BadRegister(b));
        let instr = match op {
            NOP => Instr::Nop,
            HALT => Instr::Halt,
            MOVI => Instr::MovI {
                dst: one_reg(bytes[1])?,
                imm: read_u32(&bytes[2..6]),
            },
            MOV => {
                let (dst, src) = split_pair(bytes[1])?;
                Instr::Mov { dst, src }
            }
            LOAD => {
                let (dst, base) = split_pair(bytes[1])?;
                Instr::Load {
                    dst,
                    base,
                    disp: read_i16(&bytes[2..4]),
                }
            }
            STORE => {
                let (base, src) = split_pair(bytes[1])?;
                Instr::Store {
                    base,
                    disp: read_i16(&bytes[2..4]),
                    src,
                }
            }
            LOADB => {
                let (dst, base) = split_pair(bytes[1])?;
                Instr::LoadB {
                    dst,
                    base,
                    disp: read_i16(&bytes[2..4]),
                }
            }
            STOREB => {
                let (base, src) = split_pair(bytes[1])?;
                Instr::StoreB {
                    base,
                    disp: read_i16(&bytes[2..4]),
                    src,
                }
            }
            PUSH => Instr::Push(one_reg(bytes[1])?),
            POP => Instr::Pop(one_reg(bytes[1])?),
            PUSHI => Instr::PushI(read_u32(&bytes[1..5])),
            ADD | SUB | MUL | DIVU | AND | OR | XOR | SHL | SHR | MODU | SAR | DIVS | MODS => {
                let (dst, src) = split_pair(bytes[1])?;
                let alu = match op {
                    ADD => AluOp::Add,
                    SUB => AluOp::Sub,
                    MUL => AluOp::Mul,
                    DIVU => AluOp::DivU,
                    AND => AluOp::And,
                    OR => AluOp::Or,
                    XOR => AluOp::Xor,
                    SHL => AluOp::Shl,
                    SHR => AluOp::Shr,
                    MODU => AluOp::ModU,
                    SAR => AluOp::Sar,
                    DIVS => AluOp::DivS,
                    _ => AluOp::ModS,
                };
                Instr::Alu { op: alu, dst, src }
            }
            ADDI => Instr::AddI {
                dst: one_reg(bytes[1])?,
                imm: read_u32(&bytes[2..6]),
            },
            CMP => {
                let (a, b) = split_pair(bytes[1])?;
                Instr::Cmp { a, b }
            }
            CMPI => Instr::CmpI {
                a: one_reg(bytes[1])?,
                imm: read_u32(&bytes[2..6]),
            },
            JMP => Instr::Jmp(read_u32(&bytes[1..5])),
            JZ | JNZ | JLT | JGE | JLE | JGT | JB | JAE => {
                let cond = match op {
                    JZ => Cond::Z,
                    JNZ => Cond::Nz,
                    JLT => Cond::Lt,
                    JGE => Cond::Ge,
                    JLE => Cond::Le,
                    JGT => Cond::Gt,
                    JB => Cond::B,
                    _ => Cond::Ae,
                };
                Instr::JCond {
                    cond,
                    target: read_u32(&bytes[1..5]),
                }
            }
            CALL => Instr::Call(read_u32(&bytes[1..5])),
            CALLR => Instr::CallR(one_reg(bytes[1])?),
            RET => Instr::Ret,
            JMPR => Instr::JmpR(one_reg(bytes[1])?),
            ENTER => Instr::Enter(read_u32(&bytes[1..5])),
            LEAVE => Instr::Leave,
            SYS => Instr::Sys(bytes[1]),
            TRAP => Instr::Trap(bytes[1]),
            LEA => {
                let (dst, base) = split_pair(bytes[1])?;
                Instr::Lea {
                    dst,
                    base,
                    disp: read_i16(&bytes[2..4]),
                }
            }
            _ => return Err(DecodeError::UnknownOpcode(op)),
        };
        Ok((instr, need))
    }

    /// Returns `true` for instructions that transfer control (jumps,
    /// calls, returns) — the instructions of interest to gadget scanners
    /// and control-flow-integrity checks.
    pub fn is_control_transfer(&self) -> bool {
        matches!(
            self,
            Instr::Jmp(_)
                | Instr::JCond { .. }
                | Instr::Call(_)
                | Instr::CallR(_)
                | Instr::Ret
                | Instr::JmpR(_)
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::MovI { dst, imm } => write!(f, "movi {dst}, {imm:#x}"),
            Instr::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Load { dst, base, disp } => write!(f, "load {dst}, [{base}{disp:+}]"),
            Instr::Store { base, disp, src } => write!(f, "store [{base}{disp:+}], {src}"),
            Instr::LoadB { dst, base, disp } => write!(f, "loadb {dst}, [{base}{disp:+}]"),
            Instr::StoreB { base, disp, src } => write!(f, "storeb [{base}{disp:+}], {src}"),
            Instr::Push(r) => write!(f, "push {r}"),
            Instr::Pop(r) => write!(f, "pop {r}"),
            Instr::PushI(imm) => write!(f, "pushi {imm:#x}"),
            Instr::Alu { op, dst, src } => write!(f, "{} {dst}, {src}", op.mnemonic()),
            Instr::AddI { dst, imm } => write!(f, "addi {dst}, {imm:#x}"),
            Instr::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Instr::CmpI { a, imm } => write!(f, "cmpi {a}, {imm:#x}"),
            Instr::Jmp(t) => write!(f, "jmp {t:#010x}"),
            Instr::JCond { cond, target } => write!(f, "{} {target:#010x}", cond.mnemonic()),
            Instr::Call(t) => write!(f, "call {t:#010x}"),
            Instr::CallR(r) => write!(f, "callr {r}"),
            Instr::Ret => write!(f, "ret"),
            Instr::JmpR(r) => write!(f, "jmpr {r}"),
            Instr::Enter(n) => write!(f, "enter {n:#x}"),
            Instr::Leave => write!(f, "leave"),
            Instr::Sys(n) => write!(f, "sys {n}"),
            Instr::Trap(n) => write!(f, "trap {n}"),
            Instr::Lea { dst, base, disp } => write!(f, "lea {dst}, [{base}{disp:+}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instr_samples() -> Vec<Instr> {
        let mut v = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::MovI { dst: Reg::R3, imm: 0xdead_beef },
            Instr::Mov { dst: Reg::Sp, src: Reg::Bp },
            Instr::Load { dst: Reg::R0, base: Reg::Bp, disp: -16 },
            Instr::Store { base: Reg::Sp, disp: 4, src: Reg::R1 },
            Instr::LoadB { dst: Reg::R2, base: Reg::R3, disp: 0 },
            Instr::StoreB { base: Reg::R4, disp: -1, src: Reg::R5 },
            Instr::Push(Reg::Bp),
            Instr::Pop(Reg::R7),
            Instr::PushI(0x1234_5678),
            Instr::AddI { dst: Reg::Sp, imm: 0xffff_fff0 },
            Instr::Cmp { a: Reg::R0, b: Reg::R1 },
            Instr::CmpI { a: Reg::R6, imm: 3 },
            Instr::Jmp(0x0804_83f2),
            Instr::Call(0x0804_83ed),
            Instr::CallR(Reg::R2),
            Instr::Ret,
            Instr::JmpR(Reg::R0),
            Instr::Enter(0x18),
            Instr::Leave,
            Instr::Sys(sys::READ),
            Instr::Trap(trap::CANARY),
            Instr::Lea { dst: Reg::R0, base: Reg::Bp, disp: -16 },
        ];
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::DivU,
            AluOp::DivS,
            AluOp::ModU,
            AluOp::ModS,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Sar,
        ] {
            v.push(Instr::Alu { op, dst: Reg::R1, src: Reg::R2 });
        }
        for cond in [
            Cond::Z,
            Cond::Nz,
            Cond::Lt,
            Cond::Ge,
            Cond::Le,
            Cond::Gt,
            Cond::B,
            Cond::Ae,
        ] {
            v.push(Instr::JCond { cond, target: 0x1000 });
        }
        v
    }

    #[test]
    fn roundtrip_every_instruction() {
        for instr in all_instr_samples() {
            let mut bytes = Vec::new();
            instr.encode(&mut bytes);
            assert!(bytes.len() <= MAX_INSTR_LEN, "{instr} too long");
            let (decoded, len) = Instr::decode(&bytes).expect("decode");
            assert_eq!(decoded, instr);
            assert_eq!(len, bytes.len());
            assert_eq!(instr.len(), bytes.len());
            assert_eq!(instr_len(bytes[0]), Some(bytes.len()));
        }
    }

    #[test]
    fn immediates_are_little_endian() {
        let mut bytes = Vec::new();
        Instr::MovI { dst: Reg::R0, imm: 0x0804_840a }.encode(&mut bytes);
        // The paper's Figure 1 stores 0x0804840a as 0a 84 04 08.
        assert_eq!(&bytes[2..6], &[0x0a, 0x84, 0x04, 0x08]);
    }

    #[test]
    fn decode_unknown_opcode() {
        assert_eq!(Instr::decode(&[0xFF]), Err(DecodeError::UnknownOpcode(0xFF)));
    }

    #[test]
    fn decode_truncated() {
        let err = Instr::decode(&[opcode::MOVI, 0x00, 0x01]).unwrap_err();
        assert_eq!(
            err,
            DecodeError::Truncated { opcode: opcode::MOVI, have: 3, need: 6 }
        );
    }

    #[test]
    fn decode_bad_register() {
        // Register id 0xB is out of range (only 0..=9 are defined).
        let err = Instr::decode(&[opcode::PUSH, 0x0B]).unwrap_err();
        assert_eq!(err, DecodeError::BadRegister(0x0B));
    }

    #[test]
    fn decode_empty_input() {
        assert!(matches!(
            Instr::decode(&[]),
            Err(DecodeError::Truncated { have: 0, need: 1, .. })
        ));
    }

    #[test]
    fn register_ids_roundtrip() {
        for reg in ALL_REGS {
            assert_eq!(Reg::from_u4(reg as u8), Some(reg));
        }
        assert_eq!(Reg::from_u4(10), None);
        assert_eq!(Reg::from_u4(15), None);
    }

    #[test]
    fn control_transfer_classification() {
        assert!(Instr::Ret.is_control_transfer());
        assert!(Instr::CallR(Reg::R0).is_control_transfer());
        assert!(!Instr::Nop.is_control_transfer());
        assert!(!Instr::Push(Reg::R0).is_control_transfer());
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(
            Instr::Load { dst: Reg::R0, base: Reg::Bp, disp: -16 }.to_string(),
            "load r0, [bp-16]"
        );
        assert_eq!(Instr::Enter(0x18).to_string(), "enter 0x18");
        assert_eq!(
            Instr::JCond { cond: Cond::Nz, target: 0x1000 }.to_string(),
            "jnz 0x00001000"
        );
    }

    #[test]
    fn misaligned_decode_gives_different_instruction_stream() {
        // Decoding from the middle of an instruction can legally produce a
        // *different* instruction — the property ROP gadget discovery
        // depends on.
        let mut bytes = Vec::new();
        // movi r0, imm where imm's bytes spell "ret" followed by garbage.
        Instr::MovI { dst: Reg::R0, imm: u32::from_le_bytes([opcode::RET, 0, 0, 0]) }
            .encode(&mut bytes);
        let (inner, _) = Instr::decode(&bytes[2..]).expect("decode of embedded bytes");
        assert_eq!(inner, Instr::Ret);
    }
}
