//! Protected-module memory access control (§IV-A of the paper).
//!
//! A *protected module* is a code range, a data range and a set of entry
//! points. The access-control model enforces exactly the three rules the
//! paper states:
//!
//! 1. when the instruction pointer is *outside* a module, memory inside
//!    that module can be neither read, written, nor fetched — except that
//! 2. control may *enter* the module by jumping to one of its designated
//!    entry points;
//! 3. when the instruction pointer is *inside* the module, its data may
//!    be read and written and its code executed (and read, for constants).
//!
//! The policy lives in the VM crate (rather than `swsec-pma`) because
//! the CPU must consult it on every access; the higher-level PMA crate
//! builds on these types to add attestation and sealed storage.
//!
//! # Examples
//!
//! ```
//! use swsec_vm::policy::{ProtectedRegion, ProtectionMap};
//!
//! let module = ProtectedRegion::new(0x2000..0x3000, 0x3000..0x4000, vec![0x2000]);
//! let map = ProtectionMap::new(vec![module]);
//! // Code outside the module may not read the module's data:
//! assert!(!map.data_access_allowed(0x9999, 0x3000));
//! // ... but the module itself may:
//! assert!(map.data_access_allowed(0x2004, 0x3000));
//! ```

use std::fmt;
use std::ops::Range;

/// How a control transfer reached the current instruction; used to apply
/// the entry-point rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Sequential fall-through from the previous instruction.
    Sequential,
    /// A direct or indirect jump.
    Jump,
    /// A call instruction.
    Call,
    /// A return instruction.
    Ret,
}

/// How strictly re-entry into a protected module is policed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReentryPolicy {
    /// Control may enter module code only at a designated entry point,
    /// regardless of the kind of transfer. This is the paper's rule as
    /// stated; securely compiled modules route even returns through a
    /// return-entry stub.
    #[default]
    EntryPointsOnly,
    /// Like `EntryPointsOnly`, but a `ret` instruction may additionally
    /// land anywhere in module code. This models relaxed architectures
    /// (and is what naive, insecurely compiled modules need in order to
    /// call out and be returned into).
    AllowReturns,
}

/// One protected module: a code range, a data range and its entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectedRegion {
    code: Range<u32>,
    data: Range<u32>,
    entries: Vec<u32>,
}

impl ProtectedRegion {
    /// Creates a region from its code range, data range and entry points.
    ///
    /// # Panics
    ///
    /// Panics if any entry point lies outside the code range — a
    /// mis-specified module would silently void the security argument.
    pub fn new(code: Range<u32>, data: Range<u32>, entries: Vec<u32>) -> ProtectedRegion {
        for &e in &entries {
            assert!(
                code.contains(&e),
                "entry point {e:#010x} outside module code {:#010x}..{:#010x}",
                code.start,
                code.end
            );
        }
        ProtectedRegion { code, data, entries }
    }

    /// The module's code range.
    pub fn code(&self) -> Range<u32> {
        self.code.clone()
    }

    /// The module's data range.
    pub fn data(&self) -> Range<u32> {
        self.data.clone()
    }

    /// The module's entry points.
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// Whether `addr` lies in this module's code or data.
    pub fn contains(&self, addr: u32) -> bool {
        self.code.contains(&addr) || self.data.contains(&addr)
    }

    /// Whether `addr` is one of the module's entry points.
    pub fn is_entry(&self, addr: u32) -> bool {
        self.entries.contains(&addr)
    }
}

impl fmt::Display for ProtectedRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "module(code {:#010x}..{:#010x}, data {:#010x}..{:#010x}, {} entries)",
            self.code.start,
            self.code.end,
            self.data.start,
            self.data.end,
            self.entries.len()
        )
    }
}

/// Why a protected-module access was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PmaViolationKind {
    /// Code outside the module tried to read or write module memory.
    OutsideDataAccess,
    /// Control tried to enter module code somewhere other than an entry
    /// point.
    BadEntry,
}

/// A refused protected-module access: which address, from which IP, and
/// why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PmaViolation {
    /// The address whose access was refused.
    pub addr: u32,
    /// The instruction pointer at the time of the access.
    pub ip: u32,
    /// The rule that was violated.
    pub kind: PmaViolationKind,
}

impl fmt::Display for PmaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            PmaViolationKind::OutsideDataAccess => write!(
                f,
                "code at {:#010x} accessed protected memory {:#010x} from outside the module",
                self.ip, self.addr
            ),
            PmaViolationKind::BadEntry => write!(
                f,
                "control entered protected code at {:#010x} (from {:#010x}) which is not an entry point",
                self.addr, self.ip
            ),
        }
    }
}

impl std::error::Error for PmaViolation {}

/// The machine-wide protection map: every loaded protected module plus
/// the re-entry policy.
#[derive(Debug, Clone, Default)]
pub struct ProtectionMap {
    regions: Vec<ProtectedRegion>,
    reentry: ReentryPolicy,
}

impl ProtectionMap {
    /// Creates a map over the given modules with the strict
    /// [`ReentryPolicy::EntryPointsOnly`] policy.
    pub fn new(regions: Vec<ProtectedRegion>) -> ProtectionMap {
        ProtectionMap {
            regions,
            reentry: ReentryPolicy::default(),
        }
    }

    /// Replaces the re-entry policy.
    pub fn with_reentry(mut self, reentry: ReentryPolicy) -> ProtectionMap {
        self.reentry = reentry;
        self
    }

    /// The configured re-entry policy.
    pub fn reentry(&self) -> ReentryPolicy {
        self.reentry
    }

    /// The protected regions in this map.
    pub fn regions(&self) -> &[ProtectedRegion] {
        &self.regions
    }

    /// Index of the module containing `addr` (code or data), if any.
    pub fn region_of(&self, addr: u32) -> Option<usize> {
        self.regions.iter().position(|r| r.contains(addr))
    }

    /// Index of the module whose *code* contains `ip`, if any.
    pub fn code_region_of(&self, ip: u32) -> Option<usize> {
        self.regions.iter().position(|r| r.code().contains(&ip))
    }

    /// Whether a data read/write of `addr` is allowed for code executing
    /// at `ip` (rule 1 and rule 3).
    pub fn data_access_allowed(&self, ip: u32, addr: u32) -> bool {
        match self.region_of(addr) {
            None => true,
            Some(idx) => self.code_region_of(ip) == Some(idx),
        }
    }

    /// Checks a data access, returning the violation on refusal.
    ///
    /// # Errors
    ///
    /// Returns [`PmaViolation`] with [`PmaViolationKind::OutsideDataAccess`]
    /// when `ip` lies outside the module owning `addr`.
    pub fn check_data(&self, ip: u32, addr: u32) -> Result<(), PmaViolation> {
        if self.data_access_allowed(ip, addr) {
            Ok(())
        } else {
            Err(PmaViolation {
                addr,
                ip,
                kind: PmaViolationKind::OutsideDataAccess,
            })
        }
    }

    /// Checks an instruction fetch at `new_ip`, given the previously
    /// executing instruction's address `prev_ip` and how control got here
    /// (rule 2, plus the prohibition on executing module *data*).
    ///
    /// # Errors
    ///
    /// Returns [`PmaViolation`] when the fetch would enter a module
    /// anywhere other than an entry point (subject to the re-entry
    /// policy), or when it targets a module's data range.
    pub fn check_fetch(
        &self,
        prev_ip: u32,
        new_ip: u32,
        kind: TransferKind,
    ) -> Result<(), PmaViolation> {
        // Executing a module's data range is never allowed, even from
        // inside (code/data separation within the module).
        if let Some(idx) = self.region_of(new_ip) {
            let region = &self.regions[idx];
            if region.data().contains(&new_ip) && !region.code().contains(&new_ip) {
                return Err(PmaViolation {
                    addr: new_ip,
                    ip: prev_ip,
                    kind: PmaViolationKind::BadEntry,
                });
            }
        }
        match self.code_region_of(new_ip) {
            None => Ok(()),
            Some(idx) => {
                let same = self.code_region_of(prev_ip) == Some(idx);
                if same {
                    return Ok(());
                }
                let region = &self.regions[idx];
                let entry_ok = region.is_entry(new_ip)
                    || (self.reentry == ReentryPolicy::AllowReturns
                        && kind == TransferKind::Ret);
                if entry_ok {
                    Ok(())
                } else {
                    Err(PmaViolation {
                        addr: new_ip,
                        ip: prev_ip,
                        kind: PmaViolationKind::BadEntry,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_module() -> ProtectionMap {
        ProtectionMap::new(vec![ProtectedRegion::new(
            0x2000..0x3000,
            0x3000..0x4000,
            vec![0x2000, 0x2100],
        )])
    }

    #[test]
    fn outside_cannot_touch_module_data() {
        let map = one_module();
        assert!(map.check_data(0x9000, 0x3004).is_err());
        assert!(map.check_data(0x9000, 0x2004).is_err()); // nor read code
    }

    #[test]
    fn inside_can_touch_own_data_and_code() {
        let map = one_module();
        assert!(map.check_data(0x2004, 0x3004).is_ok());
        assert!(map.check_data(0x2004, 0x2008).is_ok());
    }

    #[test]
    fn anyone_can_touch_unprotected_memory() {
        let map = one_module();
        assert!(map.check_data(0x9000, 0x8000).is_ok());
        assert!(map.check_data(0x2004, 0x8000).is_ok()); // module reaching out
    }

    #[test]
    fn entry_only_at_entry_points() {
        let map = one_module();
        assert!(map.check_fetch(0x9000, 0x2000, TransferKind::Call).is_ok());
        assert!(map.check_fetch(0x9000, 0x2100, TransferKind::Jump).is_ok());
        let err = map
            .check_fetch(0x9000, 0x2050, TransferKind::Jump)
            .unwrap_err();
        assert_eq!(err.kind, PmaViolationKind::BadEntry);
    }

    #[test]
    fn internal_control_flow_is_unrestricted() {
        let map = one_module();
        assert!(map.check_fetch(0x2004, 0x2050, TransferKind::Jump).is_ok());
        assert!(map.check_fetch(0x2ffc, 0x2000, TransferKind::Sequential).is_ok());
    }

    #[test]
    fn reentry_policy_gates_returns() {
        let strict = one_module();
        assert!(strict
            .check_fetch(0x9000, 0x2050, TransferKind::Ret)
            .is_err());
        let relaxed = one_module().with_reentry(ReentryPolicy::AllowReturns);
        assert!(relaxed
            .check_fetch(0x9000, 0x2050, TransferKind::Ret)
            .is_ok());
        // Jumps are still confined to entry points even when relaxed.
        assert!(relaxed
            .check_fetch(0x9000, 0x2050, TransferKind::Jump)
            .is_err());
    }

    #[test]
    fn module_data_is_never_executable() {
        let map = one_module().with_reentry(ReentryPolicy::AllowReturns);
        assert!(map.check_fetch(0x2004, 0x3004, TransferKind::Jump).is_err());
        assert!(map.check_fetch(0x9000, 0x3004, TransferKind::Ret).is_err());
    }

    #[test]
    #[should_panic(expected = "entry point")]
    fn entry_outside_code_panics() {
        let _ = ProtectedRegion::new(0x2000..0x3000, 0x3000..0x4000, vec![0x3000]);
    }

    #[test]
    fn multiple_modules_are_mutually_isolated() {
        let map = ProtectionMap::new(vec![
            ProtectedRegion::new(0x2000..0x3000, 0x3000..0x4000, vec![0x2000]),
            ProtectedRegion::new(0x5000..0x6000, 0x6000..0x7000, vec![0x5000]),
        ]);
        // Module A cannot read module B's data.
        assert!(map.check_data(0x2004, 0x6004).is_err());
        // Module A enters module B only via B's entry point.
        assert!(map.check_fetch(0x2004, 0x5000, TransferKind::Call).is_ok());
        assert!(map.check_fetch(0x2004, 0x5004, TransferKind::Call).is_err());
    }
}
