//! Paged virtual memory with per-page read/write/execute permissions.
//!
//! The machine has a full 32-bit byte-addressable address space backed
//! sparsely by 4 KiB pages. Each page carries a permission set; whether
//! those permissions are *enforced* is a property of the executing
//! machine (Data Execution Prevention can be switched off to model the
//! pre-DEP era in which injected data was executable).
//!
//! All multi-byte accesses are little-endian, as in the paper's
//! Figure 1.
//!
//! # Examples
//!
//! ```
//! use swsec_vm::mem::{Access, Memory, Perm};
//!
//! let mut mem = Memory::new();
//! mem.map(0x1000, 0x1000, Perm::RW)?;
//! mem.write_u32(0x1ffc, 0xdead_beef, Access::Write)?;
//! assert_eq!(mem.read_u32(0x1ffc, Access::Read)?, 0xdead_beef);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// Size of one page in bytes.
pub const PAGE_SIZE: u32 = 4096;

/// A permission set for a page: some combination of read, write and
/// execute rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perm(u8);

impl Perm {
    /// No access at all.
    pub const NONE: Perm = Perm(0);
    /// Read only.
    pub const R: Perm = Perm(0b100);
    /// Write only (rarely useful on its own).
    pub const W: Perm = Perm(0b010);
    /// Execute only.
    pub const X: Perm = Perm(0b001);
    /// Read + write: ordinary data pages under DEP.
    pub const RW: Perm = Perm(0b110);
    /// Read + execute: code pages under DEP.
    pub const RX: Perm = Perm(0b101);
    /// Read + write + execute: the pre-DEP flat memory model.
    pub const RWX: Perm = Perm(0b111);

    /// Returns `true` if every right in `other` is also in `self`.
    pub fn allows(self, other: Perm) -> bool {
        self.0 & other.0 == other.0
    }

    /// The union of two permission sets.
    pub fn union(self, other: Perm) -> Perm {
        Perm(self.0 | other.0)
    }

    /// Whether reads are permitted.
    pub fn can_read(self) -> bool {
        self.allows(Perm::R)
    }

    /// Whether writes are permitted.
    pub fn can_write(self) -> bool {
        self.allows(Perm::W)
    }

    /// Whether instruction fetch is permitted.
    pub fn can_exec(self) -> bool {
        self.allows(Perm::X)
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_exec() { 'x' } else { '-' }
        )
    }
}

/// The kind of memory access being attempted, used both for permission
/// checks and fault reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Fetch,
}

impl Access {
    /// The permission required to perform this access.
    pub fn required(self) -> Perm {
        match self {
            Access::Read => Perm::R,
            Access::Write => Perm::W,
            Access::Fetch => Perm::X,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Access::Read => "read",
            Access::Write => "write",
            Access::Fetch => "fetch",
        })
    }
}

/// Why a memory access failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings are given in each variant's doc
pub enum MemErrorKind {
    /// The page is not mapped at all.
    Unmapped,
    /// The page is mapped but its permissions deny the access.
    Denied { have: Perm },
}

/// A failed memory access: the address, what was attempted, and why it
/// was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemError {
    /// The faulting byte address.
    pub addr: u32,
    /// The attempted access.
    pub access: Access,
    /// The reason for refusal.
    pub kind: MemErrorKind,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            MemErrorKind::Unmapped => {
                write!(f, "{} of unmapped address {:#010x}", self.access, self.addr)
            }
            MemErrorKind::Denied { have } => write!(
                f,
                "{} denied at {:#010x} (page permissions {})",
                self.access, self.addr, have
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// Error returned by [`Memory::map`] when a region overlaps an existing
/// mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapError {
    /// Base address of the page that was already mapped.
    pub page_base: u32,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page at {:#010x} is already mapped", self.page_base)
    }
}

impl std::error::Error for MapError {}

struct Page {
    bytes: Box<[u8; PAGE_SIZE as usize]>,
    perm: Perm,
}

impl Page {
    fn new(perm: Perm) -> Page {
        Page {
            bytes: Box::new([0; PAGE_SIZE as usize]),
            perm,
        }
    }
}

/// Sparse paged memory for one machine.
///
/// Pages are created by [`Memory::map`] and checked on every access when
/// `enforce` is on (the default). Turning enforcement off with
/// [`Memory::set_enforce`] models the flat pre-DEP memory in which any
/// mapped byte is readable, writable and executable.
pub struct Memory {
    pages: BTreeMap<u32, Page>,
    enforce: bool,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("pages", &self.pages.len())
            .field("enforce", &self.enforce)
            .finish()
    }
}

impl Memory {
    /// Creates an empty address space with permission enforcement on.
    pub fn new() -> Memory {
        Memory {
            pages: BTreeMap::new(),
            enforce: true,
        }
    }

    /// Enables or disables page-permission enforcement.
    ///
    /// With enforcement off, any *mapped* byte may be read, written and
    /// executed regardless of its page permissions — the memory model
    /// against which classic direct code injection succeeds. Unmapped
    /// addresses still fault.
    pub fn set_enforce(&mut self, enforce: bool) {
        self.enforce = enforce;
    }

    /// Whether page permissions are currently enforced.
    pub fn enforce(&self) -> bool {
        self.enforce
    }

    fn page_base(addr: u32) -> u32 {
        addr & !(PAGE_SIZE - 1)
    }

    /// Maps all pages overlapping `[base, base + len)` with permission
    /// `perm`, zero-filled.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if any page in the range is already mapped;
    /// in that case no page is mapped.
    pub fn map(&mut self, base: u32, len: u32, perm: Perm) -> Result<(), MapError> {
        if len == 0 {
            return Ok(());
        }
        let first = Self::page_base(base);
        let last = Self::page_base(base.wrapping_add(len - 1));
        let mut page = first;
        loop {
            if self.pages.contains_key(&page) {
                return Err(MapError { page_base: page });
            }
            if page == last {
                break;
            }
            page = page.wrapping_add(PAGE_SIZE);
        }
        let mut page = first;
        loop {
            self.pages.insert(page, Page::new(perm));
            if page == last {
                break;
            }
            page = page.wrapping_add(PAGE_SIZE);
        }
        Ok(())
    }

    /// Changes the permission of every already-mapped page overlapping
    /// `[base, base + len)`. Unmapped pages in the range are ignored.
    pub fn set_perm(&mut self, base: u32, len: u32, perm: Perm) {
        if len == 0 {
            return;
        }
        let first = Self::page_base(base);
        let last = Self::page_base(base.wrapping_add(len - 1));
        let mut page = first;
        loop {
            if let Some(p) = self.pages.get_mut(&page) {
                p.perm = perm;
            }
            if page == last {
                break;
            }
            page = page.wrapping_add(PAGE_SIZE);
        }
    }

    /// Whether `addr` lies in a mapped page.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.pages.contains_key(&Self::page_base(addr))
    }

    /// The permission of the page containing `addr`, if mapped.
    pub fn perm_at(&self, addr: u32) -> Option<Perm> {
        self.pages.get(&Self::page_base(addr)).map(|p| p.perm)
    }

    /// Iterates over the mapped regions as `(range, perm)` pairs, merging
    /// adjacent pages with identical permissions. Used by memory-scraping
    /// attacks and by diagnostics.
    pub fn regions(&self) -> Vec<(Range<u32>, Perm)> {
        let mut out: Vec<(Range<u32>, Perm)> = Vec::new();
        for (&base, page) in &self.pages {
            match out.last_mut() {
                Some((range, perm))
                    if range.end == base && *perm == page.perm =>
                {
                    range.end = base.wrapping_add(PAGE_SIZE);
                }
                _ => out.push((base..base.wrapping_add(PAGE_SIZE), page.perm)),
            }
        }
        out
    }

    fn check(&self, addr: u32, access: Access) -> Result<(), MemError> {
        match self.pages.get(&Self::page_base(addr)) {
            None => Err(MemError {
                addr,
                access,
                kind: MemErrorKind::Unmapped,
            }),
            Some(page) => {
                if !self.enforce || page.perm.allows(access.required()) {
                    Ok(())
                } else {
                    Err(MemError {
                        addr,
                        access,
                        kind: MemErrorKind::Denied { have: page.perm },
                    })
                }
            }
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Faults if the page is unmapped or the access is denied.
    pub fn read_u8(&self, addr: u32, access: Access) -> Result<u8, MemError> {
        self.check(addr, access)?;
        let page = &self.pages[&Self::page_base(addr)];
        Ok(page.bytes[(addr % PAGE_SIZE) as usize])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Faults if the page is unmapped or the access is denied.
    pub fn write_u8(&mut self, addr: u32, value: u8, access: Access) -> Result<(), MemError> {
        self.check(addr, access)?;
        let page = self.pages.get_mut(&Self::page_base(addr)).expect("checked");
        page.bytes[(addr % PAGE_SIZE) as usize] = value;
        Ok(())
    }

    /// Reads a little-endian 32-bit word (no alignment requirement, as on
    /// x86).
    ///
    /// # Errors
    ///
    /// Faults on the first inaccessible byte.
    pub fn read_u32(&self, addr: u32, access: Access) -> Result<u32, MemError> {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u32), access)?;
        }
        Ok(u32::from_le_bytes(bytes))
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Faults on the first inaccessible byte; earlier bytes may already
    /// have been written (as on real hardware with a straddling store).
    pub fn write_u32(&mut self, addr: u32, value: u32, access: Access) -> Result<(), MemError> {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b, access)?;
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults on the first inaccessible byte.
    pub fn read_bytes(&self, addr: u32, buf: &mut [u8], access: Access) -> Result<(), MemError> {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u32), access)?;
        }
        Ok(())
    }

    /// Writes all of `bytes` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults on the first inaccessible byte; earlier bytes stay written.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8], access: Access) -> Result<(), MemError> {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b, access)?;
        }
        Ok(())
    }

    /// Copies `bytes` into memory ignoring permissions (but not
    /// mappedness). This models a *loader* or *platform* action, not a
    /// program action: the OS writing a code segment, or a machine-code
    /// attacker with kernel privileges.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages.
    pub fn poke_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr.wrapping_add(i as u32);
            let base = Self::page_base(a);
            match self.pages.get_mut(&base) {
                None => {
                    return Err(MemError {
                        addr: a,
                        access: Access::Write,
                        kind: MemErrorKind::Unmapped,
                    })
                }
                Some(page) => page.bytes[(a % PAGE_SIZE) as usize] = b,
            }
        }
        Ok(())
    }

    /// Reads bytes ignoring permissions (but not mappedness); the
    /// complement of [`Memory::poke_bytes`], used by platform-level
    /// inspection such as attestation measurement and kernel-level
    /// memory-scraping malware.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages.
    pub fn peek_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, MemError> {
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let a = addr.wrapping_add(i);
            let base = Self::page_base(a);
            match self.pages.get(&base) {
                None => {
                    return Err(MemError {
                        addr: a,
                        access: Access::Read,
                        kind: MemErrorKind::Unmapped,
                    })
                }
                Some(page) => out.push(page.bytes[(a % PAGE_SIZE) as usize]),
            }
        }
        Ok(out)
    }

    /// Reads a 32-bit word ignoring permissions.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages.
    pub fn peek_u32(&self, addr: u32) -> Result<u32, MemError> {
        let bytes = self.peek_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_rw_roundtrip() {
        let mut mem = Memory::new();
        mem.map(0x1000, 0x2000, Perm::RW).unwrap();
        mem.write_u32(0x1ffe, 0x1122_3344, Access::Write).unwrap();
        assert_eq!(mem.read_u32(0x1ffe, Access::Read).unwrap(), 0x1122_3344);
    }

    #[test]
    fn words_are_little_endian() {
        let mut mem = Memory::new();
        mem.map(0, PAGE_SIZE, Perm::RW).unwrap();
        mem.write_u32(0, 0x0804_840a, Access::Write).unwrap();
        assert_eq!(mem.read_u8(0, Access::Read).unwrap(), 0x0a);
        assert_eq!(mem.read_u8(1, Access::Read).unwrap(), 0x84);
        assert_eq!(mem.read_u8(2, Access::Read).unwrap(), 0x04);
        assert_eq!(mem.read_u8(3, Access::Read).unwrap(), 0x08);
    }

    #[test]
    fn unmapped_access_faults() {
        let mem = Memory::new();
        let err = mem.read_u8(0x5000, Access::Read).unwrap_err();
        assert_eq!(err.kind, MemErrorKind::Unmapped);
        assert_eq!(err.addr, 0x5000);
    }

    #[test]
    fn permissions_are_enforced() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RX).unwrap();
        assert!(mem.read_u8(0x1000, Access::Read).is_ok());
        assert!(mem.read_u8(0x1000, Access::Fetch).is_ok());
        let err = mem.write_u8(0x1000, 1, Access::Write).unwrap_err();
        assert_eq!(err.kind, MemErrorKind::Denied { have: Perm::RX });
    }

    #[test]
    fn disabling_enforcement_models_pre_dep_memory() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RW).unwrap();
        assert!(mem.read_u8(0x1000, Access::Fetch).is_err());
        mem.set_enforce(false);
        assert!(mem.read_u8(0x1000, Access::Fetch).is_ok());
        // Unmapped pages still fault.
        assert!(mem.read_u8(0x9000, Access::Read).is_err());
    }

    #[test]
    fn double_map_rejected_atomically() {
        let mut mem = Memory::new();
        mem.map(0x2000, PAGE_SIZE, Perm::RW).unwrap();
        let err = mem.map(0x1000, 3 * PAGE_SIZE, Perm::RW).unwrap_err();
        assert_eq!(err.page_base, 0x2000);
        // The non-conflicting page must not have been mapped.
        assert!(!mem.is_mapped(0x1000));
        assert!(!mem.is_mapped(0x3000));
    }

    #[test]
    fn map_rounds_to_page_boundaries() {
        let mut mem = Memory::new();
        mem.map(0x1ffe, 4, Perm::RW).unwrap();
        // Both straddled pages mapped.
        assert!(mem.is_mapped(0x1000));
        assert!(mem.is_mapped(0x2000));
        assert!(!mem.is_mapped(0x3000));
    }

    #[test]
    fn straddling_word_access_crosses_pages() {
        let mut mem = Memory::new();
        mem.map(0x1000, 2 * PAGE_SIZE, Perm::RW).unwrap();
        mem.write_u32(0x1fff, 0xaabb_ccdd, Access::Write).unwrap();
        assert_eq!(mem.read_u32(0x1fff, Access::Read).unwrap(), 0xaabb_ccdd);
    }

    #[test]
    fn regions_merge_contiguous_same_perm_pages() {
        let mut mem = Memory::new();
        mem.map(0x1000, 2 * PAGE_SIZE, Perm::RX).unwrap();
        mem.map(0x3000, PAGE_SIZE, Perm::RW).unwrap();
        mem.map(0x8000, PAGE_SIZE, Perm::RW).unwrap();
        let regions = mem.regions();
        assert_eq!(
            regions,
            vec![
                (0x1000..0x3000, Perm::RX),
                (0x3000..0x4000, Perm::RW),
                (0x8000..0x9000, Perm::RW),
            ]
        );
    }

    #[test]
    fn poke_and_peek_ignore_permissions() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::NONE).unwrap();
        mem.poke_bytes(0x1000, &[1, 2, 3]).unwrap();
        assert_eq!(mem.peek_bytes(0x1000, 3).unwrap(), vec![1, 2, 3]);
        assert!(mem.read_u8(0x1000, Access::Read).is_err());
    }

    #[test]
    fn set_perm_changes_existing_pages_only() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RW).unwrap();
        mem.set_perm(0x1000, 2 * PAGE_SIZE, Perm::R);
        assert_eq!(mem.perm_at(0x1000), Some(Perm::R));
        assert!(!mem.is_mapped(0x2000));
    }

    #[test]
    fn perm_display() {
        assert_eq!(Perm::RWX.to_string(), "rwx");
        assert_eq!(Perm::RX.to_string(), "r-x");
        assert_eq!(Perm::NONE.to_string(), "---");
    }

    #[test]
    fn zero_length_map_is_noop() {
        let mut mem = Memory::new();
        mem.map(0x1000, 0, Perm::RW).unwrap();
        assert!(!mem.is_mapped(0x1000));
    }
}
