//! Paged virtual memory with per-page read/write/execute permissions.
//!
//! The machine has a full 32-bit byte-addressable address space backed
//! sparsely by 4 KiB pages. Each page carries a permission set; whether
//! those permissions are *enforced* is a property of the executing
//! machine (Data Execution Prevention can be switched off to model the
//! pre-DEP era in which injected data was executable).
//!
//! All multi-byte accesses are little-endian, as in the paper's
//! Figure 1.
//!
//! # Performance model
//!
//! Pages live in a flat slot vector; a `BTreeMap` maps page bases to
//! slots only on the *slow* path. Every access resolves its page
//! **once** (not once per byte) and a pair of two-entry TLBs — one for
//! data, one for instruction fetch, each holding the two most recent
//! translations with MRU replacement (so code that alternates between
//! a caller page and a module page keeps both) — memoize translations
//! so the common case is a couple of compares. Two generation counters
//! make the caching invisible:
//!
//! * the **layout generation** bumps on [`map`](Memory::map) /
//!   [`unmap`](Memory::unmap) / [`set_perm`](Memory::set_perm) /
//!   [`set_enforce`](Memory::set_enforce) and invalidates the TLBs;
//! * the **code generation** additionally bumps on any write that
//!   could change *fetchable* bytes, and is what the CPU's decoded-
//!   instruction cache keys on (see `cpu`).
//!
//! See `DESIGN.md` §"VM performance model" for the invalidation rules.
//!
//! # Examples
//!
//! ```
//! use swsec_vm::mem::{Access, Memory, Perm};
//!
//! let mut mem = Memory::new();
//! mem.map(0x1000, 0x1000, Perm::RW)?;
//! mem.write_u32(0x1ffc, 0xdead_beef, Access::Write)?;
//! assert_eq!(mem.read_u32(0x1ffc, Access::Read)?, 0xdead_beef);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Size of one page in bytes.
pub const PAGE_SIZE: u32 = 4096;

/// A permission set for a page: some combination of read, write and
/// execute rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perm(u8);

impl Perm {
    /// No access at all.
    pub const NONE: Perm = Perm(0);
    /// Read only.
    pub const R: Perm = Perm(0b100);
    /// Write only (rarely useful on its own).
    pub const W: Perm = Perm(0b010);
    /// Execute only.
    pub const X: Perm = Perm(0b001);
    /// Read + write: ordinary data pages under DEP.
    pub const RW: Perm = Perm(0b110);
    /// Read + execute: code pages under DEP.
    pub const RX: Perm = Perm(0b101);
    /// Read + write + execute: the pre-DEP flat memory model.
    pub const RWX: Perm = Perm(0b111);

    /// Returns `true` if every right in `other` is also in `self`.
    #[inline]
    pub fn allows(self, other: Perm) -> bool {
        self.0 & other.0 == other.0
    }

    /// The union of two permission sets.
    pub fn union(self, other: Perm) -> Perm {
        Perm(self.0 | other.0)
    }

    /// Whether reads are permitted.
    pub fn can_read(self) -> bool {
        self.allows(Perm::R)
    }

    /// Whether writes are permitted.
    pub fn can_write(self) -> bool {
        self.allows(Perm::W)
    }

    /// Whether instruction fetch is permitted.
    #[inline]
    pub fn can_exec(self) -> bool {
        self.allows(Perm::X)
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_exec() { 'x' } else { '-' }
        )
    }
}

/// The kind of memory access being attempted, used both for permission
/// checks and fault reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Fetch,
}

impl Access {
    /// The permission required to perform this access.
    #[inline]
    pub fn required(self) -> Perm {
        match self {
            Access::Read => Perm::R,
            Access::Write => Perm::W,
            Access::Fetch => Perm::X,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Access::Read => "read",
            Access::Write => "write",
            Access::Fetch => "fetch",
        })
    }
}

/// Why a memory access failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings are given in each variant's doc
pub enum MemErrorKind {
    /// The page is not mapped at all.
    Unmapped,
    /// The page is mapped but its permissions deny the access.
    Denied { have: Perm },
}

/// A failed memory access: the address, what was attempted, and why it
/// was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemError {
    /// The faulting byte address.
    pub addr: u32,
    /// The attempted access.
    pub access: Access,
    /// The reason for refusal.
    pub kind: MemErrorKind,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            MemErrorKind::Unmapped => {
                write!(f, "{} of unmapped address {:#010x}", self.access, self.addr)
            }
            MemErrorKind::Denied { have } => write!(
                f,
                "{} denied at {:#010x} (page permissions {})",
                self.access, self.addr, have
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// Error returned by [`Memory::map`] when a region overlaps an existing
/// mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapError {
    /// Base address of the page that was already mapped.
    pub page_base: u32,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page at {:#010x} is already mapped", self.page_base)
    }
}

impl std::error::Error for MapError {}

struct Page {
    bytes: Box<[u8; PAGE_SIZE as usize]>,
    perm: Perm,
    /// Whether the page's bytes may differ from the most recent
    /// [`Memory::snapshot`]. Cleared when a snapshot is taken (the page
    /// then provably matches its captured image) and set by every write
    /// path, so [`Memory::restore_from`] copies back exactly the pages
    /// written since.
    dirty: bool,
    /// Write generation: bumped by every mutation of this page's bytes
    /// (program stores, loader pokes, snapshot restores). Decoded
    /// instructions cache the generation of the page(s) they were read
    /// from and stay valid exactly while it is unchanged, so a store to
    /// one page — a stack push, say — no longer invalidates decodes
    /// from every other page.
    gen: u64,
}

impl Page {
    fn new(perm: Perm) -> Page {
        Page {
            bytes: Box::new([0; PAGE_SIZE as usize]),
            perm,
            // A fresh page has no snapshot to match.
            dirty: true,
            gen: 0,
        }
    }

    /// Marks the page's bytes as mutated: snapshot-dirty and decode-stale.
    #[inline]
    fn touch(&mut self) {
        self.dirty = true;
        self.gen = self.gen.wrapping_add(1);
    }
}

/// One memoized translation: the last page resolved for a given access
/// class. Valid only while `gen` matches the memory's layout
/// generation, so mapping or permission changes invalidate it wholesale.
#[derive(Clone, Copy)]
struct TlbEntry {
    base: u32,
    slot: u32,
    perm: Perm,
    gen: u64,
}

impl TlbEntry {
    /// An entry that can never hit (layout generations start at 1).
    const INVALID: TlbEntry = TlbEntry {
        base: 0,
        slot: 0,
        perm: Perm::NONE,
        gen: 0,
    };
}

/// A two-entry translation cache for one access class, with MRU-victim
/// replacement: a fill evicts the entry *not* most recently used. Two
/// entries capture the dominant cross-page pattern — code alternating
/// between a caller page and a callee/module page — that a single entry
/// thrashes on.
struct TlbPair {
    entries: [Cell<TlbEntry>; 2],
    mru: Cell<u8>,
}

impl TlbPair {
    fn new() -> TlbPair {
        TlbPair {
            entries: [Cell::new(TlbEntry::INVALID), Cell::new(TlbEntry::INVALID)],
            mru: Cell::new(0),
        }
    }

    /// The matching entry for `base` under layout generation `gen`, if
    /// cached; marks it most recently used.
    #[inline]
    fn lookup(&self, base: u32, gen: u64) -> Option<TlbEntry> {
        let m = (self.mru.get() & 1) as usize;
        let e = self.entries[m].get();
        if e.base == base && e.gen == gen {
            return Some(e);
        }
        let e = self.entries[1 - m].get();
        if e.base == base && e.gen == gen {
            self.mru.set((1 - m) as u8);
            return Some(e);
        }
        None
    }

    /// Installs `e`, evicting the least recently used entry.
    #[inline]
    fn fill(&self, e: TlbEntry) {
        let victim = 1 - ((self.mru.get() & 1) as usize);
        self.entries[victim].set(e);
        self.mru.set(victim as u8);
    }

    /// Drops both entries.
    fn clear(&self) {
        self.entries[0].set(TlbEntry::INVALID);
        self.entries[1].set(TlbEntry::INVALID);
        self.mru.set(0);
    }
}

/// A memoized data translation private to one tier-2 dispatch chain:
/// the page the block loop's stack and data traffic lands on, resolved
/// once and then read/written directly. Valid for at most one chain —
/// block execution cannot remap, reprotect or restore memory (no
/// syscalls compile into blocks), so a line filled during a chain
/// cannot go stale within it. A write through the line still bumps the
/// page's dirty flag and write generation exactly like
/// [`Memory::write_u32`], so SMC detection and snapshot dirty tracking
/// see block stores and stepped stores identically. Accesses served by
/// a line bypass the TLB probe and its hit/miss counters; cache
/// counters are observability-only by contract, so this is invisible
/// to rendered reports.
#[derive(Clone, Copy)]
pub(crate) struct DataLine {
    base: u32,
    slot: u32,
    read_ok: bool,
    write_ok: bool,
}

impl DataLine {
    /// A line that can never serve an access (both permission bits
    /// clear), used as the pre-fill state.
    pub(crate) const INVALID: DataLine = DataLine {
        base: 0,
        slot: 0,
        read_ok: false,
        write_ok: false,
    };

    /// Whether a 4-byte access at `addr` lands wholly inside this
    /// line's page with sufficient permission.
    #[inline]
    pub(crate) fn serves_word(self, addr: u32, write: bool) -> bool {
        addr.wrapping_sub(self.base) <= PAGE_SIZE - 4
            && if write { self.write_ok } else { self.read_ok }
    }

    /// Whether a byte access at `addr` lands inside this line's page
    /// with sufficient permission.
    #[inline]
    pub(crate) fn serves_byte(self, addr: u32, write: bool) -> bool {
        addr.wrapping_sub(self.base) < PAGE_SIZE
            && if write { self.write_ok } else { self.read_ok }
    }
}

/// Translation-cache hit/miss counters, exposed for observability (the
/// campaign summary) — they never influence program-visible behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Accesses served by a TLB entry.
    pub hits: u64,
    /// Accesses that fell back to the page-table lookup.
    pub misses: u64,
}

/// An immutable capture of a [`Memory`]'s mapped pages and enforcement
/// flag, taken by [`Memory::snapshot`]. Page images are refcounted
/// (`Arc`), so cloning a snapshot — or holding one while the live
/// memory diverges — shares them copy-on-restore: only pages dirtied
/// since the snapshot are re-materialized by
/// [`Memory::restore_from`].
#[derive(Clone)]
pub struct MemorySnapshot {
    /// `(page base, image, perm)`, sorted by base (page-table order).
    pages: Vec<(u32, Arc<[u8; PAGE_SIZE as usize]>, Perm)>,
    enforce: bool,
}

impl fmt::Debug for MemorySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySnapshot")
            .field("pages", &self.pages.len())
            .field("enforce", &self.enforce)
            .finish()
    }
}

impl MemorySnapshot {
    /// Number of pages captured.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// What one [`Memory::restore_from`] call had to copy — the measurable
/// face of the O(dirty-pages) restore guarantee.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Pages whose bytes were copied back from the snapshot.
    pub dirty_pages: u64,
    /// Bytes copied (`dirty_pages * PAGE_SIZE` — every copy is a whole
    /// page).
    pub bytes_copied: u64,
}

/// Sparse paged memory for one machine.
///
/// Pages are created by [`Memory::map`] and checked on every access when
/// `enforce` is on (the default). Turning enforcement off with
/// [`Memory::set_enforce`] models the flat pre-DEP memory in which any
/// mapped byte is readable, writable and executable.
pub struct Memory {
    /// Page base → slot index. Touched only on TLB misses.
    table: BTreeMap<u32, u32>,
    /// Page storage; slots are recycled through `free` on unmap.
    slots: Vec<Page>,
    free: Vec<u32>,
    enforce: bool,
    /// When off, every access takes the page-table path (the
    /// benchmark baseline); behaviour is identical either way.
    fast_path: bool,
    /// Bumped whenever a translation or permission could change.
    layout_gen: u64,
    /// Bumped whenever *fetchable* bytes could change; the CPU's
    /// decoded-instruction cache keys on this.
    code_gen: u64,
    /// Whether the page *layout* (the table, permissions, or the
    /// enforcement flag) may have changed since the last
    /// [`snapshot`](Memory::snapshot). While set, per-page dirty bits
    /// cannot prove layout equality, so `restore_from` falls back to a
    /// wholesale rebuild. A fresh memory has no snapshot: starts true.
    layout_dirty: bool,
    tlb_data: TlbPair,
    tlb_fetch: TlbPair,
    tlb_hits: Cell<u64>,
    tlb_misses: Cell<u64>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("pages", &self.table.len())
            .field("enforce", &self.enforce)
            .field("code_gen", &self.code_gen)
            .finish()
    }
}

impl Memory {
    /// Creates an empty address space with permission enforcement on.
    pub fn new() -> Memory {
        Memory {
            table: BTreeMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            enforce: true,
            fast_path: true,
            layout_gen: 1,
            code_gen: 1,
            layout_dirty: true,
            tlb_data: TlbPair::new(),
            tlb_fetch: TlbPair::new(),
            tlb_hits: Cell::new(0),
            tlb_misses: Cell::new(0),
        }
    }

    /// Enables or disables page-permission enforcement.
    ///
    /// With enforcement off, any *mapped* byte may be read, written and
    /// executed regardless of its page permissions — the memory model
    /// against which classic direct code injection succeeds. Unmapped
    /// addresses still fault.
    pub fn set_enforce(&mut self, enforce: bool) {
        self.enforce = enforce;
        self.invalidate_layout();
    }

    /// Whether page permissions are currently enforced.
    pub fn enforce(&self) -> bool {
        self.enforce
    }

    /// Enables or disables the translation fast path (the two-entry
    /// TLBs). Defaults to on; switching it off forces every access
    /// through the page-table lookup, which the benchmark suite uses as
    /// its baseline. Program-visible behaviour is identical either way.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
        self.tlb_data.clear();
        self.tlb_fetch.clear();
    }

    /// Whether the translation fast path is on.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// The current *global* code generation: bumped by wholesale
    /// invalidations — mapping, unmapping or permission changes,
    /// enforcement toggles, and layout-diverged restores. Byte-level
    /// mutations are tracked per page instead (see
    /// [`fetch_gen`](Memory::fetch_gen)); a decoded-instruction cache
    /// line is valid only while **both** this value and the write
    /// generation of the page(s) it was read from are unchanged.
    #[inline]
    pub fn code_generation(&self) -> u64 {
        self.code_gen
    }

    /// Checks fetch permission at `addr` and returns the containing
    /// page's write generation — the per-page half of decoded-
    /// instruction-cache validation (see
    /// [`code_generation`](Memory::code_generation)).
    ///
    /// # Errors
    ///
    /// Faults when `addr` is unmapped or not fetchable.
    #[inline]
    pub fn fetch_gen(&self, addr: u32) -> Result<u64, MemError> {
        self.fetch_page(addr).map(|(_, gen)| gen)
    }

    /// Resolves `addr` for fetch and returns `(slot, write generation)`
    /// — what a decoded-instruction-cache fill records so later hits
    /// can validate with [`slot_gen`](Memory::slot_gen) alone.
    #[inline]
    pub(crate) fn fetch_page(&self, addr: u32) -> Result<(u32, u64), MemError> {
        let slot = self.resolve(addr, Access::Fetch)?;
        Ok((slot as u32, self.slots[slot].gen))
    }

    /// The write generation of the page in `slot`. Only meaningful
    /// while the global code generation is unchanged since `slot` was
    /// obtained — layout changes may retire or reuse slots (callers
    /// compare [`code_generation`](Memory::code_generation) first).
    #[inline]
    pub(crate) fn slot_gen(&self, slot: u32) -> u64 {
        self.slots
            .get(slot as usize)
            .map_or(u64::MAX, |p| p.gen)
    }

    /// Whether every `(slot, write generation)` pair still stands —
    /// the per-page half of tier-2 block validation (see
    /// [`tier`](crate::tier)). Like [`slot_gen`](Memory::slot_gen),
    /// only meaningful while the global code generation is unchanged
    /// since the pairs were recorded.
    #[inline]
    pub(crate) fn page_gens_valid(&self, pages: &[(u32, u64)]) -> bool {
        pages.iter().all(|&(slot, gen)| self.slot_gen(slot) == gen)
    }

    /// Fills a [`DataLine`] for the page containing `addr`, if mapped.
    /// Permission bits are evaluated once at fill time (enforcement
    /// cannot change while a tier-2 chain runs — no micro-op remaps,
    /// reprotects or restores memory).
    #[inline]
    pub(crate) fn data_line(&self, addr: u32) -> Option<DataLine> {
        let base = Self::page_base(addr);
        self.table.get(&base).map(|&slot| {
            let perm = self.slots[slot as usize].perm;
            DataLine {
                base,
                slot,
                read_ok: !self.enforce || perm.allows(Perm::R),
                write_ok: !self.enforce || perm.allows(Perm::W),
            }
        })
    }

    /// Reads a word through a [`DataLine`]. The caller proved
    /// `line.serves_word(addr, false)` first.
    #[inline]
    pub(crate) fn line_read_u32(&self, line: DataLine, addr: u32) -> u32 {
        let off = (addr % PAGE_SIZE) as usize;
        let b = &self.slots[line.slot as usize].bytes[off..off + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Writes a word through a [`DataLine`] (see
    /// [`line_read_u32`](Memory::line_read_u32)): same dirty-tracking
    /// and write-generation effects as [`write_u32`](Memory::write_u32).
    #[inline]
    pub(crate) fn line_write_u32(&mut self, line: DataLine, addr: u32, value: u32) {
        let off = (addr % PAGE_SIZE) as usize;
        let page = &mut self.slots[line.slot as usize];
        page.touch();
        page.bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a byte through a [`DataLine`]; caller proved
    /// `line.serves_byte(addr, false)`.
    #[inline]
    pub(crate) fn line_read_u8(&self, line: DataLine, addr: u32) -> u8 {
        let off = (addr % PAGE_SIZE) as usize;
        self.slots[line.slot as usize].bytes[off]
    }

    /// Writes a byte through a [`DataLine`]; caller proved
    /// `line.serves_byte(addr, true)`.
    #[inline]
    pub(crate) fn line_write_u8(&mut self, line: DataLine, addr: u32, value: u8) {
        let off = (addr % PAGE_SIZE) as usize;
        let page = &mut self.slots[line.slot as usize];
        page.touch();
        page.bytes[off] = value;
    }

    /// Translation-cache counters accumulated so far.
    pub fn tlb_stats(&self) -> TlbStats {
        TlbStats {
            hits: self.tlb_hits.get(),
            misses: self.tlb_misses.get(),
        }
    }

    #[inline]
    fn page_base(addr: u32) -> u32 {
        addr & !(PAGE_SIZE - 1)
    }

    fn invalidate_layout(&mut self) {
        self.layout_gen += 1;
        self.code_gen += 1;
        self.layout_dirty = true;
        self.tlb_data.clear();
        self.tlb_fetch.clear();
    }

    /// Resolves the page containing `addr` for `access`: **one** lookup
    /// per access, TLB-memoized. Returns the slot index.
    #[inline]
    fn resolve(&self, addr: u32, access: Access) -> Result<usize, MemError> {
        let base = Self::page_base(addr);
        let tlb = match access {
            Access::Fetch => &self.tlb_fetch,
            _ => &self.tlb_data,
        };
        if self.fast_path {
            if let Some(e) = tlb.lookup(base, self.layout_gen) {
                self.tlb_hits.set(self.tlb_hits.get() + 1);
                return if !self.enforce || e.perm.allows(access.required()) {
                    Ok(e.slot as usize)
                } else {
                    Err(MemError {
                        addr,
                        access,
                        kind: MemErrorKind::Denied { have: e.perm },
                    })
                };
            }
            self.tlb_misses.set(self.tlb_misses.get() + 1);
        }
        match self.table.get(&base) {
            None => Err(MemError {
                addr,
                access,
                kind: MemErrorKind::Unmapped,
            }),
            Some(&slot) => {
                let perm = self.slots[slot as usize].perm;
                if self.fast_path {
                    tlb.fill(TlbEntry {
                        base,
                        slot,
                        perm,
                        gen: self.layout_gen,
                    });
                }
                if !self.enforce || perm.allows(access.required()) {
                    Ok(slot as usize)
                } else {
                    Err(MemError {
                        addr,
                        access,
                        kind: MemErrorKind::Denied { have: perm },
                    })
                }
            }
        }
    }

    /// Resolves ignoring permissions (but not mappedness) — the
    /// platform-level path used by peek/poke.
    fn resolve_raw(&self, addr: u32, access: Access) -> Result<usize, MemError> {
        match self.table.get(&Self::page_base(addr)) {
            None => Err(MemError {
                addr,
                access,
                kind: MemErrorKind::Unmapped,
            }),
            Some(&slot) => Ok(slot as usize),
        }
    }

    /// Checks that `access` at `addr` would be permitted, without
    /// transferring any data. Used by the CPU to re-validate fetch
    /// permission on decoded-instruction-cache hits.
    #[inline]
    pub fn check_access(&self, addr: u32, access: Access) -> Result<(), MemError> {
        self.resolve(addr, access).map(|_| ())
    }

    /// Maps all pages overlapping `[base, base + len)` with permission
    /// `perm`, zero-filled.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if any page in the range is already mapped;
    /// in that case no page is mapped.
    pub fn map(&mut self, base: u32, len: u32, perm: Perm) -> Result<(), MapError> {
        if len == 0 {
            return Ok(());
        }
        let first = Self::page_base(base);
        let last = Self::page_base(base.wrapping_add(len - 1));
        let mut page = first;
        loop {
            if self.table.contains_key(&page) {
                return Err(MapError { page_base: page });
            }
            if page == last {
                break;
            }
            page = page.wrapping_add(PAGE_SIZE);
        }
        let mut page = first;
        loop {
            let slot = match self.free.pop() {
                Some(slot) => {
                    // Recycled slots must look freshly mapped.
                    let p = &mut self.slots[slot as usize];
                    p.bytes.fill(0);
                    p.perm = perm;
                    p.touch();
                    slot
                }
                None => {
                    self.slots.push(Page::new(perm));
                    (self.slots.len() - 1) as u32
                }
            };
            self.table.insert(page, slot);
            if page == last {
                break;
            }
            page = page.wrapping_add(PAGE_SIZE);
        }
        self.invalidate_layout();
        Ok(())
    }

    /// Unmaps every mapped page overlapping `[base, base + len)`;
    /// unmapped pages in the range are ignored. Subsequent accesses to
    /// the range fault as [`MemErrorKind::Unmapped`], and any cached
    /// translation or decoded instruction covering it is invalidated.
    pub fn unmap(&mut self, base: u32, len: u32) {
        if len == 0 {
            return;
        }
        let first = Self::page_base(base);
        let last = Self::page_base(base.wrapping_add(len - 1));
        let mut page = first;
        loop {
            if let Some(slot) = self.table.remove(&page) {
                self.free.push(slot);
            }
            if page == last {
                break;
            }
            page = page.wrapping_add(PAGE_SIZE);
        }
        self.invalidate_layout();
    }

    /// Changes the permission of every already-mapped page overlapping
    /// `[base, base + len)`. Unmapped pages in the range are ignored.
    pub fn set_perm(&mut self, base: u32, len: u32, perm: Perm) {
        if len == 0 {
            return;
        }
        let first = Self::page_base(base);
        let last = Self::page_base(base.wrapping_add(len - 1));
        let mut page = first;
        loop {
            if let Some(&slot) = self.table.get(&page) {
                self.slots[slot as usize].perm = perm;
            }
            if page == last {
                break;
            }
            page = page.wrapping_add(PAGE_SIZE);
        }
        self.invalidate_layout();
    }

    /// Whether `addr` lies in a mapped page.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.table.contains_key(&Self::page_base(addr))
    }

    /// The permission of the page containing `addr`, if mapped.
    pub fn perm_at(&self, addr: u32) -> Option<Perm> {
        self.table
            .get(&Self::page_base(addr))
            .map(|&slot| self.slots[slot as usize].perm)
    }

    /// Iterates over the mapped regions as `(range, perm)` pairs, merging
    /// adjacent pages with identical permissions. Used by memory-scraping
    /// attacks and by diagnostics.
    pub fn regions(&self) -> Vec<(Range<u32>, Perm)> {
        let mut out: Vec<(Range<u32>, Perm)> = Vec::new();
        for (&base, &slot) in &self.table {
            let perm = self.slots[slot as usize].perm;
            match out.last_mut() {
                Some((range, p)) if range.end == base && *p == perm => {
                    range.end = base.wrapping_add(PAGE_SIZE);
                }
                _ => out.push((base..base.wrapping_add(PAGE_SIZE), perm)),
            }
        }
        out
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Faults if the page is unmapped or the access is denied.
    #[inline]
    pub fn read_u8(&self, addr: u32, access: Access) -> Result<u8, MemError> {
        let slot = self.resolve(addr, access)?;
        Ok(self.slots[slot].bytes[(addr % PAGE_SIZE) as usize])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Faults if the page is unmapped or the access is denied.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8, access: Access) -> Result<(), MemError> {
        let slot = self.resolve(addr, access)?;
        let page = &mut self.slots[slot];
        page.touch();
        page.bytes[(addr % PAGE_SIZE) as usize] = value;
        Ok(())
    }

    /// Reads a little-endian 32-bit word (no alignment requirement, as on
    /// x86).
    ///
    /// # Errors
    ///
    /// Faults on the first inaccessible byte.
    #[inline]
    pub fn read_u32(&self, addr: u32, access: Access) -> Result<u32, MemError> {
        let off = (addr % PAGE_SIZE) as usize;
        if self.fast_path && off + 4 <= PAGE_SIZE as usize {
            // Within one page: a single lookup and a word-wide copy.
            let slot = self.resolve(addr, access)?;
            let b = &self.slots[slot].bytes[off..off + 4];
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        } else {
            // Straddling a page — or the flag-disabled baseline, which
            // keeps the original one-lookup-per-byte behaviour.
            let mut bytes = [0u8; 4];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u32), access)?;
            }
            Ok(u32::from_le_bytes(bytes))
        }
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Faults on the first inaccessible byte; earlier bytes may already
    /// have been written (as on real hardware with a straddling store).
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32, access: Access) -> Result<(), MemError> {
        let off = (addr % PAGE_SIZE) as usize;
        if self.fast_path && off + 4 <= PAGE_SIZE as usize {
            let slot = self.resolve(addr, access)?;
            let page = &mut self.slots[slot];
            page.touch();
            page.bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
            Ok(())
        } else {
            // Page-straddling store: byte-by-byte so a mid-word fault
            // leaves the earlier bytes written, exactly as before. The
            // flag-disabled baseline takes this path unconditionally.
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b, access)?;
            }
            Ok(())
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults on the first inaccessible byte.
    pub fn read_bytes(&self, addr: u32, buf: &mut [u8], access: Access) -> Result<(), MemError> {
        if !self.fast_path {
            // Flag-disabled baseline: one lookup per byte, as the
            // original implementation did. Fault addresses coincide
            // (each chunk below starts at the first byte of its page).
            for (i, b) in buf.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u32), access)?;
            }
            return Ok(());
        }
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr.wrapping_add(pos as u32);
            let off = (a % PAGE_SIZE) as usize;
            let chunk = (PAGE_SIZE as usize - off).min(buf.len() - pos);
            let slot = self.resolve(a, access)?;
            buf[pos..pos + chunk].copy_from_slice(&self.slots[slot].bytes[off..off + chunk]);
            pos += chunk;
        }
        Ok(())
    }

    /// Writes all of `bytes` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults on the first inaccessible byte; earlier bytes stay written.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8], access: Access) -> Result<(), MemError> {
        let mut pos = 0usize;
        if !self.fast_path {
            // Baseline: per-byte, matching the original implementation.
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b, access)?;
            }
            return Ok(());
        }
        while pos < bytes.len() {
            let a = addr.wrapping_add(pos as u32);
            let off = (a % PAGE_SIZE) as usize;
            let chunk = (PAGE_SIZE as usize - off).min(bytes.len() - pos);
            let slot = self.resolve(a, access)?;
            let page = &mut self.slots[slot];
            page.touch();
            page.bytes[off..off + chunk].copy_from_slice(&bytes[pos..pos + chunk]);
            pos += chunk;
        }
        Ok(())
    }

    /// Copies `bytes` into memory ignoring permissions (but not
    /// mappedness). This models a *loader* or *platform* action, not a
    /// program action: the OS writing a code segment, or a machine-code
    /// attacker with kernel privileges.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages.
    pub fn poke_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut pos = 0usize;
        while pos < bytes.len() {
            let a = addr.wrapping_add(pos as u32);
            let off = (a % PAGE_SIZE) as usize;
            let chunk = (PAGE_SIZE as usize - off).min(bytes.len() - pos);
            let slot = self.resolve_raw(a, Access::Write)?;
            let page = &mut self.slots[slot];
            // Pokes bypass permissions, so they can always plant code;
            // touching the page stales any decode read from it.
            page.touch();
            page.bytes[off..off + chunk].copy_from_slice(&bytes[pos..pos + chunk]);
            pos += chunk;
        }
        Ok(())
    }

    /// Reads bytes ignoring permissions (but not mappedness); the
    /// complement of [`Memory::poke_bytes`], used by platform-level
    /// inspection such as attestation measurement and kernel-level
    /// memory-scraping malware.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages.
    pub fn peek_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, MemError> {
        let mut out = vec![0u8; len as usize];
        let mut pos = 0usize;
        while pos < out.len() {
            let a = addr.wrapping_add(pos as u32);
            let off = (a % PAGE_SIZE) as usize;
            let chunk = (PAGE_SIZE as usize - off).min(out.len() - pos);
            let slot = self.resolve_raw(a, Access::Read)?;
            out[pos..pos + chunk].copy_from_slice(&self.slots[slot].bytes[off..off + chunk]);
            pos += chunk;
        }
        Ok(out)
    }

    /// Reads a 32-bit word ignoring permissions.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages.
    pub fn peek_u32(&self, addr: u32) -> Result<u32, MemError> {
        let bytes = self.peek_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Captures every mapped page (bytes + permission) and the
    /// enforcement flag into an immutable [`MemorySnapshot`], and arms
    /// dirty tracking: every page's dirty bit is cleared, so a later
    /// [`restore_from`](Memory::restore_from) of this snapshot copies
    /// back exactly the pages written in between.
    ///
    /// Takes `&mut self` because arming the tracking mutates the dirty
    /// bits; the visible memory state is unchanged.
    pub fn snapshot(&mut self) -> MemorySnapshot {
        let mut pages = Vec::with_capacity(self.table.len());
        let slots = &mut self.slots;
        for (&base, &slot) in &self.table {
            let page = &mut slots[slot as usize];
            page.dirty = false;
            pages.push((base, Arc::new(*page.bytes), page.perm));
        }
        self.layout_dirty = false;
        MemorySnapshot {
            pages,
            enforce: self.enforce,
        }
    }

    /// Restores the memory to the state captured by `snap`, copying
    /// back **only the pages dirtied since that snapshot was taken** —
    /// O(dirty pages), not O(mapped pages). Returns what was copied.
    ///
    /// The fast path requires that the page *layout* is unchanged since
    /// the snapshot (no `map`/`unmap`/`set_perm`/`set_enforce`); when
    /// it did change, the restore falls back to a wholesale rebuild
    /// from the snapshot's images (every page counts as copied).
    ///
    /// Copied-back pages get their write generation bumped (their
    /// bytes changed, so decodes read from them must re-validate);
    /// untouched pages keep their generation, their cached decodes and
    /// their TLB translations. Architectural state after a restore is
    /// bit-identical to a fresh build; the cache *counters* are not —
    /// a restored memory runs warm, which is the point. (The counters
    /// are observability-only and excluded from rendered reports, so
    /// determinism of experiment output is unaffected.)
    ///
    /// Restoring a snapshot from a *different* memory (one this memory
    /// never produced with a matching layout) is not meaningful on the
    /// fast path; debug builds assert the layouts agree.
    pub fn restore_from(&mut self, snap: &MemorySnapshot) -> RestoreStats {
        let mut stats = RestoreStats::default();
        if self.layout_dirty {
            // Layout diverged (or this memory never snapshotted):
            // rebuild wholesale from the captured images.
            self.table.clear();
            self.slots.clear();
            self.free.clear();
            for (base, image, perm) in &snap.pages {
                let mut page = Page::new(*perm);
                page.bytes.copy_from_slice(&image[..]);
                page.dirty = false;
                self.slots.push(page);
                self.table.insert(*base, (self.slots.len() - 1) as u32);
                stats.dirty_pages += 1;
                stats.bytes_copied += u64::from(PAGE_SIZE);
            }
            self.enforce = snap.enforce;
            self.invalidate_layout();
            self.layout_dirty = false;
        } else {
            debug_assert_eq!(
                self.table.len(),
                snap.pages.len(),
                "clean-layout restore requires the snapshot's page set"
            );
            debug_assert_eq!(self.enforce, snap.enforce);
            let slots = &mut self.slots;
            for ((&base, &slot), (sbase, image, sperm)) in self.table.iter().zip(&snap.pages) {
                debug_assert_eq!(base, *sbase, "page layout diverged without layout_dirty");
                let page = &mut slots[slot as usize];
                debug_assert_eq!(page.perm, *sperm);
                if page.dirty {
                    page.bytes.copy_from_slice(&image[..]);
                    // The copy-back is a byte mutation like any other:
                    // bump the page's write generation so decodes read
                    // from the pre-restore bytes go stale. Untouched
                    // pages keep their generation — and their cached
                    // decodes — which is what makes serving attempts
                    // from a snapshot cheaper than a fresh build, not
                    // just cheaper than a recompile.
                    page.gen = page.gen.wrapping_add(1);
                    page.dirty = false;
                    stats.dirty_pages += 1;
                    stats.bytes_copied += u64::from(PAGE_SIZE);
                }
            }
            // The page layout is unchanged, so TLB translations remain
            // valid and are deliberately kept warm across the restore.
        }
        stats
    }

    /// Zeroes the TLB hit/miss counters (the per-machine [`TlbStats`],
    /// not the process-wide totals). Used by the machine-level restore
    /// so a restored run's stats start from zero like a fresh build's.
    pub(crate) fn reset_tlb_counts(&self) {
        self.tlb_hits.set(0);
        self.tlb_misses.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_rw_roundtrip() {
        let mut mem = Memory::new();
        mem.map(0x1000, 0x2000, Perm::RW).unwrap();
        mem.write_u32(0x1ffe, 0x1122_3344, Access::Write).unwrap();
        assert_eq!(mem.read_u32(0x1ffe, Access::Read).unwrap(), 0x1122_3344);
    }

    #[test]
    fn words_are_little_endian() {
        let mut mem = Memory::new();
        mem.map(0, PAGE_SIZE, Perm::RW).unwrap();
        mem.write_u32(0, 0x0804_840a, Access::Write).unwrap();
        assert_eq!(mem.read_u8(0, Access::Read).unwrap(), 0x0a);
        assert_eq!(mem.read_u8(1, Access::Read).unwrap(), 0x84);
        assert_eq!(mem.read_u8(2, Access::Read).unwrap(), 0x04);
        assert_eq!(mem.read_u8(3, Access::Read).unwrap(), 0x08);
    }

    #[test]
    fn unmapped_access_faults() {
        let mem = Memory::new();
        let err = mem.read_u8(0x5000, Access::Read).unwrap_err();
        assert_eq!(err.kind, MemErrorKind::Unmapped);
        assert_eq!(err.addr, 0x5000);
    }

    #[test]
    fn permissions_are_enforced() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RX).unwrap();
        assert!(mem.read_u8(0x1000, Access::Read).is_ok());
        assert!(mem.read_u8(0x1000, Access::Fetch).is_ok());
        let err = mem.write_u8(0x1000, 1, Access::Write).unwrap_err();
        assert_eq!(err.kind, MemErrorKind::Denied { have: Perm::RX });
    }

    #[test]
    fn permissions_enforced_on_repeated_tlb_hits() {
        // The permission check must run on the memoized path too.
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::R).unwrap();
        for _ in 0..3 {
            assert!(mem.read_u8(0x1000, Access::Read).is_ok());
            let err = mem.write_u8(0x1000, 1, Access::Write).unwrap_err();
            assert_eq!(err.kind, MemErrorKind::Denied { have: Perm::R });
        }
        assert!(mem.tlb_stats().hits > 0);
    }

    #[test]
    fn disabling_enforcement_models_pre_dep_memory() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RW).unwrap();
        assert!(mem.read_u8(0x1000, Access::Fetch).is_err());
        mem.set_enforce(false);
        assert!(mem.read_u8(0x1000, Access::Fetch).is_ok());
        // Unmapped pages still fault.
        assert!(mem.read_u8(0x9000, Access::Read).is_err());
    }

    #[test]
    fn double_map_rejected_atomically() {
        let mut mem = Memory::new();
        mem.map(0x2000, PAGE_SIZE, Perm::RW).unwrap();
        let err = mem.map(0x1000, 3 * PAGE_SIZE, Perm::RW).unwrap_err();
        assert_eq!(err.page_base, 0x2000);
        // The non-conflicting page must not have been mapped.
        assert!(!mem.is_mapped(0x1000));
        assert!(!mem.is_mapped(0x3000));
    }

    #[test]
    fn map_rounds_to_page_boundaries() {
        let mut mem = Memory::new();
        mem.map(0x1ffe, 4, Perm::RW).unwrap();
        // Both straddled pages mapped.
        assert!(mem.is_mapped(0x1000));
        assert!(mem.is_mapped(0x2000));
        assert!(!mem.is_mapped(0x3000));
    }

    #[test]
    fn straddling_word_access_crosses_pages() {
        let mut mem = Memory::new();
        mem.map(0x1000, 2 * PAGE_SIZE, Perm::RW).unwrap();
        mem.write_u32(0x1fff, 0xaabb_ccdd, Access::Write).unwrap();
        assert_eq!(mem.read_u32(0x1fff, Access::Read).unwrap(), 0xaabb_ccdd);
    }

    #[test]
    fn straddling_store_faulting_mid_word_keeps_earlier_bytes() {
        // Page 1 writable, page 2 read-only: bytes in page 1 land,
        // the fault names the first byte of page 2.
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RW).unwrap();
        mem.map(0x2000, PAGE_SIZE, Perm::R).unwrap();
        let err = mem.write_u32(0x1ffe, 0xddcc_bbaa, Access::Write).unwrap_err();
        assert_eq!(err.addr, 0x2000);
        assert_eq!(err.kind, MemErrorKind::Denied { have: Perm::R });
        assert_eq!(mem.read_u8(0x1ffe, Access::Read).unwrap(), 0xaa);
        assert_eq!(mem.read_u8(0x1fff, Access::Read).unwrap(), 0xbb);
        assert_eq!(mem.read_u8(0x2000, Access::Read).unwrap(), 0);
    }

    #[test]
    fn write_bytes_faults_at_first_inaccessible_byte() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RW).unwrap();
        let data = vec![7u8; 2 * PAGE_SIZE as usize];
        let err = mem.write_bytes(0x1800, &data, Access::Write).unwrap_err();
        assert_eq!(err.addr, 0x2000);
        assert_eq!(err.kind, MemErrorKind::Unmapped);
        // The in-page prefix stays written.
        assert_eq!(mem.read_u8(0x1fff, Access::Read).unwrap(), 7);
    }

    #[test]
    fn regions_merge_contiguous_same_perm_pages() {
        let mut mem = Memory::new();
        mem.map(0x1000, 2 * PAGE_SIZE, Perm::RX).unwrap();
        mem.map(0x3000, PAGE_SIZE, Perm::RW).unwrap();
        mem.map(0x8000, PAGE_SIZE, Perm::RW).unwrap();
        let regions = mem.regions();
        assert_eq!(
            regions,
            vec![
                (0x1000..0x3000, Perm::RX),
                (0x3000..0x4000, Perm::RW),
                (0x8000..0x9000, Perm::RW),
            ]
        );
    }

    #[test]
    fn poke_and_peek_ignore_permissions() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::NONE).unwrap();
        mem.poke_bytes(0x1000, &[1, 2, 3]).unwrap();
        assert_eq!(mem.peek_bytes(0x1000, 3).unwrap(), vec![1, 2, 3]);
        assert!(mem.read_u8(0x1000, Access::Read).is_err());
    }

    #[test]
    fn set_perm_changes_existing_pages_only() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RW).unwrap();
        mem.set_perm(0x1000, 2 * PAGE_SIZE, Perm::R);
        assert_eq!(mem.perm_at(0x1000), Some(Perm::R));
        assert!(!mem.is_mapped(0x2000));
    }

    #[test]
    fn unmap_removes_pages_and_recycles_slots() {
        let mut mem = Memory::new();
        mem.map(0x1000, 2 * PAGE_SIZE, Perm::RW).unwrap();
        mem.write_u8(0x1000, 0xee, Access::Write).unwrap();
        mem.unmap(0x1000, PAGE_SIZE);
        assert!(!mem.is_mapped(0x1000));
        assert!(mem.is_mapped(0x2000));
        let err = mem.read_u8(0x1000, Access::Read).unwrap_err();
        assert_eq!(err.kind, MemErrorKind::Unmapped);
        // Remapping reuses the slot zero-filled.
        mem.map(0x5000, PAGE_SIZE, Perm::RW).unwrap();
        assert_eq!(mem.read_u8(0x5000, Access::Read).unwrap(), 0);
    }

    #[test]
    fn unmap_invalidates_cached_translation() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RW).unwrap();
        // Prime the data TLB.
        assert!(mem.read_u8(0x1000, Access::Read).is_ok());
        mem.unmap(0x1000, PAGE_SIZE);
        let err = mem.read_u8(0x1000, Access::Read).unwrap_err();
        assert_eq!(err.kind, MemErrorKind::Unmapped);
    }

    #[test]
    fn set_perm_invalidates_cached_translation() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RW).unwrap();
        assert!(mem.write_u8(0x1000, 1, Access::Write).is_ok());
        mem.set_perm(0x1000, PAGE_SIZE, Perm::R);
        let err = mem.write_u8(0x1000, 2, Access::Write).unwrap_err();
        assert_eq!(err.kind, MemErrorKind::Denied { have: Perm::R });
    }

    #[test]
    fn write_generations_are_tracked_per_page() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RWX).unwrap();
        mem.map(0x2000, PAGE_SIZE, Perm::RWX).unwrap();
        let global = mem.code_generation();
        let a0 = mem.fetch_gen(0x1000).unwrap();
        let b0 = mem.fetch_gen(0x2000).unwrap();
        // A store bumps only the written page's generation — decodes
        // from the other page stay valid — and never the global one.
        mem.write_u32(0x1000, 7, Access::Write).unwrap();
        assert!(mem.fetch_gen(0x1000).unwrap() > a0);
        assert_eq!(mem.fetch_gen(0x2000).unwrap(), b0);
        assert_eq!(mem.code_generation(), global);
        // Loader pokes plant code the same way.
        mem.poke_bytes(0x2000, &[1]).unwrap();
        assert!(mem.fetch_gen(0x2000).unwrap() > b0);
        assert_eq!(mem.code_generation(), global);
    }

    #[test]
    fn code_generation_bumps_on_layout_changes() {
        let mut mem = Memory::new();
        let mut last = mem.code_generation();
        let mut expect_bump = |mem: &Memory, what: &str| {
            let now = mem.code_generation();
            assert!(now > last, "{what} must bump the code generation");
            last = now;
        };
        mem.map(0x1000, PAGE_SIZE, Perm::RW).unwrap();
        expect_bump(&mem, "map");
        mem.set_perm(0x1000, PAGE_SIZE, Perm::RX);
        expect_bump(&mem, "set_perm");
        mem.set_enforce(false);
        expect_bump(&mem, "set_enforce");
        mem.unmap(0x1000, PAGE_SIZE);
        expect_bump(&mem, "unmap");
    }

    #[test]
    fn fast_path_off_matches_fast_path_on() {
        let run = |fast: bool| {
            let mut mem = Memory::new();
            mem.set_fast_path(fast);
            mem.map(0x1000, 2 * PAGE_SIZE, Perm::RW).unwrap();
            mem.write_u32(0x1ffe, 0x0102_0304, Access::Write).unwrap();
            let word = mem.read_u32(0x1ffe, Access::Read).unwrap();
            let err = mem.read_u8(0x4000, Access::Read).unwrap_err();
            (word, err)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn tlb_counts_hits_and_misses() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RW).unwrap();
        mem.write_u32(0x1000, 1, Access::Write).unwrap(); // miss
        mem.write_u32(0x1004, 2, Access::Write).unwrap(); // hit
        mem.write_u32(0x1008, 3, Access::Write).unwrap(); // hit
        let stats = mem.tlb_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        // With the fast path off, nothing is counted.
        mem.set_fast_path(false);
        mem.write_u32(0x100c, 4, Access::Write).unwrap();
        assert_eq!(mem.tlb_stats(), stats);
    }

    #[test]
    fn perm_display() {
        assert_eq!(Perm::RWX.to_string(), "rwx");
        assert_eq!(Perm::RX.to_string(), "r-x");
        assert_eq!(Perm::NONE.to_string(), "---");
    }

    #[test]
    fn zero_length_map_is_noop() {
        let mut mem = Memory::new();
        mem.map(0x1000, 0, Perm::RW).unwrap();
        assert!(!mem.is_mapped(0x1000));
    }

    #[test]
    fn two_entry_tlb_holds_alternating_pages() {
        // The caller/module pattern: strict alternation between two
        // pages must hit after the first visit to each — the one-entry
        // design thrashed (every access a miss).
        let mut mem = Memory::new();
        mem.map(0x1000, 2 * PAGE_SIZE, Perm::RW).unwrap();
        for i in 0..10u32 {
            let addr = if i % 2 == 0 { 0x1000 } else { 0x2000 };
            mem.write_u8(addr, i as u8, Access::Write).unwrap();
        }
        let stats = mem.tlb_stats();
        assert_eq!(stats.misses, 2, "one cold miss per page");
        assert_eq!(stats.hits, 8);
    }

    #[test]
    fn two_entry_tlb_evicts_the_lru_entry() {
        let mut mem = Memory::new();
        mem.map(0x1000, 3 * PAGE_SIZE, Perm::RW).unwrap();
        // A(miss) B(miss) A(hit) C(miss, evicts B) A(hit) C(hit).
        let seq = [0x1000u32, 0x2000, 0x1000, 0x3000, 0x1000, 0x3000];
        for (i, &addr) in seq.iter().enumerate() {
            mem.write_u8(addr, i as u8, Access::Write).unwrap();
        }
        let stats = mem.tlb_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn restore_copies_exactly_the_dirty_pages() {
        let mut mem = Memory::new();
        mem.map(0x1000, 4 * PAGE_SIZE, Perm::RW).unwrap();
        mem.write_u8(0x1000, 0xaa, Access::Write).unwrap();
        let snap = mem.snapshot();
        assert_eq!(snap.page_count(), 4);

        // Touch two of the four pages.
        mem.write_u8(0x2000, 1, Access::Write).unwrap();
        mem.write_u32(0x3ff0, 2, Access::Write).unwrap();
        let stats = mem.restore_from(&snap);
        assert_eq!(stats.dirty_pages, 2);
        assert_eq!(stats.bytes_copied, 2 * u64::from(PAGE_SIZE));

        // Contents are back, including the pre-snapshot byte.
        assert_eq!(mem.read_u8(0x1000, Access::Read).unwrap(), 0xaa);
        assert_eq!(mem.read_u8(0x2000, Access::Read).unwrap(), 0);
        assert_eq!(mem.read_u32(0x3ff0, Access::Read).unwrap(), 0);

        // A second restore with nothing dirtied copies nothing.
        let stats = mem.restore_from(&snap);
        assert_eq!(stats.dirty_pages, 0);
        assert_eq!(stats.bytes_copied, 0);
    }

    #[test]
    fn restore_after_layout_change_rebuilds_wholesale() {
        let mut mem = Memory::new();
        mem.map(0x1000, 2 * PAGE_SIZE, Perm::RW).unwrap();
        mem.write_u8(0x1000, 7, Access::Write).unwrap();
        let snap = mem.snapshot();
        // Change the layout: the dirty-bit fast path is off the table.
        mem.map(0x8000, PAGE_SIZE, Perm::RX).unwrap();
        mem.set_enforce(false);
        let stats = mem.restore_from(&snap);
        assert_eq!(stats.dirty_pages, 2, "wholesale restore copies every page");
        assert!(mem.enforce(), "enforcement flag restored");
        assert!(!mem.is_mapped(0x8000), "post-snapshot mapping gone");
        assert_eq!(mem.read_u8(0x1000, Access::Read).unwrap(), 7);
        // The rebuilt memory is snapshot-consistent again: a dirty-path
        // restore works and copies only what is written.
        mem.write_u8(0x2000, 9, Access::Write).unwrap();
        assert_eq!(mem.restore_from(&snap).dirty_pages, 1);
    }

    #[test]
    fn restore_stales_only_the_copied_pages_and_keeps_the_tlb_warm() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE, Perm::RWX).unwrap();
        mem.map(0x2000, PAGE_SIZE, Perm::RWX).unwrap();
        let snap = mem.snapshot();
        mem.write_u8(0x1000, 0x90, Access::Write).unwrap();
        let touched = mem.fetch_gen(0x1000).unwrap();
        let untouched = mem.fetch_gen(0x2000).unwrap();
        mem.restore_from(&snap);
        // The copy-back stales decodes from the restored page only.
        assert!(
            mem.fetch_gen(0x1000).unwrap() > touched,
            "restored bytes must invalidate cached decodes"
        );
        assert_eq!(mem.fetch_gen(0x2000).unwrap(), untouched);
        // Layout unchanged: translations survive the restore, so the
        // next access through a previously-warm entry still hits.
        let before = mem.tlb_stats();
        mem.read_u8(0x1000, Access::Read).unwrap();
        assert_eq!(mem.tlb_stats().misses, before.misses);
        assert_eq!(mem.tlb_stats().hits, before.hits + 1);
    }

    #[test]
    fn poke_marks_pages_dirty_for_restore() {
        let mut mem = Memory::new();
        mem.map(0x1000, 2 * PAGE_SIZE, Perm::RX).unwrap();
        let snap = mem.snapshot();
        mem.poke_bytes(0x1ffe, &[1, 2, 3, 4]).unwrap(); // straddles both pages
        let stats = mem.restore_from(&snap);
        assert_eq!(stats.dirty_pages, 2);
        assert_eq!(mem.peek_bytes(0x1ffe, 4).unwrap(), vec![0, 0, 0, 0]);
    }
}
