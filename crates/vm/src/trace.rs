//! Execution statistics and instruction tracing.
//!
//! Statistics are cheap and always collected; full instruction traces
//! are opt-in via [`Machine::set_trace`](crate::cpu::Machine::set_trace)
//! and are used by experiments that want to show *how* an attack
//! redirected control flow.

use std::fmt;

use crate::isa::Instr;

/// Counters accumulated over a machine's lifetime.
///
/// The cache counters (`icache_*`, `tlb_*`, `tier2_*`) observe the
/// hot-path accelerators of the interpreter; they vary with the
/// fast-path and tier-2 switches and are deliberately **excluded**
/// from [`Display`], so any rendered report built on these stats
/// stays byte-identical whether the accelerators are on or off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
    /// `call`/`callr` instructions executed.
    pub calls: u64,
    /// `ret` instructions executed.
    pub rets: u64,
    /// Data loads performed.
    pub mem_reads: u64,
    /// Data stores performed.
    pub mem_writes: u64,
    /// System calls performed.
    pub syscalls: u64,
    /// Fetches served from the decoded-instruction cache.
    pub icache_hits: u64,
    /// Fetches that had to decode from memory.
    pub icache_misses: u64,
    /// Memory accesses translated by a TLB entry.
    pub tlb_hits: u64,
    /// Memory accesses that took the page-table lookup.
    pub tlb_misses: u64,
    /// Superinstruction blocks compiled by the tier-2 engine.
    pub tier2_compiled: u64,
    /// Tier-2 block-cache hits (block entries).
    pub tier2_hits: u64,
    /// Instructions retired inside tier-2 blocks (a subset of
    /// `instructions`).
    pub tier2_instructions: u64,
    /// Early exits from tier-2 blocks: a fault, an exhausted fuel
    /// budget, or a self-modifying store to the block's own pages.
    pub tier2_side_exits: u64,
    /// Tier-2 blocks dropped because a generation check failed at
    /// entry (SMC, loader pokes, snapshot restores, layout changes).
    pub tier2_invalidations: u64,
    /// Dynamic-transfer inline-cache hits: chain entries served by a
    /// terminator's predicted `(target, block)` pair, skipping the
    /// block-cache lookup and hotness bookkeeping.
    pub tier2_ic_hits: u64,
    /// Inline-cache probes that found no usable prediction and fell
    /// back to the full lookup.
    pub tier2_ic_misses: u64,
    /// Predictions installed (or refreshed) into an inline cache after
    /// a miss.
    pub tier2_ic_installs: u64,
    /// Inline caches that overflowed their ways and went megamorphic
    /// (the terminator stops predicting).
    pub tier2_ic_megamorphic: u64,
}

impl ExecStats {
    /// The architectural projection: these stats with the cache
    /// counters zeroed. Two runs are *semantically* equivalent iff
    /// their architectural stats (plus outcome, registers, memory and
    /// I/O) agree; the cache counters legitimately differ between a
    /// fresh build and a snapshot-restored attempt, or between
    /// fast-path settings. Equivalence tests compare this projection.
    pub fn architectural(mut self) -> ExecStats {
        self.icache_hits = 0;
        self.icache_misses = 0;
        self.tlb_hits = 0;
        self.tlb_misses = 0;
        self.tier2_compiled = 0;
        self.tier2_hits = 0;
        self.tier2_instructions = 0;
        self.tier2_side_exits = 0;
        self.tier2_invalidations = 0;
        self.tier2_ic_hits = 0;
        self.tier2_ic_misses = 0;
        self.tier2_ic_installs = 0;
        self.tier2_ic_megamorphic = 0;
        self
    }

    /// A multi-line rendering that *does* include the cache counters —
    /// the diagnostic companion to [`Display`](fmt::Display), for
    /// benchmark output and interactive inspection. Never use this in
    /// a deterministic report body: the cache numbers vary with the
    /// fast-path switch.
    pub fn verbose(&self) -> String {
        let rate = |hits: u64, misses: u64| {
            let total = hits + misses;
            if total == 0 {
                "n/a".to_string()
            } else {
                format!("{:.1}%", hits as f64 * 100.0 / total as f64)
            }
        };
        format!(
            "{self}\n  icache: {} hits, {} misses ({} hit rate)\n  tlb: {} hits, {} misses ({} hit rate)\n  tier2: {} blocks compiled, {} entries, {} instructions, {} side exits, {} invalidations\n  tier2 ic: {} hits, {} misses, {} installs, {} megamorphic",
            self.icache_hits,
            self.icache_misses,
            rate(self.icache_hits, self.icache_misses),
            self.tlb_hits,
            self.tlb_misses,
            rate(self.tlb_hits, self.tlb_misses),
            self.tier2_compiled,
            self.tier2_hits,
            self.tier2_instructions,
            self.tier2_side_exits,
            self.tier2_invalidations,
            self.tier2_ic_hits,
            self.tier2_ic_misses,
            self.tier2_ic_installs,
            self.tier2_ic_megamorphic,
        )
    }
}

impl fmt::Display for ExecStats {
    // The cache counters are intentionally absent: this rendering
    // feeds deterministic experiment reports (see struct docs).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions ({} calls, {} rets, {} loads, {} stores, {} syscalls)",
            self.instructions, self.calls, self.rets, self.mem_reads, self.mem_writes,
            self.syscalls
        )
    }
}

/// One executed instruction, as recorded by the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Address the instruction was fetched from.
    pub ip: u32,
    /// The decoded instruction.
    pub instr: Instr,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}: {}", self.ip, self.instr)
    }
}

/// Default capacity of a machine's trace ring, in entries.
pub const DEFAULT_TRACE_CAPACITY: usize = 64 * 1024;

/// A bounded ring buffer of [`TraceEntry`] values.
///
/// Tracing used to accumulate into an unbounded `Vec`, which meant a
/// long campaign run with tracing enabled could exhaust memory. The
/// ring keeps the **most recent** `capacity` entries — the ones that
/// show where an attack actually ended up — and counts how many older
/// entries were overwritten.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<TraceEntry>,
    capacity: usize,
    /// Oldest entry's index once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new()
    }
}

impl TraceRing {
    /// A ring with the default capacity.
    pub fn new() -> TraceRing {
        TraceRing::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A ring holding at most `capacity` entries (min 1). Storage is
    /// allocated lazily as entries arrive.
    pub fn with_capacity(capacity: usize) -> TraceRing {
        TraceRing {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an entry, overwriting the oldest if the ring is full.
    #[inline]
    pub fn push(&mut self, entry: TraceEntry) {
        if self.buf.len() < self.capacity {
            self.buf.push(entry);
        } else {
            self.buf[self.head] = entry;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of entries the ring will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many entries have been overwritten since the last take.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns the surviving entries oldest-first,
    /// resetting the ring.
    pub fn take(&mut self) -> Vec<TraceEntry> {
        let mut out = std::mem::take(&mut self.buf);
        if self.dropped > 0 {
            out.rotate_left(self.head);
        }
        self.head = 0;
        self.dropped = 0;
        out
    }
}

/// Bridges taken trace entries into Chrome trace *instant* events, one
/// per retired instruction, named `0x{ip:08x}: {instr}` — the glue
/// between [`TraceRing::take`] and
/// [`swsec_obs::span::chrome_trace`]'s `instants` argument, so an
/// instruction trace lands on the same timeline as the span tree.
///
/// Timestamps are deterministic: `base_us + index`, i.e. viewer order
/// is execution order regardless of host timing. Pass the owning
/// span's start as `base_us` to nest the trail inside it.
#[must_use]
pub fn chrome_instants(
    entries: &[TraceEntry],
    track: u32,
    base_us: u64,
) -> Vec<swsec_obs::ChromeInstant> {
    entries
        .iter()
        .enumerate()
        .map(|(i, entry)| swsec_obs::ChromeInstant {
            name: entry.to_string(),
            track,
            ts_us: base_us + i as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Reg};

    #[test]
    fn stats_display_is_nonempty() {
        let stats = ExecStats::default();
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn trace_entry_display_includes_address() {
        let entry = TraceEntry {
            ip: 0x0804_83f2,
            instr: Instr::Push(Reg::Bp),
        };
        assert_eq!(entry.to_string(), "0x080483f2: push bp");
    }

    #[test]
    fn verbose_includes_cache_counters_display_does_not() {
        let stats = ExecStats {
            instructions: 10,
            icache_hits: 7,
            icache_misses: 3,
            tlb_hits: 1,
            tlb_misses: 1,
            ..ExecStats::default()
        };
        let plain = stats.to_string();
        assert!(!plain.contains("icache"));
        let verbose = stats.verbose();
        assert!(verbose.starts_with(&plain));
        assert!(verbose.contains("icache: 7 hits, 3 misses (70.0% hit rate)"));
        assert!(verbose.contains("tlb: 1 hits, 1 misses (50.0% hit rate)"));
        // Empty stats render rates as n/a, not a division by zero.
        assert!(ExecStats::default().verbose().contains("n/a"));
    }

    fn entry(ip: u32) -> TraceEntry {
        TraceEntry {
            ip,
            instr: Instr::Nop,
        }
    }

    #[test]
    fn trace_ring_bounds_memory_and_keeps_newest() {
        let mut ring = TraceRing::with_capacity(3);
        assert_eq!(ring.capacity(), 3);
        for ip in 0..5 {
            ring.push(entry(ip));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let entries = ring.take();
        assert_eq!(
            entries.iter().map(|e| e.ip).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        // Taking resets the ring.
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        ring.push(entry(9));
        assert_eq!(ring.take().len(), 1);
    }

    #[test]
    fn chrome_instants_are_ordered_and_named() {
        let entries = vec![entry(0x1000), entry(0x1002)];
        let instants = chrome_instants(&entries, 3, 100);
        assert_eq!(instants.len(), 2);
        assert_eq!(instants[0].name, "0x00001000: nop");
        assert_eq!(instants[0].track, 3);
        assert_eq!(instants[0].ts_us, 100);
        assert_eq!(instants[1].ts_us, 101);
    }

    #[test]
    fn trace_ring_below_capacity_is_in_order() {
        let mut ring = TraceRing::new();
        assert_eq!(ring.capacity(), DEFAULT_TRACE_CAPACITY);
        ring.push(entry(1));
        ring.push(entry(2));
        let entries = ring.take();
        assert_eq!(entries.iter().map(|e| e.ip).collect::<Vec<_>>(), vec![1, 2]);
    }
}
