//! Execution statistics and instruction tracing.
//!
//! Statistics are cheap and always collected; full instruction traces
//! are opt-in via [`Machine::set_trace`](crate::cpu::Machine::set_trace)
//! and are used by experiments that want to show *how* an attack
//! redirected control flow.

use std::fmt;

use crate::isa::Instr;

/// Counters accumulated over a machine's lifetime.
///
/// The cache counters (`icache_*`, `tlb_*`) observe the hot-path
/// accelerators of the interpreter; they vary with the fast-path
/// switch and are deliberately **excluded** from [`Display`], so any
/// rendered report built on these stats stays byte-identical whether
/// the caches are on or off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
    /// `call`/`callr` instructions executed.
    pub calls: u64,
    /// `ret` instructions executed.
    pub rets: u64,
    /// Data loads performed.
    pub mem_reads: u64,
    /// Data stores performed.
    pub mem_writes: u64,
    /// System calls performed.
    pub syscalls: u64,
    /// Fetches served from the decoded-instruction cache.
    pub icache_hits: u64,
    /// Fetches that had to decode from memory.
    pub icache_misses: u64,
    /// Memory accesses translated by a one-entry TLB.
    pub tlb_hits: u64,
    /// Memory accesses that took the page-table lookup.
    pub tlb_misses: u64,
}

impl fmt::Display for ExecStats {
    // The cache counters are intentionally absent: this rendering
    // feeds deterministic experiment reports (see struct docs).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions ({} calls, {} rets, {} loads, {} stores, {} syscalls)",
            self.instructions, self.calls, self.rets, self.mem_reads, self.mem_writes,
            self.syscalls
        )
    }
}

/// One executed instruction, as recorded by the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Address the instruction was fetched from.
    pub ip: u32,
    /// The decoded instruction.
    pub instr: Instr,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}: {}", self.ip, self.instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Reg};

    #[test]
    fn stats_display_is_nonempty() {
        let stats = ExecStats::default();
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn trace_entry_display_includes_address() {
        let entry = TraceEntry {
            ip: 0x0804_83f2,
            instr: Instr::Push(Reg::Bp),
        };
        assert_eq!(entry.to_string(), "0x080483f2: push bp");
    }
}
