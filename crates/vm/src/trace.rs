//! Execution statistics and instruction tracing.
//!
//! Statistics are cheap and always collected; full instruction traces
//! are opt-in via [`Machine::set_trace`](crate::cpu::Machine::set_trace)
//! and are used by experiments that want to show *how* an attack
//! redirected control flow.

use std::fmt;

use crate::isa::Instr;

/// Counters accumulated over a machine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
    /// `call`/`callr` instructions executed.
    pub calls: u64,
    /// `ret` instructions executed.
    pub rets: u64,
    /// Data loads performed.
    pub mem_reads: u64,
    /// Data stores performed.
    pub mem_writes: u64,
    /// System calls performed.
    pub syscalls: u64,
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions ({} calls, {} rets, {} loads, {} stores, {} syscalls)",
            self.instructions, self.calls, self.rets, self.mem_reads, self.mem_writes,
            self.syscalls
        )
    }
}

/// One executed instruction, as recorded by the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Address the instruction was fetched from.
    pub ip: u32,
    /// The decoded instruction.
    pub instr: Instr,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}: {}", self.ip, self.instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Reg};

    #[test]
    fn stats_display_is_nonempty() {
        let stats = ExecStats::default();
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn trace_entry_display_includes_address() {
        let entry = TraceEntry {
            ip: 0x0804_83f2,
            instr: Instr::Push(Reg::Bp),
        };
        assert_eq!(entry.to_string(), "0x080483f2: push bp");
    }
}
