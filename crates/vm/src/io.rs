//! I/O channels: the machine's only interface to the outside world.
//!
//! In the paper's *I/O attacker model* the attacker can do exactly two
//! things: choose the bytes a program reads, and observe the bytes it
//! writes. [`IoBus`] realizes that interface as a set of numbered
//! channels (file descriptors), each with an input queue the attacker
//! fills before (or during) the run and an output log the attacker reads
//! afterwards.
//!
//! # Examples
//!
//! ```
//! use swsec_vm::io::IoBus;
//!
//! let mut bus = IoBus::new();
//! bus.feed_input(0, b"GET /secret");
//! let mut buf = [0u8; 4];
//! let n = bus.read(0, &mut buf);
//! assert_eq!(&buf[..n], b"GET ");
//! bus.write(1, b"403");
//! assert_eq!(bus.output(1), b"403");
//! ```

use std::collections::BTreeMap;

/// Input is kept as a flat buffer plus a consume cursor rather than a
/// deque: reads and feeds are then both straight `memcpy`s, which
/// matters to the fork server — every attempt feeds and drains an
/// attacker payload, and per-byte queue traffic was measurable against
/// a sub-microsecond attempt budget.
#[derive(Debug, Default, Clone)]
struct Channel {
    input: Vec<u8>,
    /// Bytes of `input` already consumed by reads.
    read_pos: usize,
    output: Vec<u8>,
}

/// The set of I/O channels attached to one machine.
///
/// Reads are non-blocking: a `read` returns however many bytes are
/// queued, possibly zero. This models a request already received on a
/// network connection, which is how the paper's example server obtains
/// attacker-controlled data.
#[derive(Debug, Default, Clone)]
pub struct IoBus {
    channels: BTreeMap<u32, Channel>,
}

impl IoBus {
    /// Creates a bus with no channels; channels appear on first use.
    pub fn new() -> IoBus {
        IoBus::default()
    }

    /// Queues `bytes` as pending input on channel `fd`.
    pub fn feed_input(&mut self, fd: u32, bytes: &[u8]) {
        self.channels.entry(fd).or_default().input.extend_from_slice(bytes);
    }

    /// Consumes up to `buf.len()` queued input bytes from channel `fd`,
    /// returning how many were copied into `buf`.
    pub fn read(&mut self, fd: u32, buf: &mut [u8]) -> usize {
        let chan = self.channels.entry(fd).or_default();
        let n = buf.len().min(chan.input.len() - chan.read_pos);
        buf[..n].copy_from_slice(&chan.input[chan.read_pos..chan.read_pos + n]);
        chan.read_pos += n;
        n
    }

    /// Appends `bytes` to the output log of channel `fd`.
    pub fn write(&mut self, fd: u32, bytes: &[u8]) {
        self.channels.entry(fd).or_default().output.extend_from_slice(bytes);
    }

    /// The complete output written so far on channel `fd`.
    pub fn output(&self, fd: u32) -> &[u8] {
        self.channels
            .get(&fd)
            .map(|c| c.output.as_slice())
            .unwrap_or(&[])
    }

    /// Bytes still queued as input on channel `fd`.
    pub fn pending_input(&self, fd: u32) -> usize {
        self.channels
            .get(&fd)
            .map(|c| c.input.len() - c.read_pos)
            .unwrap_or(0)
    }

    /// All channels that have produced output, with their logs, in fd
    /// order. This is the machine's complete observable behaviour and the
    /// object compared by the observational-equivalence harness.
    pub fn observable(&self) -> Vec<(u32, Vec<u8>)> {
        self.channels
            .iter()
            .filter(|(_, c)| !c.output.is_empty())
            .map(|(&fd, c)| (fd, c.output.clone()))
            .collect()
    }

    /// Clears all queued input and recorded output.
    pub fn reset(&mut self) {
        self.channels.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_consumes_input_in_order() {
        let mut bus = IoBus::new();
        bus.feed_input(3, b"abcdef");
        let mut buf = [0u8; 4];
        assert_eq!(bus.read(3, &mut buf), 4);
        assert_eq!(&buf, b"abcd");
        assert_eq!(bus.read(3, &mut buf), 2);
        assert_eq!(&buf[..2], b"ef");
        assert_eq!(bus.read(3, &mut buf), 0);
    }

    #[test]
    fn short_read_on_empty_channel() {
        let mut bus = IoBus::new();
        let mut buf = [0u8; 8];
        assert_eq!(bus.read(0, &mut buf), 0);
    }

    #[test]
    fn writes_accumulate() {
        let mut bus = IoBus::new();
        bus.write(1, b"hello ");
        bus.write(1, b"world");
        assert_eq!(bus.output(1), b"hello world");
        assert_eq!(bus.output(2), b"");
    }

    #[test]
    fn observable_lists_only_channels_with_output() {
        let mut bus = IoBus::new();
        bus.feed_input(0, b"in");
        bus.write(2, b"two");
        bus.write(1, b"one");
        assert_eq!(
            bus.observable(),
            vec![(1, b"one".to_vec()), (2, b"two".to_vec())]
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut bus = IoBus::new();
        bus.feed_input(0, b"x");
        bus.write(1, b"y");
        bus.reset();
        assert_eq!(bus.pending_input(0), 0);
        assert_eq!(bus.output(1), b"");
    }
}
