//! The execution engine: register file, fetch/decode/execute loop,
//! faults, system calls and the optional hardware protections.
//!
//! Two protections live here because they are properties of the
//! *platform*, not of compiled code:
//!
//! * **shadow stack** — when enabled, `call` records the return address
//!   in protected hardware state and `ret` verifies it, a hardware
//!   control-flow-integrity mechanism that defeats return-address
//!   smashing and ROP;
//! * **protected-module access control** — when a
//!   [`policy::ProtectionMap`](crate::policy::ProtectionMap) is installed, every
//!   data access and control transfer is checked against the paper's
//!   three PMA rules.
//!
//! Data Execution Prevention is a property of [`Memory`] (page
//! permissions plus the enforcement switch).
//!
//! The fetch/decode/execute loop is accelerated by a two-way
//! set-associative **decoded-instruction cache** keyed on `ip` and
//! validated against the memory's code generation (see
//! [`mem`](crate::mem) and `DESIGN.md` §"VM performance model"); it is
//! semantically invisible and can be switched off per machine
//! ([`Machine::set_fast_path`]) or process-wide
//! ([`set_default_fast_path`]) for baseline measurements.
//!
//! Above it sits an optional second tier ([`tier`](crate::tier)):
//! hot straight-line regions are fused into superinstruction blocks
//! that execute as a tight micro-op loop with the per-instruction
//! dispatch ceremony hoisted out. Tier 2 is also semantically
//! invisible and has its own switches ([`Machine::set_tier2`],
//! [`set_default_tier2`]).
//!
//! # Examples
//!
//! ```
//! use swsec_vm::cpu::{Machine, RunOutcome};
//! use swsec_vm::isa::{Instr, Reg};
//! use swsec_vm::mem::Perm;
//!
//! let mut code = Vec::new();
//! Instr::MovI { dst: Reg::R0, imm: 42 }.encode(&mut code);
//! Instr::Sys(swsec_vm::isa::sys::EXIT).encode(&mut code);
//!
//! let mut m = Machine::new();
//! m.mem_mut().map(0x1000, 0x1000, Perm::RX)?;
//! m.mem_mut().poke_bytes(0x1000, &code)?;
//! m.set_ip(0x1000);
//! assert_eq!(m.run(100), RunOutcome::Halted(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use swsec_obs::{ControlKind, CoverageSink, EventMask, EventSink, FaultKind, PmaRule, SecurityEvent};

use crate::isa::{self, AluOp, Cond, DecodeError, Instr, Reg, NUM_REGS};
use crate::io::IoBus;
use crate::profile::Profiler;
use crate::mem::{Access, DataLine, MemError, MemErrorKind, Memory, PAGE_SIZE};
use crate::policy::{PmaViolation, PmaViolationKind, ProtectionMap, TransferKind};
use crate::tier::{IcProbe, IcPromotion, MicroOp, TierEngine, IC_NONE};
use crate::trace::{ExecStats, TraceEntry, TraceRing};

/// Total entries in the decoded-instruction cache. Organized as
/// [`ICACHE_SETS`] two-way sets: way 0 of set `s` is entry `2 * s`,
/// way 1 is entry `2 * s + 1`, most-recently-used kept in way 0.
const ICACHE_SLOTS: usize = 1024;

/// Number of two-way sets in the decoded-instruction cache. A power
/// of two so indexing is a mask of the low `ip` bits. Two ways per
/// set keep regions whose addresses alias in the low bits (program
/// text and a protected module, say) from thrashing a shared slot.
const ICACHE_SETS: usize = ICACHE_SLOTS / 2;

/// One decoded-instruction-cache line: the instruction decoded at `ip`
/// while the memory's global code generation was `gen` and the source
/// page (slot `slot`) had write generation `pgen`.
///
/// A hit requires both generations unchanged. The global generation
/// bumps on every wholesale invalidation — mapping, unmapping,
/// permission and enforcement changes — so a matching `gen` proves the
/// layout, the fill-time fetch permission, *and* the slot index are
/// all still valid; no per-hit page walk or permission check is
/// needed, only a direct `slot → write generation` load. A write —
/// including a snapshot restore's copy-back — bumps the written page's
/// generation, so self-modifying code (the classic code-corruption
/// attack) always sees its new bytes on the very next fetch while a
/// stack push leaves decodes from other pages valid.
#[derive(Clone, Copy)]
struct ICacheEntry {
    ip: u32,
    gen: u64,
    /// Slot index of the page `ip` lies in, at decode time.
    slot: u32,
    /// Slot index of the second page, for straddling encodings.
    slot2: u32,
    /// Write generation of the page `ip` lies in, at decode time.
    pgen: u64,
    /// Write generation of the second page, for straddling encodings.
    pgen2: u64,
    instr: Instr,
    len: u8,
    /// Whether the encoding crosses a page boundary (the second page's
    /// write generation is then validated on every hit too).
    straddles: bool,
}

/// A line that can never hit (code generations start at 1).
const ICACHE_EMPTY: ICacheEntry = ICacheEntry {
    ip: 0,
    gen: 0,
    slot: 0,
    slot2: 0,
    pgen: 0,
    pgen2: 0,
    instr: Instr::Nop,
    len: 1,
    straddles: false,
};

static DEFAULT_FAST_PATH: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for the interpreter fast path
/// (decoded-instruction cache + memory TLBs) that every subsequently
/// created [`Machine`] inherits. The fast path is semantically
/// invisible; this switch exists so benchmark baselines and
/// determinism tests can run whole campaigns with the caches off.
pub fn set_default_fast_path(on: bool) {
    DEFAULT_FAST_PATH.store(on, Ordering::Relaxed);
}

/// The current process-wide fast-path default (see
/// [`set_default_fast_path`]).
pub fn default_fast_path() -> bool {
    DEFAULT_FAST_PATH.load(Ordering::Relaxed)
}

static DEFAULT_TIER2: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for the tier-2 block engine (see
/// [`tier`](crate::tier)) that every subsequently created [`Machine`]
/// inherits. Tier 2 is semantically invisible; this switch exists so
/// benchmark baselines and determinism audits can compare whole
/// campaigns with and without it.
pub fn set_default_tier2(on: bool) {
    DEFAULT_TIER2.store(on, Ordering::Relaxed);
}

/// The current process-wide tier-2 default (see [`set_default_tier2`]).
pub fn default_tier2() -> bool {
    DEFAULT_TIER2.load(Ordering::Relaxed)
}

/// Comparison flags set by `cmp`/`cmpi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Operands were equal.
    pub zero: bool,
    /// First operand was less than the second, signed.
    pub lt: bool,
    /// First operand was less than the second, unsigned.
    pub ltu: bool,
}

impl Flags {
    /// Evaluates a jump condition against these flags.
    pub fn test(self, cond: Cond) -> bool {
        match cond {
            Cond::Z => self.zero,
            Cond::Nz => !self.zero,
            Cond::Lt => self.lt,
            Cond::Ge => !self.lt,
            Cond::Le => self.lt || self.zero,
            Cond::Gt => !(self.lt || self.zero),
            Cond::B => self.ltu,
            Cond::Ae => !self.ltu,
        }
    }
}

/// A condition that stopped execution abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A memory access faulted (unmapped page or permission denial —
    /// the latter is how DEP manifests).
    Mem(MemError),
    /// A protected-module access-control rule was violated.
    Pma(PmaViolation),
    /// The bytes at `addr` do not decode to an instruction.
    Decode {
        /// Address of the undecodable bytes.
        addr: u32,
        /// The decoder's complaint.
        err: DecodeError,
    },
    /// Division or remainder by zero.
    DivideByZero {
        /// Address of the faulting instruction.
        ip: u32,
    },
    /// A compiler-inserted defensive check fired (`trap` instruction);
    /// see [`isa::trap`] for the conventional codes.
    SoftwareTrap {
        /// The trap code.
        code: u8,
        /// Address of the trap instruction.
        ip: u32,
    },
    /// The hardware shadow stack observed a return address different
    /// from the one recorded at call time.
    ShadowStackMismatch {
        /// What the shadow stack recorded.
        expected: u32,
        /// What the data stack produced.
        got: u32,
    },
    /// `ret` executed with an empty shadow stack (return without call).
    ShadowStackUnderflow {
        /// Address of the `ret`.
        ip: u32,
    },
    /// `sys` with an unknown call number.
    UnknownSyscall {
        /// The unrecognized number.
        number: u8,
        /// Address of the `sys` instruction.
        ip: u32,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Mem(e) => write!(f, "memory fault: {e}"),
            Fault::Pma(e) => write!(f, "protected-module violation: {e}"),
            Fault::Decode { addr, err } => {
                write!(f, "illegal instruction at {addr:#010x}: {err}")
            }
            Fault::DivideByZero { ip } => write!(f, "division by zero at {ip:#010x}"),
            Fault::SoftwareTrap { code, ip } => {
                write!(f, "software trap {code} at {ip:#010x}")
            }
            Fault::ShadowStackMismatch { expected, got } => write!(
                f,
                "shadow stack mismatch: return to {got:#010x}, expected {expected:#010x}"
            ),
            Fault::ShadowStackUnderflow { ip } => {
                write!(f, "return without matching call at {ip:#010x}")
            }
            Fault::UnknownSyscall { number, ip } => {
                write!(f, "unknown syscall {number} at {ip:#010x}")
            }
        }
    }
}

impl std::error::Error for Fault {}

impl From<MemError> for Fault {
    fn from(e: MemError) -> Fault {
        Fault::Mem(e)
    }
}

impl From<PmaViolation> for Fault {
    fn from(e: PmaViolation) -> Fault {
        Fault::Pma(e)
    }
}

/// Result of one [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The instruction completed; execution may continue.
    Continue,
    /// The machine halted with the given exit code.
    Halted(u32),
    /// Execution stopped on a fault.
    Fault(Fault),
    /// A blocking `read` found no input; the instruction will retry
    /// once input arrives (see [`Machine::set_blocking_reads`]).
    Blocked {
        /// The channel being waited on.
        fd: u32,
    },
}

/// Result of a bounded [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program exited with this code.
    Halted(u32),
    /// Execution stopped on a fault.
    Fault(Fault),
    /// The fuel budget was exhausted before the program finished.
    OutOfFuel,
    /// A blocking `read` is waiting for input; feed the channel and run
    /// again (interactive server sessions).
    Blocked {
        /// The channel being waited on.
        fd: u32,
    },
}

impl RunOutcome {
    /// Whether the program ran to a normal exit.
    pub fn is_halted(self) -> bool {
        matches!(self, RunOutcome::Halted(_))
    }

    /// The fault, if execution faulted.
    pub fn fault(self) -> Option<Fault> {
        match self {
            RunOutcome::Fault(f) => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Halted(code) => write!(f, "halted with exit code {code}"),
            RunOutcome::Fault(fault) => write!(f, "faulted: {fault}"),
            RunOutcome::OutOfFuel => write!(f, "out of fuel"),
            RunOutcome::Blocked { fd } => write!(f, "blocked reading channel {fd}"),
        }
    }
}

/// The virtual machine: registers, memory, I/O and optional platform
/// protections.
pub struct Machine {
    regs: [u32; NUM_REGS],
    ip: u32,
    flags: Flags,
    mem: Memory,
    io: IoBus,
    pma: Option<ProtectionMap>,
    shadow_stack: Option<Vec<u32>>,
    halted: Option<u32>,
    stats: ExecStats,
    rng_state: u64,
    prev_ip: u32,
    pending_transfer: TransferKind,
    trace: Option<TraceRing>,
    blocking_reads: bool,
    icache: Box<[ICacheEntry]>,
    fast_path: bool,
    tier2: bool,
    /// Tier-2 block cache and hotness table; allocated lazily on the
    /// first eligible control transfer (`None` until then and while
    /// tier 2 is off).
    tier: Option<Box<TierEngine>>,
    /// Attached security-event sink, if any; `sink_mask` caches its
    /// interest mask so the hot path tests a single byte.
    sink: Option<Arc<dyn EventSink>>,
    sink_mask: EventMask,
    /// The sink, re-typed, when it is a [`CoverageSink`] attached via
    /// [`Machine::set_coverage`]: tier-2 blocks bump its edge map
    /// directly (no event construction, no dynamic dispatch) on
    /// control-transfer micro-ops, byte-identical to the event path.
    cov: Option<Arc<CoverageSink>>,
    /// Attached sampling profiler (see [`profile`](crate::profile)).
    prof: Option<Arc<Profiler>>,
    /// Retired instructions until the next profiler sample; `u64::MAX`
    /// when no profiler is attached or sampling is disabled, so the
    /// hot path is one decrement + never-taken branch with no `Option`
    /// check.
    prof_countdown: u64,
    /// Set by the word-access wrappers when a memory fault's address
    /// sits on a different page than the access base (a straddling
    /// access); consumed by fault-event classification.
    straddle_hint: bool,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("ip", &format_args!("{:#010x}", self.ip))
            .field("sp", &format_args!("{:#010x}", self.reg(Reg::Sp)))
            .field("bp", &format_args!("{:#010x}", self.reg(Reg::Bp)))
            .field("halted", &self.halted)
            .field("instructions", &self.stats.instructions)
            .finish()
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

impl Machine {
    /// Creates a machine with empty memory, zeroed registers, permission
    /// enforcement on and no platform protections.
    ///
    /// If a process-wide default event sink is installed
    /// ([`swsec_obs::set_default_sink`]), the new machine attaches it
    /// automatically, so telemetry captures events from machines
    /// created deep inside experiment code. Likewise a process-wide
    /// default profiler ([`crate::profile::set_default_profiler`]).
    ///
    /// Exception: on a quarantined thread — one a containment watchdog
    /// has abandoned, [`crate::counters::thread_quarantined`] — neither
    /// default is attached. A leaked attempt must not stream events or
    /// samples into whatever sink a *later* run has installed.
    pub fn new() -> Machine {
        let fast_path = default_fast_path();
        let mut mem = Memory::new();
        mem.set_fast_path(fast_path);
        let quarantined = crate::counters::thread_quarantined();
        let sink = if quarantined {
            None
        } else {
            swsec_obs::default_sink()
        };
        let sink_mask = sink
            .as_ref()
            .map(|s| s.interests())
            .unwrap_or(EventMask::NONE);
        let prof = if quarantined {
            None
        } else {
            crate::profile::default_profiler()
        };
        let prof_countdown = prof.as_ref().map_or(u64::MAX, |p| p.countdown_init());
        Machine {
            regs: [0; NUM_REGS],
            ip: 0,
            flags: Flags::default(),
            mem,
            io: IoBus::new(),
            pma: None,
            shadow_stack: None,
            halted: None,
            stats: ExecStats::default(),
            rng_state: 0x9E37_79B9_7F4A_7C15,
            prev_ip: 0,
            pending_transfer: TransferKind::Jump,
            trace: None,
            blocking_reads: false,
            icache: vec![ICACHE_EMPTY; ICACHE_SLOTS].into_boxed_slice(),
            fast_path,
            tier2: default_tier2(),
            tier: None,
            sink,
            sink_mask,
            cov: None,
            prof,
            prof_countdown,
            straddle_hint: false,
        }
    }

    /// Attaches (or with `None`, detaches) a security-event sink. The
    /// sink's [`interests`](EventSink::interests) mask is captured here,
    /// once; events outside it are never even constructed. Replaces any
    /// sink inherited from [`swsec_obs::set_default_sink`].
    pub fn set_event_sink(&mut self, sink: Option<Arc<dyn EventSink>>) {
        self.sink_mask = sink
            .as_ref()
            .map(|s| s.interests())
            .unwrap_or(EventMask::NONE);
        self.sink = sink;
        self.cov = None;
    }

    /// Attaches (or with `None`, detaches) a coverage sink with the
    /// devirtualized tier-2 path: the sink becomes the machine's event
    /// sink exactly as [`set_event_sink`](Machine::set_event_sink)
    /// would make it (tier-1 execution feeds it through the ordinary
    /// event stream), and tier-2 blocks additionally bump its edge map
    /// in place at control-transfer micro-ops instead of constructing
    /// `ControlTransfer` events. The accumulated
    /// [`CoverageMap`](swsec_obs::CoverageMap) is byte-identical
    /// either way — same slots, same counts, same fingerprint — so
    /// coverage-guided callers keep their novelty signal while
    /// running tier-2 engaged.
    pub fn set_coverage(&mut self, cov: Option<Arc<CoverageSink>>) {
        self.set_event_sink(cov.clone().map(|c| c as Arc<dyn EventSink>));
        self.cov = cov;
    }

    /// The directly-attached coverage sink, if any (see
    /// [`set_coverage`](Machine::set_coverage)).
    pub fn coverage(&self) -> Option<&Arc<CoverageSink>> {
        self.cov.as_ref()
    }

    /// Whether a security-event sink is attached.
    pub fn has_event_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Attaches (or with `None`, detaches) a sampling profiler (see
    /// [`profile`](crate::profile)), replacing any profiler inherited
    /// from [`crate::profile::set_default_profiler`], and re-arms the
    /// sample countdown — the next sample fires exactly `interval`
    /// retired instructions from here.
    pub fn set_profiler(&mut self, prof: Option<Arc<Profiler>>) {
        self.prof_countdown = prof.as_ref().map_or(u64::MAX, |p| p.countdown_init());
        self.prof = prof;
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&Arc<Profiler>> {
        self.prof.as_ref()
    }

    /// Enables or disables the interpreter fast path for this machine:
    /// the decoded-instruction cache and the memory TLBs. On by
    /// default (subject to [`set_default_fast_path`]); switching it
    /// off forces every fetch to decode from memory and every access
    /// through the page-table lookup. Program-visible behaviour is
    /// bit-for-bit identical either way — the switch exists for
    /// benchmark baselines and determinism audits.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
        self.mem.set_fast_path(on);
        self.icache.fill(ICACHE_EMPTY);
    }

    /// Whether the interpreter fast path is on.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Enables or disables the tier-2 block engine for this machine
    /// (see [`tier`](crate::tier)). On by default (subject to
    /// [`set_default_tier2`]); it only ever engages on top of the fast
    /// path, and machines with a PMA policy, tracing, or a per-step
    /// event sink never enter it. Program-visible behaviour is
    /// bit-for-bit identical either way — the switch exists for
    /// benchmark baselines and determinism audits. Switching it off
    /// discards all compiled blocks.
    pub fn set_tier2(&mut self, on: bool) {
        self.tier2 = on;
        if !on {
            self.tier = None;
        }
    }

    /// Whether the tier-2 block engine is enabled.
    pub fn tier2(&self) -> bool {
        self.tier2
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// The instruction pointer.
    pub fn ip(&self) -> u32 {
        self.ip
    }

    /// Sets the instruction pointer (counts as a jump for the PMA entry
    /// rule).
    pub fn set_ip(&mut self, ip: u32) {
        self.prev_ip = self.ip;
        self.ip = ip;
        self.pending_transfer = TransferKind::Jump;
    }

    /// The comparison flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Shared access to memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory (loader-level; no checks apply).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Shared access to the I/O bus.
    pub fn io(&self) -> &IoBus {
        &self.io
    }

    /// Mutable access to the I/O bus (to feed attacker input or inspect
    /// output).
    pub fn io_mut(&mut self) -> &mut IoBus {
        &mut self.io
    }

    /// Installs (or removes) the protected-module access-control map.
    pub fn set_protection(&mut self, pma: Option<ProtectionMap>) {
        self.pma = pma;
    }

    /// The installed protection map, if any.
    pub fn protection(&self) -> Option<&ProtectionMap> {
        self.pma.as_ref()
    }

    /// Enables or disables the hardware shadow stack.
    pub fn set_shadow_stack(&mut self, enabled: bool) {
        self.shadow_stack = if enabled { Some(Vec::new()) } else { None };
    }

    /// Whether the hardware shadow stack is enabled.
    pub fn shadow_stack_enabled(&self) -> bool {
        self.shadow_stack.is_some()
    }

    /// Makes `read` block (retry) when no input is queued, instead of
    /// returning 0 bytes — the behaviour of a server waiting on a
    /// connection, needed for interactive multi-request sessions.
    pub fn set_blocking_reads(&mut self, blocking: bool) {
        self.blocking_reads = blocking;
    }

    /// Seeds the machine's deterministic RNG (the `sys rand` source).
    pub fn seed_rng(&mut self, seed: u64) {
        self.rng_state = seed | 1;
    }

    /// Execution statistics accumulated so far, including the cache
    /// observability counters (icache from the CPU, TLB from memory).
    pub fn stats(&self) -> ExecStats {
        let mut s = self.stats;
        let tlb = self.mem.tlb_stats();
        s.tlb_hits = tlb.hits;
        s.tlb_misses = tlb.misses;
        s
    }

    /// Enables instruction tracing; entries accumulate in a bounded
    /// ring (default capacity
    /// [`DEFAULT_TRACE_CAPACITY`](crate::trace::DEFAULT_TRACE_CAPACITY)
    /// entries, oldest overwritten first) until [`Machine::take_trace`].
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace = if enabled { Some(TraceRing::new()) } else { None };
    }

    /// Enables instruction tracing into a ring bounded at `capacity`
    /// entries (min 1).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace = Some(TraceRing::with_capacity(capacity));
    }

    /// How many trace entries have been overwritten by the bounded ring
    /// since the last [`Machine::take_trace`] (0 when tracing is off).
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map(TraceRing::dropped).unwrap_or(0)
    }

    /// Removes and returns the accumulated instruction trace,
    /// oldest-first. When the bounded ring overflowed, these are the
    /// **most recent** entries (see [`Machine::trace_dropped`]).
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.trace.as_mut().map(TraceRing::take).unwrap_or_default()
    }

    /// The exit code, if the machine has halted.
    pub fn exit_code(&self) -> Option<u32> {
        self.halted
    }

    fn next_rand(&mut self) -> u32 {
        // xorshift64* — deterministic and seedable so experiments can be
        // reproduced bit-for-bit.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32
    }

    fn check_pma_data(&self, addr: u32) -> Result<(), Fault> {
        if let Some(pma) = &self.pma {
            pma.check_data(self.ip, addr)?;
        }
        Ok(())
    }

    /// Notes whether a data fault's address landed on a different page
    /// than the access base — a straddling multi-byte access, which
    /// fault-event classification reports as its own kind.
    #[cold]
    fn note_data_fault(&mut self, base: u32, e: MemError) -> Fault {
        self.straddle_hint = (e.addr ^ base) >= PAGE_SIZE;
        Fault::Mem(e)
    }

    fn load_u32(&mut self, addr: u32) -> Result<u32, Fault> {
        self.check_pma_data(addr)?;
        self.stats.mem_reads += 1;
        match self.mem.read_u32(addr, Access::Read) {
            Ok(v) => Ok(v),
            Err(e) => Err(self.note_data_fault(addr, e)),
        }
    }

    fn load_u8(&mut self, addr: u32) -> Result<u8, Fault> {
        self.check_pma_data(addr)?;
        self.stats.mem_reads += 1;
        match self.mem.read_u8(addr, Access::Read) {
            Ok(v) => Ok(v),
            Err(e) => Err(self.note_data_fault(addr, e)),
        }
    }

    fn store_u32(&mut self, addr: u32, value: u32) -> Result<(), Fault> {
        self.check_pma_data(addr)?;
        self.stats.mem_writes += 1;
        match self.mem.write_u32(addr, value, Access::Write) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.note_data_fault(addr, e)),
        }
    }

    fn store_u8(&mut self, addr: u32, value: u8) -> Result<(), Fault> {
        self.check_pma_data(addr)?;
        self.stats.mem_writes += 1;
        match self.mem.write_u8(addr, value, Access::Write) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.note_data_fault(addr, e)),
        }
    }

    /// Bulk equivalent of a `store_u8` loop, for syscall buffers when
    /// no PMA policy needs per-byte checks. Observably identical to the
    /// loop: each byte counts as one store, a fault lands on the first
    /// inaccessible byte (counting it, like the loop's pre-increment)
    /// with earlier bytes left written, and single-byte accesses never
    /// set the straddle hint.
    fn copy_in(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Fault> {
        match self.mem.write_bytes(addr, bytes, Access::Write) {
            Ok(()) => {
                self.stats.mem_writes += bytes.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.stats.mem_writes += u64::from(e.addr.wrapping_sub(addr)) + 1;
                self.straddle_hint = false;
                Err(Fault::Mem(e))
            }
        }
    }

    /// Bulk equivalent of a `load_u8` loop (see [`Self::copy_in`]).
    fn copy_out(&mut self, addr: u32, buf: &mut [u8]) -> Result<(), Fault> {
        match self.mem.read_bytes(addr, buf, Access::Read) {
            Ok(()) => {
                self.stats.mem_reads += buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.stats.mem_reads += u64::from(e.addr.wrapping_sub(addr)) + 1;
                self.straddle_hint = false;
                Err(Fault::Mem(e))
            }
        }
    }

    /// Delivers one event to the attached sink. Callers check
    /// `sink_mask` first, so unwanted events are never constructed.
    #[inline]
    fn emit(&self, event: SecurityEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// Classifies a fault into its security event and delivers it.
    /// Faults are terminal, so this path is cold by construction.
    #[cold]
    fn emit_fault(&mut self, fault: &Fault) {
        if self.sink_mask == EventMask::NONE {
            return;
        }
        let event = match *fault {
            Fault::Mem(e) => {
                let straddle = match e.access {
                    Access::Fetch => (e.addr ^ self.ip) >= PAGE_SIZE,
                    Access::Read | Access::Write => self.straddle_hint,
                };
                let kind = if straddle {
                    FaultKind::Straddle
                } else {
                    match (e.kind, e.access) {
                        (MemErrorKind::Unmapped, _) => FaultKind::Unmapped,
                        (MemErrorKind::Denied { .. }, Access::Fetch) => FaultKind::Dep,
                        (MemErrorKind::Denied { .. }, _) => FaultKind::Perm,
                    }
                };
                SecurityEvent::Fault {
                    kind,
                    ip: self.ip,
                    addr: e.addr,
                }
            }
            Fault::Pma(v) => SecurityEvent::PmaViolation {
                rule: match v.kind {
                    PmaViolationKind::OutsideDataAccess => PmaRule::OutsideDataAccess,
                    PmaViolationKind::BadEntry => PmaRule::BadEntry,
                },
                from: v.ip,
                to: v.addr,
            },
            Fault::Decode { addr, .. } => SecurityEvent::Fault {
                kind: FaultKind::Decode,
                ip: addr,
                addr,
            },
            Fault::DivideByZero { ip } => SecurityEvent::Fault {
                kind: FaultKind::DivZero,
                ip,
                addr: ip,
            },
            Fault::SoftwareTrap { code, ip } => {
                if code == isa::trap::CANARY {
                    SecurityEvent::CanaryTrip { ip }
                } else {
                    SecurityEvent::GuardCheck { code, ip }
                }
            }
            Fault::ShadowStackMismatch { got, .. } => SecurityEvent::Fault {
                kind: FaultKind::ShadowStack,
                ip: self.ip,
                addr: got,
            },
            Fault::ShadowStackUnderflow { ip } => SecurityEvent::Fault {
                kind: FaultKind::ShadowStack,
                ip,
                addr: ip,
            },
            Fault::UnknownSyscall { ip, .. } => SecurityEvent::Fault {
                kind: FaultKind::UnknownSyscall,
                ip,
                addr: ip,
            },
        };
        self.straddle_hint = false;
        if self.sink_mask.contains(event.mask_bit()) {
            self.emit(event);
        }
    }

    fn push(&mut self, value: u32) -> Result<(), Fault> {
        let sp = self.reg(Reg::Sp).wrapping_sub(4);
        self.set_reg(Reg::Sp, sp);
        self.store_u32(sp, value)
    }

    fn pop(&mut self) -> Result<u32, Fault> {
        let sp = self.reg(Reg::Sp);
        let value = self.load_u32(sp)?;
        self.set_reg(Reg::Sp, sp.wrapping_add(4));
        Ok(value)
    }

    // --- tier-2 block-local memory path ---------------------------
    // These mirror load_u32/store_u32/push/pop exactly, but serve
    // repeat accesses through a chain-local pair of [`DataLine`]s,
    // skipping the TLB probe. Two lines, not one, for the same reason
    // the tier-1 data TLB has two entries: dispatcher-shaped code
    // alternates every iteration between a data page (a jump table, a
    // buffer) and the stack page (call/ret traffic), and a single line
    // would refill through the page-table map twice per trip. The pair
    // is kept most-recently-used-first; a hit on the second line swaps
    // it forward, a refill displaces the older line. Only the block
    // loop may call these: tier-2 eligibility guarantees no PMA policy
    // is attached (so the skipped `check_pma_data` would be a no-op),
    // and micro-ops cannot remap, reprotect or restore memory, so a
    // filled line stays valid for the whole dispatch chain. Line
    // writes bump the page's write generation and dirty flag exactly
    // like `store_u32`, keeping SMC detection and snapshot dirty
    // tracking intact.

    #[inline]
    fn bc_load_u32(&mut self, line: &mut [DataLine; 2], addr: u32) -> Result<u32, Fault> {
        if line[0].serves_word(addr, false) {
            self.stats.mem_reads += 1;
            return Ok(self.mem.line_read_u32(line[0], addr));
        }
        if line[1].serves_word(addr, false) {
            line.swap(0, 1);
            self.stats.mem_reads += 1;
            return Ok(self.mem.line_read_u32(line[0], addr));
        }
        let v = self.load_u32(addr)?;
        if let Some(l) = self.mem.data_line(addr) {
            line[1] = line[0];
            line[0] = l;
        }
        Ok(v)
    }

    #[inline]
    fn bc_store_u32(&mut self, line: &mut [DataLine; 2], addr: u32, value: u32) -> Result<(), Fault> {
        if line[0].serves_word(addr, true) {
            self.stats.mem_writes += 1;
            self.mem.line_write_u32(line[0], addr, value);
            return Ok(());
        }
        if line[1].serves_word(addr, true) {
            line.swap(0, 1);
            self.stats.mem_writes += 1;
            self.mem.line_write_u32(line[0], addr, value);
            return Ok(());
        }
        self.store_u32(addr, value)?;
        if let Some(l) = self.mem.data_line(addr) {
            line[1] = line[0];
            line[0] = l;
        }
        Ok(())
    }

    #[inline]
    fn bc_load_u8(&mut self, line: &mut [DataLine; 2], addr: u32) -> Result<u8, Fault> {
        if line[0].serves_byte(addr, false) {
            self.stats.mem_reads += 1;
            return Ok(self.mem.line_read_u8(line[0], addr));
        }
        if line[1].serves_byte(addr, false) {
            line.swap(0, 1);
            self.stats.mem_reads += 1;
            return Ok(self.mem.line_read_u8(line[0], addr));
        }
        let v = self.load_u8(addr)?;
        if let Some(l) = self.mem.data_line(addr) {
            line[1] = line[0];
            line[0] = l;
        }
        Ok(v)
    }

    #[inline]
    fn bc_store_u8(&mut self, line: &mut [DataLine; 2], addr: u32, value: u8) -> Result<(), Fault> {
        if line[0].serves_byte(addr, true) {
            self.stats.mem_writes += 1;
            self.mem.line_write_u8(line[0], addr, value);
            return Ok(());
        }
        if line[1].serves_byte(addr, true) {
            line.swap(0, 1);
            self.stats.mem_writes += 1;
            self.mem.line_write_u8(line[0], addr, value);
            return Ok(());
        }
        self.store_u8(addr, value)?;
        if let Some(l) = self.mem.data_line(addr) {
            line[1] = line[0];
            line[0] = l;
        }
        Ok(())
    }

    #[inline]
    fn bc_push(&mut self, line: &mut [DataLine; 2], value: u32) -> Result<(), Fault> {
        let sp = self.reg(Reg::Sp).wrapping_sub(4);
        self.set_reg(Reg::Sp, sp);
        self.bc_store_u32(line, sp, value)
    }

    #[inline]
    fn bc_pop(&mut self, line: &mut [DataLine; 2]) -> Result<u32, Fault> {
        let sp = self.reg(Reg::Sp);
        let value = self.bc_load_u32(line, sp)?;
        self.set_reg(Reg::Sp, sp.wrapping_add(4));
        Ok(value)
    }

    /// Fetches the instruction at `ip`, consulting the decoded-
    /// instruction cache first. A line hits only while the memory's
    /// global code generation *and* the write generation of the page(s)
    /// it was decoded from are unchanged, so any write that could alter
    /// these bytes — self-modifying code, loader pokes, a snapshot
    /// restore, permission or mapping changes — forces a fresh decode,
    /// while writes to other pages leave the line valid. Fetch
    /// permission (DEP) needs no per-hit re-check: permission and
    /// enforcement changes bump the global generation, so a hit proves
    /// the fill-time check still stands (see [`ICacheEntry`]).
    fn fetch(&mut self) -> Result<(Instr, usize), Fault> {
        if !self.fast_path {
            return self.fetch_decode();
        }
        let gen = self.mem.code_generation();
        let way0 = ((self.ip as usize) & (ICACHE_SETS - 1)) * 2;
        // `gen` must match before the slot indices may be trusted: a
        // matching global generation means no map/unmap has happened
        // since the fill, so the slots still hold the same pages.
        let valid = |e: &ICacheEntry, ip: u32| {
            e.gen == gen
                && e.ip == ip
                && self.mem.slot_gen(e.slot) == e.pgen
                && (!e.straddles || self.mem.slot_gen(e.slot2) == e.pgen2)
        };
        let e = self.icache[way0];
        if valid(&e, self.ip) {
            self.stats.icache_hits += 1;
            return Ok((e.instr, usize::from(e.len)));
        }
        let e = self.icache[way0 + 1];
        if valid(&e, self.ip) {
            // Promote to way 0 so the set evicts least-recently-used.
            self.icache.swap(way0, way0 + 1);
            self.stats.icache_hits += 1;
            return Ok((e.instr, usize::from(e.len)));
        }
        self.stats.icache_misses += 1;
        let (instr, len) = self.fetch_decode()?;
        let last = self.ip.wrapping_add(len as u32 - 1);
        let straddles = (self.ip ^ last) >= PAGE_SIZE;
        let (slot, pgen) = self.mem.fetch_page(self.ip)?;
        let (slot2, pgen2) = if straddles {
            self.mem.fetch_page(last)?
        } else {
            (0, 0)
        };
        self.icache[way0 + 1] = self.icache[way0];
        self.icache[way0] = ICacheEntry {
            ip: self.ip,
            gen,
            slot,
            slot2,
            pgen,
            pgen2,
            instr,
            len: len as u8,
            straddles,
        };
        Ok((instr, len))
    }

    /// The uncached fetch path: read the encoding (one page resolution
    /// per page touched) and decode it.
    fn fetch_decode(&self) -> Result<(Instr, usize), Fault> {
        let first = self.mem.read_u8(self.ip, Access::Fetch)?;
        let len = isa::instr_len(first).ok_or(Fault::Decode {
            addr: self.ip,
            err: DecodeError::UnknownOpcode(first),
        })?;
        let mut buf = [0u8; isa::MAX_INSTR_LEN];
        buf[0] = first;
        if len > 1 {
            self.mem
                .read_bytes(self.ip.wrapping_add(1), &mut buf[1..len], Access::Fetch)?;
        }
        Instr::decode(&buf[..len]).map_err(|err| Fault::Decode { addr: self.ip, err })
    }

    fn transfer(&mut self, target: u32, kind: TransferKind) {
        self.prev_ip = self.ip;
        self.ip = target;
        self.pending_transfer = kind;
    }

    fn advance(&mut self, len: usize) {
        self.prev_ip = self.ip;
        self.ip = self.ip.wrapping_add(len as u32);
        self.pending_transfer = TransferKind::Sequential;
    }

    /// Largest syscall I/O transfer staged through a stack buffer;
    /// longer transfers fall back to a heap allocation.
    const SYS_STACK_BUF_LEN: usize = 256;

    fn syscall(&mut self, number: u8) -> Result<SysEffect, Fault> {
        self.stats.syscalls += 1;
        match number {
            isa::sys::EXIT => Ok(SysEffect::Halt(self.reg(Reg::R0))),
            isa::sys::READ => {
                let fd = self.reg(Reg::R0);
                let buf = self.reg(Reg::R1);
                let len = self.reg(Reg::R2);
                if self.blocking_reads && len > 0 && self.io.pending_input(fd) == 0 {
                    return Ok(SysEffect::Block(fd));
                }
                // Small transfers (every harness payload) stage through
                // the stack: per-attempt heap allocations are measurable
                // against the fork server's sub-microsecond budget.
                let mut stack = [0u8; Self::SYS_STACK_BUF_LEN];
                let mut heap = Vec::new();
                let tmp: &mut [u8] = if len as usize <= Self::SYS_STACK_BUF_LEN {
                    &mut stack[..len as usize]
                } else {
                    heap.resize(len as usize, 0);
                    &mut heap
                };
                let n = self.io.read(fd, tmp);
                if self.pma.is_none() {
                    self.copy_in(buf, &tmp[..n])?;
                } else {
                    // PMA policy is per-access: each byte must be
                    // checked against the instruction's module.
                    for (i, &b) in tmp[..n].iter().enumerate() {
                        self.store_u8(buf.wrapping_add(i as u32), b)?;
                    }
                }
                self.set_reg(Reg::R0, n as u32);
                Ok(SysEffect::Continue)
            }
            isa::sys::WRITE => {
                let fd = self.reg(Reg::R0);
                let buf = self.reg(Reg::R1);
                let len = self.reg(Reg::R2);
                let mut stack = [0u8; Self::SYS_STACK_BUF_LEN];
                let mut heap = Vec::new();
                let out: &mut [u8] = if len as usize <= Self::SYS_STACK_BUF_LEN {
                    &mut stack[..len as usize]
                } else {
                    heap.resize(len as usize, 0);
                    &mut heap
                };
                if self.pma.is_none() {
                    self.copy_out(buf, out)?;
                } else {
                    for (i, b) in out.iter_mut().enumerate() {
                        *b = self.load_u8(buf.wrapping_add(i as u32))?;
                    }
                }
                self.io.write(fd, out);
                self.set_reg(Reg::R0, len);
                Ok(SysEffect::Continue)
            }
            isa::sys::RAND => {
                let r = self.next_rand();
                self.set_reg(Reg::R0, r);
                Ok(SysEffect::Continue)
            }
            _ => Err(Fault::UnknownSyscall {
                number,
                ip: self.ip,
            }),
        }
    }

    fn alu(&mut self, op: AluOp, dst: Reg, src: Reg) -> Result<(), Fault> {
        let a = self.reg(dst);
        let b = self.reg(src);
        let result = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::DivU => {
                if b == 0 {
                    return Err(Fault::DivideByZero { ip: self.ip });
                }
                a / b
            }
            AluOp::DivS => {
                if b == 0 {
                    return Err(Fault::DivideByZero { ip: self.ip });
                }
                (a as i32).wrapping_div(b as i32) as u32
            }
            AluOp::ModU => {
                if b == 0 {
                    return Err(Fault::DivideByZero { ip: self.ip });
                }
                a % b
            }
            AluOp::ModS => {
                if b == 0 {
                    return Err(Fault::DivideByZero { ip: self.ip });
                }
                (a as i32).wrapping_rem(b as i32) as u32
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b),
            AluOp::Shr => a.wrapping_shr(b),
            AluOp::Sar => ((a as i32).wrapping_shr(b)) as u32,
        };
        self.set_reg(dst, result);
        Ok(())
    }

    fn set_cmp_flags(&mut self, a: u32, b: u32) {
        self.flags = Flags {
            zero: a == b,
            lt: (a as i32) < (b as i32),
            ltu: a < b,
        };
    }

    /// Executes one instruction.
    pub fn step(&mut self) -> StepResult {
        if let Some(code) = self.halted {
            return StepResult::Halted(code);
        }
        // PMA rule 2: entering a module's code requires an entry point.
        if let Some(pma) = &self.pma {
            if let Err(v) = pma.check_fetch(self.prev_ip, self.ip, self.pending_transfer) {
                let f = Fault::Pma(v);
                self.emit_fault(&f);
                return StepResult::Fault(f);
            }
        }
        let (instr, len) = match self.fetch() {
            Ok(pair) => pair,
            Err(f) => {
                self.emit_fault(&f);
                return StepResult::Fault(f);
            }
        };
        if self.sink_mask.contains(EventMask::STEP) {
            self.emit(SecurityEvent::Step { ip: self.ip });
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry { ip: self.ip, instr });
        }
        self.stats.instructions += 1;
        self.prof_countdown -= 1;
        if self.prof_countdown == 0 {
            self.prof_sample();
        }
        match self.exec(instr, len) {
            Ok(ExecOutcome::Continue) => StepResult::Continue,
            Ok(ExecOutcome::Halt(code)) => {
                self.halted = Some(code);
                StepResult::Halted(code)
            }
            Ok(ExecOutcome::Blocked(fd)) => StepResult::Blocked { fd },
            Err(f) => {
                self.emit_fault(&f);
                StepResult::Fault(f)
            }
        }
    }

    /// Takes one profiler sample at the current instruction (the one
    /// whose retirement drove the countdown to zero; `self.ip` still
    /// addresses it — `exec` has not advanced yet). Samples the PC plus
    /// a root-first call-stack walk: the shadow stack verbatim when the
    /// machine has one, otherwise a bounded scan of the saved-bp chain
    /// (`[bp+4]` return address, `[bp]` caller bp — the platform's
    /// activation-record shape). Deterministic: a pure function of the
    /// architectural state at a retired-instruction index.
    #[cold]
    #[inline(never)]
    fn prof_sample(&mut self) {
        let Some(prof) = self.prof.clone() else {
            // Unreachable in practice (the countdown is u64::MAX when
            // unattached), but re-arm defensively rather than sample.
            self.prof_countdown = u64::MAX;
            return;
        };
        self.prof_countdown = prof.countdown_init();
        let mut stack = match &self.shadow_stack {
            Some(shadow) => shadow.clone(),
            None => self.walk_bp_chain(),
        };
        stack.push(self.ip);
        crate::counters::note_prof_sample(stack.len() as u64);
        prof.record(&stack);
    }

    /// Return-address scan for machines without a shadow stack: follows
    /// the saved-bp chain root-ward, bounded in depth and by strictly
    /// increasing bp (the stack grows down, so every caller frame sits
    /// higher), and stops at the first unmapped or null link — `main`'s
    /// frame keeps the loader's bp of 0. Returns return addresses
    /// root-first, like the shadow stack.
    fn walk_bp_chain(&self) -> Vec<u32> {
        const MAX_FRAMES: usize = 64;
        let mut frames = Vec::new();
        let mut bp = self.reg(Reg::Bp);
        while frames.len() < MAX_FRAMES && bp != 0 {
            let Ok(ret) = self.mem.peek_u32(bp.wrapping_add(4)) else {
                break;
            };
            let Ok(saved_bp) = self.mem.peek_u32(bp) else {
                break;
            };
            if ret == 0 {
                break;
            }
            frames.push(ret);
            if saved_bp <= bp {
                break;
            }
            bp = saved_bp;
        }
        frames.reverse();
        frames
    }

    fn exec(&mut self, instr: Instr, len: usize) -> Result<ExecOutcome, Fault> {
        match instr {
            Instr::Nop => self.advance(len),
            Instr::Halt => {
                return Ok(ExecOutcome::Halt(0));
            }
            Instr::MovI { dst, imm } => {
                self.set_reg(dst, imm);
                self.advance(len);
            }
            Instr::Mov { dst, src } => {
                let v = self.reg(src);
                self.set_reg(dst, v);
                self.advance(len);
            }
            Instr::Load { dst, base, disp } => {
                let addr = self.reg(base).wrapping_add(disp as i32 as u32);
                let v = self.load_u32(addr)?;
                self.set_reg(dst, v);
                self.advance(len);
            }
            Instr::Store { base, disp, src } => {
                let addr = self.reg(base).wrapping_add(disp as i32 as u32);
                let v = self.reg(src);
                self.store_u32(addr, v)?;
                self.advance(len);
            }
            Instr::LoadB { dst, base, disp } => {
                let addr = self.reg(base).wrapping_add(disp as i32 as u32);
                let v = self.load_u8(addr)?;
                self.set_reg(dst, u32::from(v));
                self.advance(len);
            }
            Instr::StoreB { base, disp, src } => {
                let addr = self.reg(base).wrapping_add(disp as i32 as u32);
                let v = self.reg(src) as u8;
                self.store_u8(addr, v)?;
                self.advance(len);
            }
            Instr::Push(r) => {
                let v = self.reg(r);
                self.push(v)?;
                self.advance(len);
            }
            Instr::Pop(r) => {
                let v = self.pop()?;
                self.set_reg(r, v);
                self.advance(len);
            }
            Instr::PushI(imm) => {
                self.push(imm)?;
                self.advance(len);
            }
            Instr::Alu { op, dst, src } => {
                self.alu(op, dst, src)?;
                self.advance(len);
            }
            Instr::AddI { dst, imm } => {
                let v = self.reg(dst).wrapping_add(imm);
                self.set_reg(dst, v);
                self.advance(len);
            }
            Instr::Cmp { a, b } => {
                let (x, y) = (self.reg(a), self.reg(b));
                self.set_cmp_flags(x, y);
                self.advance(len);
            }
            Instr::CmpI { a, imm } => {
                let x = self.reg(a);
                self.set_cmp_flags(x, imm);
                self.advance(len);
            }
            Instr::Jmp(target) => self.transfer(target, TransferKind::Jump),
            Instr::JCond { cond, target } => {
                if self.flags.test(cond) {
                    self.transfer(target, TransferKind::Jump);
                } else {
                    self.advance(len);
                }
            }
            Instr::Call(target) => {
                let ret = self.ip.wrapping_add(len as u32);
                self.push(ret)?;
                if let Some(shadow) = &mut self.shadow_stack {
                    shadow.push(ret);
                }
                self.stats.calls += 1;
                if self.sink_mask.contains(EventMask::CONTROL) {
                    self.emit(SecurityEvent::ControlTransfer {
                        kind: ControlKind::Call,
                        from: self.ip,
                        to: target,
                    });
                }
                self.transfer(target, TransferKind::Call);
            }
            Instr::CallR(r) => {
                let target = self.reg(r);
                let ret = self.ip.wrapping_add(len as u32);
                self.push(ret)?;
                if let Some(shadow) = &mut self.shadow_stack {
                    shadow.push(ret);
                }
                self.stats.calls += 1;
                if self.sink_mask.contains(EventMask::CONTROL) {
                    self.emit(SecurityEvent::ControlTransfer {
                        kind: ControlKind::CallIndirect,
                        from: self.ip,
                        to: target,
                    });
                }
                self.transfer(target, TransferKind::Call);
            }
            Instr::Ret => {
                let target = self.pop()?;
                if let Some(shadow) = &mut self.shadow_stack {
                    match shadow.pop() {
                        None => {
                            return Err(Fault::ShadowStackUnderflow { ip: self.ip });
                        }
                        Some(expected) if expected != target => {
                            return Err(Fault::ShadowStackMismatch {
                                expected,
                                got: target,
                            });
                        }
                        Some(_) => {}
                    }
                }
                self.stats.rets += 1;
                if self.sink_mask.contains(EventMask::CONTROL) {
                    self.emit(SecurityEvent::ControlTransfer {
                        kind: ControlKind::Ret,
                        from: self.ip,
                        to: target,
                    });
                }
                self.transfer(target, TransferKind::Ret);
            }
            Instr::JmpR(r) => {
                let target = self.reg(r);
                if self.sink_mask.contains(EventMask::CONTROL) {
                    self.emit(SecurityEvent::ControlTransfer {
                        kind: ControlKind::JmpIndirect,
                        from: self.ip,
                        to: target,
                    });
                }
                self.transfer(target, TransferKind::Jump);
            }
            Instr::Enter(frame) => {
                let bp = self.reg(Reg::Bp);
                self.push(bp)?;
                let sp = self.reg(Reg::Sp);
                self.set_reg(Reg::Bp, sp);
                self.set_reg(Reg::Sp, sp.wrapping_sub(frame));
                self.advance(len);
            }
            Instr::Leave => {
                let bp = self.reg(Reg::Bp);
                self.set_reg(Reg::Sp, bp);
                let saved = self.pop()?;
                self.set_reg(Reg::Bp, saved);
                self.advance(len);
            }
            Instr::Sys(number) => {
                let effect = self.syscall(number)?;
                // A blocked read retries the same instruction; emit its
                // event only when the call actually completes.
                if !matches!(effect, SysEffect::Block(_))
                    && self.sink_mask.contains(EventMask::SYSCALL)
                {
                    self.emit(SecurityEvent::Syscall {
                        number,
                        ip: self.ip,
                    });
                }
                match effect {
                    SysEffect::Halt(code) => return Ok(ExecOutcome::Halt(code)),
                    SysEffect::Block(fd) => {
                        // Do not advance: the read retries on next step.
                        return Ok(ExecOutcome::Blocked(fd));
                    }
                    SysEffect::Continue => self.advance(len),
                }
            }
            Instr::Trap(code) => {
                return Err(Fault::SoftwareTrap { code, ip: self.ip });
            }
            Instr::Lea { dst, base, disp } => {
                let addr = self.reg(base).wrapping_add(disp as i32 as u32);
                self.set_reg(dst, addr);
                self.advance(len);
            }
        }
        Ok(ExecOutcome::Continue)
    }

    /// Runs up to `fuel` instructions. With blocking reads enabled, the
    /// run pauses (returning [`RunOutcome::Blocked`]) when input runs
    /// dry; feed the channel and call `run` again to resume.
    ///
    /// When the tier-2 block engine is eligible (see
    /// [`Machine::set_tier2`]), control-transfer targets are candidates
    /// for superinstruction blocks: hot ones are compiled and then
    /// served from the block cache, retiring many instructions per
    /// dispatch. Everything observable — outcomes, registers, memory,
    /// I/O, events, architectural stats, fuel accounting — is
    /// bit-for-bit identical to stepping.
    pub fn run(&mut self, fuel: u64) -> RunOutcome {
        let mut remaining = fuel;
        while remaining > 0 {
            // Blocks begin at control-transfer targets, so tier 2 is
            // only consulted when the last instruction transferred.
            if self.tier2
                && self.pending_transfer != TransferKind::Sequential
                && self.halted.is_none()
                && self.prof_countdown > 1
                && self.tier2_eligible()
            {
                // Clip the chain budget to the distance to the next
                // profiler sample: blocks attribute their retired
                // instructions in bulk at chain exit, and the sampled
                // instruction itself always retires in a tier-1 step —
                // exact PC and stack, with tier 2 still engaged between
                // samples. With no profiler the countdown is u64::MAX
                // and this clips nothing.
                let budget = remaining.min(self.prof_countdown - 1);
                if let Some((retired, fault)) = self.tier2_enter(budget) {
                    remaining -= retired;
                    self.prof_countdown -= retired;
                    if let Some(f) = fault {
                        self.emit_fault(&f);
                        return RunOutcome::Fault(f);
                    }
                    continue;
                }
            }
            match self.step() {
                StepResult::Continue => {}
                StepResult::Halted(code) => return RunOutcome::Halted(code),
                StepResult::Fault(f) => return RunOutcome::Fault(f),
                StepResult::Blocked { fd } => return RunOutcome::Blocked { fd },
            }
            remaining -= 1;
        }
        RunOutcome::OutOfFuel
    }

    /// Whether this machine may execute tier-2 blocks at all. PMA
    /// machines need the per-fetch entry-rule check, tracing needs a
    /// per-instruction ring push, and a sink interested in `Step`
    /// events needs one event per instruction — all of which the block
    /// loop hoists away — so those machines stay on tier 1, which is
    /// observably equivalent. (`ControlTransfer` interest needs no
    /// exclusion: the terminal call/ret/indirect-jump micro-ops emit
    /// the same events their tier-1 instructions would.)
    #[inline]
    fn tier2_eligible(&self) -> bool {
        self.fast_path
            && self.pma.is_none()
            && self.trace.is_none()
            && !self.sink_mask.contains(EventMask::STEP)
    }

    /// Tries to serve the current instruction pointer (a transfer
    /// target) from the tier-2 block cache, compiling a block if the
    /// target just crossed the hotness threshold. Returns `None` when
    /// no valid block exists (the caller steps normally), otherwise
    /// `(instructions retired, fault)` with at least one instruction
    /// retired and the machine left in the exact architectural state
    /// the equivalent `step` sequence would have produced.
    fn tier2_enter(&mut self, budget: u64) -> Option<(u64, Option<Fault>)> {
        // Move the engine out so the block borrow cannot alias the
        // machine state the micro-op loop mutates (a pointer move, not
        // a reallocation).
        let mut engine = match self.tier.take() {
            Some(engine) => engine,
            None => Box::new(TierEngine::new()),
        };
        let result = self.tier2_dispatch(&mut engine, budget);
        self.tier = Some(engine);
        result
    }

    fn tier2_dispatch(
        &mut self,
        engine: &mut TierEngine,
        budget: u64,
    ) -> Option<(u64, Option<Fault>)> {
        let mut total: u64 = 0;
        let mut chain_fault: Option<Fault> = None;
        // Two data translations shared by the whole chain: block loads
        // and stores cluster on at most a couple of pages (the stack
        // plus a data buffer or dispatch table), and nothing a micro-op
        // can do invalidates a resolved page.
        let mut line = [DataLine::INVALID; 2];
        // Block chaining: as long as each block ends in a transfer
        // whose target is itself compiled and still valid, keep
        // executing blocks back-to-back without surfacing to the run
        // loop. Every chained entry re-validates its block against the
        // current write generations (a store in block A must stop a
        // stale block B from running) and re-checks fuel, so the chain
        // is observably identical to dispatching each block alone.
        //
        // When the previous block exited through a dynamic-transfer
        // terminator, its inline cache predicts the next block: a hit
        // skips the lookup and hotness bookkeeping entirely (the
        // generation validation below still runs), a miss promotes the
        // observed target once the successor's slot is known. `self.ip`
        // here *is* the runtime-resolved target — for `ret`, the popped
        // (and shadow-stack-verified) return address — so predictions
        // are keyed on verified control flow, never on stale pointers.
        let mut pending_ic: Option<(usize, u32, u16)> = None;
        loop {
            let ip = self.ip;
            let gen = self.mem.code_generation();
            let mut promote: Option<(usize, u32, u16)> = None;
            let predicted = match pending_ic.take() {
                Some((from_slot, from_ip, ic)) => match engine.ic_probe(from_slot, from_ip, ic, ip) {
                    IcProbe::Hit(slot) => {
                        self.stats.tier2_ic_hits += 1;
                        Some(slot)
                    }
                    IcProbe::Miss => {
                        self.stats.tier2_ic_misses += 1;
                        promote = Some((from_slot, from_ip, ic));
                        None
                    }
                    IcProbe::Mega => None,
                },
                None => None,
            };
            let slot = match predicted {
                Some(slot) => slot,
                None => match engine.lookup_slot(ip) {
                    Some(slot) => slot,
                    None => {
                        if !engine.note_hot(ip) || !engine.compile_into(&self.mem, ip) {
                            break;
                        }
                        self.stats.tier2_compiled += 1;
                        engine.lookup_slot(ip).expect("block just compiled")
                    }
                },
            };
            let valid = {
                let b = engine.block(slot);
                b.gen == gen && b.pages_valid(&self.mem)
            };
            if !valid {
                // Stale block: drop it and make the region prove
                // itself hot again before recompiling, so an
                // SMC-heavy region cannot thrash the compiler. Any
                // inline-cache entries predicting it fail their
                // live-successor check from here on and miss.
                self.stats.tier2_invalidations += 1;
                engine.invalidate(ip);
                break;
            }
            if let Some((from_slot, from_ip, ic)) = promote {
                match engine.ic_promote(from_slot, from_ip, ic, ip, slot) {
                    IcPromotion::Installed => self.stats.tier2_ic_installs += 1,
                    IcPromotion::Megamorphic => self.stats.tier2_ic_megamorphic += 1,
                    IcPromotion::Skipped => {}
                }
            }
            if u64::from(engine.block(slot).ops[0].n) > budget - total {
                // Not enough fuel for the leading superinstruction: the
                // remaining budget is served one stepped instruction at
                // a time, exactly as tier 1 would.
                break;
            }
            self.stats.tier2_hits += 1;
            let (retired, fault, exit_ic, end_slot) =
                self.exec_block(engine, slot, budget - total, &mut line);
            total += retired;
            if fault.is_some() {
                chain_fault = fault;
                break;
            }
            // A sequential pending transfer means the block side-exited
            // into stepped code (SMC patch or mid-block stall); the
            // step loop must serve the next instruction.
            if total == budget || self.pending_transfer == TransferKind::Sequential {
                break;
            }
            if exit_ic != IC_NONE {
                pending_ic = Some((end_slot, engine.block(end_slot).start_ip, exit_ic));
            }
        }
        if total == 0 {
            return None;
        }
        // Fold the chain's retired instructions into the counters the
        // tier-1 loop would have produced; block-served instructions
        // count as icache hits (their decodes came from cached state).
        self.stats.instructions += total;
        self.stats.icache_hits += total;
        self.stats.tier2_instructions += total;
        Some((total, chain_fault))
    }

    /// Executes the validated block in `slot`, chaining through
    /// inline-cache hits. Returns `(instructions retired, fault,
    /// exit ic, end slot)`; `retired` never exceeds `budget` (which is
    /// ≥ 1), and `exit ic` is the inline-cache index of the dynamic
    /// transfer terminator the *last* block (`end slot`) exited
    /// through ([`IC_NONE`] on every other exit path), so the
    /// dispatcher can probe and promote that cache against the
    /// runtime-resolved target now in `self.ip`.
    ///
    /// When a dynamic terminator's inline cache predicts the observed
    /// target, execution switches straight into the successor block —
    /// no dispatcher round trip — after re-validating the successor
    /// against the current write generations and remaining fuel, so
    /// the hand-off is observably identical to a dispatch. A miss (or
    /// a failed re-validation) exits normally and lets the dispatcher
    /// count, promote or invalidate.
    ///
    /// The contract is exact equivalence with the `step` loop: every
    /// micro-op reproduces its instruction's execution effects
    /// (including fault identity and order), and on any exit —
    /// natural end, taken jump, exhausted budget, self-modifying
    /// store, fault — `ip`, `prev_ip` and `pending_transfer` hold
    /// precisely what stepping would have left, so the next `step` or
    /// block entry continues indistinguishably.
    fn exec_block(
        &mut self,
        engine: &TierEngine,
        mut slot: usize,
        budget: u64,
        line: &mut [DataLine; 2],
    ) -> (u64, Option<Fault>, u16, usize) {
        debug_assert_eq!(self.ip, engine.block(slot).start_ip);
        debug_assert!(u64::from(engine.block(slot).ops[0].n) <= budget);
        debug_assert!(self.pma.is_none());
        let mut executed: u64 = 0;
        let mut fault: Option<Fault> = None;
        #[allow(unused_assignments)] // re-initialized at each chain entry
        let mut exit_ic: u16 = IC_NONE;
        'chain: loop {
        let block = engine.block(slot);
        let ops = &block.ops[..];
        let start_ip = block.start_ip;
        let pages = &block.pages[..usize::from(block.npages)];
        let mut i = 0usize;
        // How op 0 was most recently entered: `None` means the
        // machine's own (prev_ip, pending_transfer) still describe it;
        // `Some(ip)` means an in-block backedge jumped from `ip`.
        let mut backedge_from: Option<u32> = None;
        // Exit state for the terminal/natural exits, installed after
        // the loop (the initial values are never read: every such
        // break assigns all three).
        let mut exit_prev: u32 = 0;
        let mut exit_ip: u32 = 0;
        let mut exit_kind = TransferKind::Sequential;
        // Inline-cache index of the dynamic terminator the block exits
        // through; IC_NONE on stall/fault/side-exit and static exits.
        exit_ic = IC_NONE;
        let mut side_exit = false;
        // Fuel ran out at op `i` *before* executing it (a fused op may
        // retire more instructions than the budget has left).
        let mut stall = false;

        'blk: loop {
            let op = ops[i];
            if executed + u64::from(op.n) > budget {
                // Stop exactly where stepping would have: at this op,
                // unexecuted. The dispatcher guarantees op 0 fits, so
                // a stall always has history to reconstruct from.
                stall = true;
                break 'blk;
            }
            executed += u64::from(op.n);
            match op.kind {
                MicroOp::Nop => {}
                MicroOp::MovI { dst, imm } => self.regs[usize::from(dst)] = imm,
                MicroOp::Mov { dst, src } => {
                    self.regs[usize::from(dst)] = self.regs[usize::from(src)];
                }
                MicroOp::Load { dst, base, disp } => {
                    let addr = self.regs[usize::from(base)].wrapping_add(disp);
                    match self.bc_load_u32(line, addr) {
                        Ok(v) => self.regs[usize::from(dst)] = v,
                        Err(f) => {
                            self.ip = op.ip;
                            fault = Some(f);
                            break 'blk;
                        }
                    }
                }
                MicroOp::Store { base, disp, src } => {
                    let addr = self.regs[usize::from(base)].wrapping_add(disp);
                    let v = self.regs[usize::from(src)];
                    if let Err(f) = self.bc_store_u32(line, addr, v) {
                        self.ip = op.ip;
                        fault = Some(f);
                        break 'blk;
                    }
                }
                MicroOp::LoadB { dst, base, disp } => {
                    let addr = self.regs[usize::from(base)].wrapping_add(disp);
                    match self.bc_load_u8(line, addr) {
                        Ok(v) => self.regs[usize::from(dst)] = u32::from(v),
                        Err(f) => {
                            self.ip = op.ip;
                            fault = Some(f);
                            break 'blk;
                        }
                    }
                }
                MicroOp::StoreB { base, disp, src } => {
                    let addr = self.regs[usize::from(base)].wrapping_add(disp);
                    let v = self.regs[usize::from(src)] as u8;
                    if let Err(f) = self.bc_store_u8(line, addr, v) {
                        self.ip = op.ip;
                        fault = Some(f);
                        break 'blk;
                    }
                }
                MicroOp::Push { src } => {
                    let v = self.regs[usize::from(src)];
                    if let Err(f) = self.bc_push(line, v) {
                        self.ip = op.ip;
                        fault = Some(f);
                        break 'blk;
                    }
                }
                MicroOp::Pop { dst } => match self.bc_pop(line) {
                    Ok(v) => self.regs[usize::from(dst)] = v,
                    Err(f) => {
                        self.ip = op.ip;
                        fault = Some(f);
                        break 'blk;
                    }
                },
                MicroOp::PushI { imm } => {
                    if let Err(f) = self.bc_push(line, imm) {
                        self.ip = op.ip;
                        fault = Some(f);
                        break 'blk;
                    }
                }
                MicroOp::Alu { op: alu_op, dst, src } => {
                    let (d, s) = (usize::from(dst), usize::from(src));
                    let (a, b) = (self.regs[d], self.regs[s]);
                    // Mirrors `Machine::alu`, on pre-resolved indices.
                    let result = match alu_op {
                        AluOp::Add => a.wrapping_add(b),
                        AluOp::Sub => a.wrapping_sub(b),
                        AluOp::Mul => a.wrapping_mul(b),
                        AluOp::DivU | AluOp::DivS | AluOp::ModU | AluOp::ModS if b == 0 => {
                            self.ip = op.ip;
                            fault = Some(Fault::DivideByZero { ip: op.ip });
                            break 'blk;
                        }
                        AluOp::DivU => a / b,
                        AluOp::DivS => (a as i32).wrapping_div(b as i32) as u32,
                        AluOp::ModU => a % b,
                        AluOp::ModS => (a as i32).wrapping_rem(b as i32) as u32,
                        AluOp::And => a & b,
                        AluOp::Or => a | b,
                        AluOp::Xor => a ^ b,
                        AluOp::Shl => a.wrapping_shl(b),
                        AluOp::Shr => a.wrapping_shr(b),
                        AluOp::Sar => ((a as i32).wrapping_shr(b)) as u32,
                    };
                    self.regs[d] = result;
                }
                MicroOp::AddI { dst, imm } => {
                    let d = usize::from(dst);
                    self.regs[d] = self.regs[d].wrapping_add(imm);
                }
                MicroOp::Cmp { a, b } => {
                    let (x, y) = (self.regs[usize::from(a)], self.regs[usize::from(b)]);
                    self.set_cmp_flags(x, y);
                }
                MicroOp::CmpI { a, imm } => {
                    let x = self.regs[usize::from(a)];
                    self.set_cmp_flags(x, imm);
                }
                MicroOp::Lea { dst, base, disp } => {
                    self.regs[usize::from(dst)] =
                        self.regs[usize::from(base)].wrapping_add(disp);
                }
                MicroOp::Enter { frame } => {
                    let bp = self.reg(Reg::Bp);
                    if let Err(f) = self.bc_push(line, bp) {
                        self.ip = op.ip;
                        fault = Some(f);
                        break 'blk;
                    }
                    let sp = self.reg(Reg::Sp);
                    self.set_reg(Reg::Bp, sp);
                    self.set_reg(Reg::Sp, sp.wrapping_sub(frame));
                }
                MicroOp::Leave => {
                    let bp = self.reg(Reg::Bp);
                    self.set_reg(Reg::Sp, bp);
                    match self.bc_pop(line) {
                        Ok(v) => self.set_reg(Reg::Bp, v),
                        Err(f) => {
                            self.ip = op.ip;
                            fault = Some(f);
                            break 'blk;
                        }
                    }
                }
                MicroOp::Jmp { target } => {
                    if target == start_ip {
                        // The tight-loop superinstruction: a backward
                        // jump to the block's own head stays in-block
                        // (the loop-top fuel check bounds it).
                        backedge_from = Some(op.ip);
                        i = 0;
                        continue 'blk;
                    }
                    exit_prev = op.ip;
                    exit_ip = target;
                    exit_kind = TransferKind::Jump;
                    break 'blk;
                }
                MicroOp::JCond { cond, target } => {
                    if self.flags.test(cond) {
                        if target == start_ip {
                            backedge_from = Some(op.ip);
                            i = 0;
                            continue 'blk;
                        }
                        exit_prev = op.ip;
                        exit_ip = target;
                        exit_kind = TransferKind::Jump;
                        break 'blk;
                    }
                }
                MicroOp::Call { target } => {
                    let ret = op.next_ip;
                    if let Err(f) = self.bc_push(line, ret) {
                        self.ip = op.ip;
                        fault = Some(f);
                        break 'blk;
                    }
                    if let Some(shadow) = &mut self.shadow_stack {
                        shadow.push(ret);
                    }
                    self.stats.calls += 1;
                    if self.sink_mask.contains(EventMask::CONTROL) {
                        // A directly-attached coverage sink takes the
                        // devirtualized path: the edge is static, so
                        // its map slot was pre-resolved at compile
                        // time — same slot, same count as the event.
                        match &self.cov {
                            Some(cov) => cov.bump_slot(usize::from(op.cov_slot)),
                            None => self.emit(SecurityEvent::ControlTransfer {
                                kind: ControlKind::Call,
                                from: op.ip,
                                to: target,
                            }),
                        }
                    }
                    if !op.linked() {
                        exit_prev = op.ip;
                        exit_ip = target;
                        exit_kind = TransferKind::Call;
                        break 'blk;
                    }
                    // Linked call: the next op is the callee's first
                    // instruction — fall through (the SMC check below
                    // still guards the pushed return address).
                }
                MicroOp::CallR { src } => {
                    let target = self.regs[usize::from(src)];
                    let ret = op.next_ip;
                    if let Err(f) = self.bc_push(line, ret) {
                        self.ip = op.ip;
                        fault = Some(f);
                        break 'blk;
                    }
                    if let Some(shadow) = &mut self.shadow_stack {
                        shadow.push(ret);
                    }
                    self.stats.calls += 1;
                    if self.sink_mask.contains(EventMask::CONTROL) {
                        match &self.cov {
                            Some(cov) => {
                                cov.bump_edge(ControlKind::CallIndirect as u8, op.ip, target)
                            }
                            None => self.emit(SecurityEvent::ControlTransfer {
                                kind: ControlKind::CallIndirect,
                                from: op.ip,
                                to: target,
                            }),
                        }
                    }
                    exit_prev = op.ip;
                    exit_ip = target;
                    exit_kind = TransferKind::Call;
                    exit_ic = op.ic;
                    break 'blk;
                }
                MicroOp::Ret => {
                    let target = match self.bc_pop(line) {
                        Ok(v) => v,
                        Err(f) => {
                            self.ip = op.ip;
                            fault = Some(f);
                            break 'blk;
                        }
                    };
                    if let Some(shadow) = &mut self.shadow_stack {
                        match shadow.pop() {
                            None => {
                                self.ip = op.ip;
                                fault = Some(Fault::ShadowStackUnderflow { ip: op.ip });
                                break 'blk;
                            }
                            Some(expected) if expected != target => {
                                self.ip = op.ip;
                                fault = Some(Fault::ShadowStackMismatch {
                                    expected,
                                    got: target,
                                });
                                break 'blk;
                            }
                            Some(_) => {}
                        }
                    }
                    self.stats.rets += 1;
                    if self.sink_mask.contains(EventMask::CONTROL) {
                        match &self.cov {
                            Some(cov) => cov.bump_edge(ControlKind::Ret as u8, op.ip, target),
                            None => self.emit(SecurityEvent::ControlTransfer {
                                kind: ControlKind::Ret,
                                from: op.ip,
                                to: target,
                            }),
                        }
                    }
                    if !op.linked() || target != op.cont_ip {
                        // An unlinked ret reports its inline cache,
                        // keyed downstream on `target` — the popped,
                        // shadow-stack-verified return address. The
                        // linked-ret mismatch path (a smashed return)
                        // carries IC_NONE: it exits unpredicted.
                        exit_prev = op.ip;
                        exit_ip = target;
                        exit_kind = TransferKind::Ret;
                        exit_ic = op.ic;
                        break 'blk;
                    }
                    // Linked return: the popped target equals the
                    // matching in-block call's return site, which is
                    // the next op — keep running in-block. A return
                    // address the program (or an attacker) rewrote
                    // fails the compare above and exits with the
                    // actual target pending, exactly like stepping.
                }
                MicroOp::JmpR { src } => {
                    let target = self.regs[usize::from(src)];
                    if self.sink_mask.contains(EventMask::CONTROL) {
                        match &self.cov {
                            Some(cov) => {
                                cov.bump_edge(ControlKind::JmpIndirect as u8, op.ip, target)
                            }
                            None => self.emit(SecurityEvent::ControlTransfer {
                                kind: ControlKind::JmpIndirect,
                                from: op.ip,
                                to: target,
                            }),
                        }
                    }
                    exit_prev = op.ip;
                    exit_ip = target;
                    exit_kind = TransferKind::Jump;
                    exit_ic = op.ic;
                    break 'blk;
                }
                MicroOp::FusedLoopI { dst, add_imm, a, cmp_imm, cond, target } => {
                    let d = usize::from(dst);
                    self.regs[d] = self.regs[d].wrapping_add(add_imm);
                    let x = self.regs[usize::from(a)];
                    self.set_cmp_flags(x, cmp_imm);
                    if self.flags.test(cond) {
                        if target == start_ip {
                            if ops.len() == 1 && usize::from(a) == d {
                                // The whole block is this one
                                // superinstruction branching to itself:
                                // iterate in place. Intermediate
                                // register/flag states are unobservable
                                // (no faults, no events, no memory), so
                                // only the per-pass fuel accounting and
                                // the final state need to be
                                // architectural.
                                let n = u64::from(op.n);
                                let v1 = self.regs[d];
                                if cond == Cond::Nz && (add_imm == 1 || add_imm == u32::MAX) {
                                    // Counted ±1 loop: the remaining
                                    // trip count is closed-form. v1 !=
                                    // cmp_imm here (the branch was
                                    // taken), so `left` is in
                                    // [1, 2^32-1].
                                    let left = u64::from(if add_imm == 1 {
                                        cmp_imm.wrapping_sub(v1)
                                    } else {
                                        v1.wrapping_sub(cmp_imm)
                                    });
                                    let by_fuel = (budget - executed) / n;
                                    if left <= by_fuel {
                                        executed += left * n;
                                        self.regs[d] = cmp_imm;
                                        self.set_cmp_flags(cmp_imm, cmp_imm);
                                        // Falls through to the
                                        // sequential completion below.
                                    } else {
                                        let k = by_fuel as u32;
                                        let v = if add_imm == 1 {
                                            v1.wrapping_add(k)
                                        } else {
                                            v1.wrapping_sub(k)
                                        };
                                        executed += by_fuel * n;
                                        self.regs[d] = v;
                                        self.set_cmp_flags(v, cmp_imm);
                                        backedge_from = Some(op.last_ip);
                                        i = 0;
                                        stall = true;
                                        break 'blk;
                                    }
                                } else {
                                    loop {
                                        if executed + n > budget {
                                            backedge_from = Some(op.last_ip);
                                            i = 0;
                                            stall = true;
                                            break 'blk;
                                        }
                                        executed += n;
                                        let v = self.regs[d].wrapping_add(add_imm);
                                        self.regs[d] = v;
                                        self.set_cmp_flags(v, cmp_imm);
                                        if !self.flags.test(cond) {
                                            // Falls through to the
                                            // sequential completion
                                            // below.
                                            break;
                                        }
                                    }
                                }
                            } else {
                                backedge_from = Some(op.last_ip);
                                i = 0;
                                continue 'blk;
                            }
                        } else {
                            exit_prev = op.last_ip;
                            exit_ip = target;
                            exit_kind = TransferKind::Jump;
                            break 'blk;
                        }
                    }
                }
                MicroOp::FusedCmpIJ { a, imm, cond, target } => {
                    let x = self.regs[usize::from(a)];
                    self.set_cmp_flags(x, imm);
                    if self.flags.test(cond) {
                        if target == start_ip {
                            backedge_from = Some(op.last_ip);
                            i = 0;
                            continue 'blk;
                        }
                        exit_prev = op.last_ip;
                        exit_ip = target;
                        exit_kind = TransferKind::Jump;
                        break 'blk;
                    }
                }
                MicroOp::FusedCmpJ { a, b, cond, target } => {
                    let (x, y) = (self.regs[usize::from(a)], self.regs[usize::from(b)]);
                    self.set_cmp_flags(x, y);
                    if self.flags.test(cond) {
                        if target == start_ip {
                            backedge_from = Some(op.last_ip);
                            i = 0;
                            continue 'blk;
                        }
                        exit_prev = op.last_ip;
                        exit_ip = target;
                        exit_kind = TransferKind::Jump;
                        break 'blk;
                    }
                }
            }
            // Completion of op `i` without an exit. A memory-writing op
            // may have patched the block's own encodings (self-
            // modifying code); nothing decoded from these pages may run
            // past it. The continuation fields make this exact even
            // after a linked call (exit lands at the callee with the
            // call pending).
            if op.kind.writes_memory() && !self.mem.page_gens_valid(pages) {
                exit_prev = op.last_ip;
                exit_ip = op.cont_ip;
                exit_kind = op.cont_kind;
                side_exit = true;
                break 'blk;
            }
            i += 1;
            if i == ops.len() {
                exit_prev = op.last_ip;
                exit_ip = op.cont_ip;
                exit_kind = op.cont_kind;
                break 'blk;
            }
        }

        if fault.is_some() || stall {
            // A fault arm already pointed `self.ip` at the faulting
            // instruction; a stall stops *at* op `i`, unexecuted.
            // Either way, restore the (prev_ip, pending_transfer) the
            // op's tier-1 step would have seen on entry.
            if stall {
                self.ip = ops[i].ip;
            }
            if i > 0 {
                self.prev_ip = ops[i - 1].last_ip;
                self.pending_transfer = ops[i - 1].cont_kind;
            } else if let Some(from) = backedge_from {
                self.prev_ip = from;
                self.pending_transfer = TransferKind::Jump;
            }
            // First entry to op 0: the machine's own state already
            // describes it — leave it untouched.
            side_exit = true;
        } else {
            self.prev_ip = exit_prev;
            self.ip = exit_ip;
            self.pending_transfer = exit_kind;
        }
        // Instruction counters are folded once per dispatch chain (see
        // `tier2_dispatch`); only the rare side-exit counter is
        // per-block.
        if side_exit {
            self.stats.tier2_side_exits += 1;
        }
        if fault.is_some() || stall {
            break 'chain;
        }
        // Chain straight into the successor block when the exit names
        // one — no dispatcher round trip. A dynamic terminator chains
        // through its inline cache (a hit is the prediction paying
        // off); a clean static transfer chains through a plain block-
        // cache lookup. Either way the exit state above is already
        // installed, and the successor is re-validated against the
        // current write generations and the remaining fuel exactly as
        // the dispatcher would, so the hand-off is observably a
        // dispatch. Anything else — an IC miss (the dispatcher must
        // count and promote it), a side exit, a stale or missing
        // successor — falls through to a normal exit and the
        // dispatcher's slow path.
        let next = if side_exit || exit_kind == TransferKind::Sequential {
            None
        } else if exit_ic != IC_NONE {
            match engine.ic_probe(slot, start_ip, exit_ic, self.ip) {
                IcProbe::Hit(n) => Some((n, true)),
                IcProbe::Mega => engine.lookup_slot(self.ip).map(|n| (n, false)),
                IcProbe::Miss => None,
            }
        } else {
            engine.lookup_slot(self.ip).map(|n| (n, false))
        };
        if let Some((next, predicted)) = next {
            let nb = engine.block(next);
            if nb.gen == self.mem.code_generation()
                && nb.pages_valid(&self.mem)
                && u64::from(nb.ops[0].n) <= budget - executed
            {
                if predicted {
                    self.stats.tier2_ic_hits += 1;
                }
                self.stats.tier2_hits += 1;
                slot = next;
                continue 'chain;
            }
        }
        break 'chain;
        }
        (executed, fault, exit_ic, slot)
    }

    /// Captures the complete architectural state of the machine —
    /// registers, flags, memory (refcounted page images), I/O queues
    /// and logs, platform protections (PMA map, shadow stack), RNG
    /// state and run status — into a [`MachineSnapshot`] that
    /// [`restore_from`](Machine::restore_from) can rewind to in
    /// O(dirty pages).
    ///
    /// Deliberately **not** captured, because they are observers or
    /// tuning knobs rather than machine state: the attached event sink,
    /// the trace ring, accumulated [`ExecStats`], the fast-path switch,
    /// and the tier-2 engine (compiled blocks are re-validated against
    /// page write generations on every entry, so a restore that
    /// changed code pages makes the stale blocks unusable
    /// automatically). A restore leaves the current sink and fast-path
    /// setting
    /// in place and resets the per-run stats, so a restored run is
    /// *architecturally* indistinguishable from a freshly built machine
    /// in the same configuration — same outcomes, registers, memory,
    /// I/O and instruction-level counters. The cache counters are the
    /// deliberate exception: decodes and translations for pages the
    /// restore did not have to copy stay warm, so a restored run is
    /// faster than a fresh build. (Cache counters are excluded from
    /// rendered reports precisely so accelerator state can never leak
    /// into experiment output.)
    pub fn snapshot(&mut self) -> MachineSnapshot {
        crate::counters::note_snapshot();
        MachineSnapshot {
            regs: self.regs,
            ip: self.ip,
            flags: self.flags,
            mem: self.mem.snapshot(),
            io: self.io.clone(),
            pma: self.pma.clone(),
            shadow_stack: self.shadow_stack.clone(),
            halted: self.halted,
            rng_state: self.rng_state,
            prev_ip: self.prev_ip,
            pending_transfer: self.pending_transfer,
            blocking_reads: self.blocking_reads,
        }
    }

    /// Rewinds the machine to the state captured by `snap`, copying
    /// back only the memory pages dirtied since that snapshot (see
    /// [`Memory::restore_from`]). Returns what the restore copied.
    ///
    /// Stats discipline: the stats accumulated since the last restore
    /// (or since construction) are folded into the process-wide
    /// [`counters`](crate::counters) first — exactly what `Drop` does —
    /// and then zeroed, so a restored attempt's architectural stats
    /// match a fresh build's bit-for-bit and nothing is counted twice
    /// or lost when the machine is eventually dropped. Cache counters
    /// start from zero too but may count fewer misses than a fresh
    /// build, because decodes and translations survive the restore
    /// (see [`snapshot`](Machine::snapshot)).
    pub fn restore_from(&mut self, snap: &MachineSnapshot) -> crate::mem::RestoreStats {
        // Absorb the finished attempt's stats, then start from zero
        // like a fresh machine.
        crate::counters::absorb(&self.stats());
        self.stats = ExecStats::default();
        self.mem.reset_tlb_counts();

        let restore = self.mem.restore_from(&snap.mem);
        crate::counters::note_restore(restore.dirty_pages, restore.bytes_copied);

        self.regs = snap.regs;
        self.ip = snap.ip;
        self.flags = snap.flags;
        self.io = snap.io.clone();
        self.pma = snap.pma.clone();
        self.shadow_stack = snap.shadow_stack.clone();
        self.halted = snap.halted;
        self.rng_state = snap.rng_state;
        self.prev_ip = snap.prev_ip;
        self.pending_transfer = snap.pending_transfer;
        self.blocking_reads = snap.blocking_reads;
        self.straddle_hint = false;
        // Re-arm the profiler countdown so a restored attempt samples
        // at the same retired-instruction indices a fresh build would —
        // the deterministic-attribution contract across serve modes.
        self.prof_countdown = self.prof.as_ref().map_or(u64::MAX, |p| p.countdown_init());
        // Decoded instructions and tier-2 blocks need no explicit
        // flush: the restore bumped the write generation of every page
        // it copied back, so exactly the stale lines and blocks fail
        // validation; decodes and blocks from untouched pages stay
        // warm across attempts.
        if let Some(trace) = self.trace.as_mut() {
            let _ = trace.take();
        }
        restore
    }

    /// Folds the stats accumulated since the last restore (or flush,
    /// or construction) into the process-wide
    /// [`counters`](crate::counters) and zeroes them — the same
    /// discipline [`restore_from`](Machine::restore_from) and `Drop`
    /// apply, available at an explicit boundary. Long-lived machines
    /// (a parked fork server between service rounds) call this so
    /// their final attempt's counters land inside the round's
    /// measurement window instead of escaping into whichever window is
    /// open when the machine is eventually dropped.
    pub fn flush_counters(&mut self) {
        crate::counters::absorb(&self.stats());
        self.stats = ExecStats::default();
        self.mem.reset_tlb_counts();
    }
}

/// The complete architectural state of a [`Machine`], captured by
/// [`Machine::snapshot`] and rewound to by [`Machine::restore_from`].
///
/// Memory pages are refcounted images shared with every clone of the
/// snapshot; restoring re-materializes only pages dirtied since the
/// capture. See the snapshot method docs for what is intentionally not
/// captured (sink, trace, stats, fast-path switch).
#[derive(Clone)]
pub struct MachineSnapshot {
    regs: [u32; NUM_REGS],
    ip: u32,
    flags: Flags,
    mem: crate::mem::MemorySnapshot,
    io: IoBus,
    pma: Option<ProtectionMap>,
    shadow_stack: Option<Vec<u32>>,
    halted: Option<u32>,
    rng_state: u64,
    prev_ip: u32,
    pending_transfer: TransferKind,
    blocking_reads: bool,
}

impl fmt::Debug for MachineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MachineSnapshot")
            .field("ip", &format_args!("{:#010x}", self.ip))
            .field("pages", &self.mem.page_count())
            .field("halted", &self.halted)
            .finish()
    }
}

impl MachineSnapshot {
    /// Number of memory pages captured.
    pub fn page_count(&self) -> usize {
        self.mem.page_count()
    }
}

impl Drop for Machine {
    /// Folds this machine's lifetime stats into the process-wide
    /// [`counters`](crate::counters), so campaign-scale drivers can
    /// report aggregate icache/TLB hit rates across every machine.
    fn drop(&mut self) {
        crate::counters::absorb(&self.stats());
    }
}

enum SysEffect {
    Continue,
    Halt(u32),
    Block(u32),
}

enum ExecOutcome {
    Continue,
    Halt(u32),
    Blocked(u32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{sys, trap};
    use crate::mem::{MemErrorKind, Perm};
    use crate::policy::{ProtectedRegion, ReentryPolicy};

    const TEXT: u32 = 0x1000;
    const STACK_TOP: u32 = 0xbfff_f000;

    fn assemble(instrs: &[Instr]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in instrs {
            i.encode(&mut out);
        }
        out
    }

    fn machine_with(instrs: &[Instr]) -> Machine {
        let mut m = Machine::new();
        m.mem_mut().map(TEXT, 0x1000, Perm::RX).unwrap();
        m.mem_mut()
            .map(STACK_TOP - 0x4000, 0x4000, Perm::RW)
            .unwrap();
        m.mem_mut().poke_bytes(TEXT, &assemble(instrs)).unwrap();
        m.set_reg(Reg::Sp, STACK_TOP);
        m.set_ip(TEXT);
        m
    }

    fn exit_with(r: Reg) -> Vec<Instr> {
        vec![Instr::Mov { dst: Reg::R0, src: r }, Instr::Sys(sys::EXIT)]
    }

    #[test]
    fn arithmetic_and_exit() {
        let mut prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 40 },
            Instr::MovI { dst: Reg::R2, imm: 2 },
            Instr::Alu { op: AluOp::Add, dst: Reg::R1, src: Reg::R2 },
        ];
        prog.extend(exit_with(Reg::R1));
        assert_eq!(machine_with(&prog).run(100), RunOutcome::Halted(42));
    }

    #[test]
    fn signed_division_truncates_toward_zero() {
        let mut prog = vec![
            Instr::MovI { dst: Reg::R1, imm: (-7i32) as u32 },
            Instr::MovI { dst: Reg::R2, imm: 2 },
            Instr::Alu { op: AluOp::DivS, dst: Reg::R1, src: Reg::R2 },
        ];
        prog.extend(exit_with(Reg::R1));
        assert_eq!(
            machine_with(&prog).run(100),
            RunOutcome::Halted((-3i32) as u32)
        );
    }

    #[test]
    fn division_by_zero_faults() {
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 1 },
            Instr::MovI { dst: Reg::R2, imm: 0 },
            Instr::Alu { op: AluOp::DivU, dst: Reg::R1, src: Reg::R2 },
        ];
        let outcome = machine_with(&prog).run(100);
        assert!(matches!(outcome, RunOutcome::Fault(Fault::DivideByZero { .. })));
    }

    #[test]
    fn call_and_ret_roundtrip_through_stack() {
        // call f; exit(r0)   f: movi r0, 7; ret
        // Layout: call(5) mov(2) sys(2) -> f at TEXT+9
        let prog = vec![
            Instr::Call(TEXT + 9),
            Instr::Mov { dst: Reg::R0, src: Reg::R0 },
            Instr::Sys(sys::EXIT),
            Instr::MovI { dst: Reg::R0, imm: 7 },
            Instr::Ret,
        ];
        assert_eq!(machine_with(&prog).run(100), RunOutcome::Halted(7));
    }

    #[test]
    fn enter_leave_maintain_frame_chain() {
        let prog = vec![
            Instr::Call(TEXT + 9),
            Instr::Mov { dst: Reg::R0, src: Reg::R3 },
            Instr::Sys(sys::EXIT),
            // f:
            Instr::Enter(0x18),
            Instr::MovI { dst: Reg::R3, imm: 11 },
            Instr::Store { base: Reg::Bp, disp: -4, src: Reg::R3 },
            Instr::Load { dst: Reg::R3, base: Reg::Bp, disp: -4 },
            Instr::Leave,
            Instr::Ret,
        ];
        assert_eq!(machine_with(&prog).run(100), RunOutcome::Halted(11));
    }

    #[test]
    fn conditional_jumps_follow_flags() {
        // if (3 < 5) exit(1) else exit(0), signed
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 3 },
            Instr::CmpI { a: Reg::R1, imm: 5 },
            Instr::JCond { cond: Cond::Lt, target: TEXT + 24 },
            Instr::MovI { dst: Reg::R0, imm: 0 }, // offset 17
            Instr::Sys(sys::EXIT),
            Instr::MovI { dst: Reg::R0, imm: 1 }, // offset 24
            Instr::Sys(sys::EXIT),
        ];
        assert_eq!(machine_with(&prog).run(100), RunOutcome::Halted(1));
    }

    #[test]
    fn unsigned_vs_signed_comparison_differ() {
        // -1 (0xffffffff) is above 5 unsigned, below 5 signed.
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: u32::MAX },
            Instr::CmpI { a: Reg::R1, imm: 5 },
            Instr::JCond { cond: Cond::B, target: TEXT + 24 },
            Instr::MovI { dst: Reg::R0, imm: 2 }, // not below (unsigned)
            Instr::Sys(sys::EXIT),
            Instr::MovI { dst: Reg::R0, imm: 3 },
            Instr::Sys(sys::EXIT),
        ];
        assert_eq!(machine_with(&prog).run(100), RunOutcome::Halted(2));
    }

    #[test]
    fn read_and_write_syscalls_move_bytes() {
        let buf = STACK_TOP - 0x100;
        let prog = vec![
            Instr::MovI { dst: Reg::R0, imm: 0 },   // fd 0
            Instr::MovI { dst: Reg::R1, imm: buf },
            Instr::MovI { dst: Reg::R2, imm: 16 },
            Instr::Sys(sys::READ),
            Instr::Mov { dst: Reg::R2, src: Reg::R0 }, // echo as many as read
            Instr::MovI { dst: Reg::R0, imm: 1 },   // fd 1
            Instr::Sys(sys::WRITE),
            Instr::MovI { dst: Reg::R0, imm: 0 },
            Instr::Sys(sys::EXIT),
        ];
        let mut m = machine_with(&prog);
        m.io_mut().feed_input(0, b"hello");
        assert_eq!(m.run(100), RunOutcome::Halted(0));
        assert_eq!(m.io().output(1), b"hello");
    }

    #[test]
    fn rand_syscall_is_deterministic_per_seed() {
        let prog = vec![Instr::Sys(sys::RAND), Instr::Sys(sys::EXIT)];
        let mut a = machine_with(&prog);
        a.seed_rng(7);
        let mut b = machine_with(&prog);
        b.seed_rng(7);
        assert_eq!(a.run(10), b.run(10));
    }

    #[test]
    fn software_trap_reports_code() {
        let prog = vec![Instr::Trap(trap::CANARY)];
        let outcome = machine_with(&prog).run(10);
        assert_eq!(
            outcome,
            RunOutcome::Fault(Fault::SoftwareTrap { code: trap::CANARY, ip: TEXT })
        );
    }

    #[test]
    fn executing_data_faults_under_dep() {
        // Jump to the (RW) stack page: fetch denied when enforcement is on.
        let prog = vec![Instr::Jmp(STACK_TOP - 0x100)];
        let mut m = machine_with(&prog);
        let outcome = m.run(10);
        match outcome {
            RunOutcome::Fault(Fault::Mem(e)) => {
                assert_eq!(e.access, Access::Fetch);
                assert!(matches!(e.kind, MemErrorKind::Denied { .. }));
            }
            other => panic!("expected DEP fault, got {other:?}"),
        }
    }

    #[test]
    fn executing_data_succeeds_without_dep() {
        let data = STACK_TOP - 0x100;
        let shellcode = assemble(&[Instr::MovI { dst: Reg::R0, imm: 99 }, Instr::Sys(sys::EXIT)]);
        let prog = vec![Instr::Jmp(data)];
        let mut m = machine_with(&prog);
        m.mem_mut().poke_bytes(data, &shellcode).unwrap();
        m.mem_mut().set_enforce(false);
        assert_eq!(m.run(10), RunOutcome::Halted(99));
    }

    #[test]
    fn shadow_stack_catches_overwritten_return_address() {
        // main: call f; exit(0)
        // f: overwrite own return address, then ret.
        let prog = vec![
            Instr::Call(TEXT + 12),                         // +0, 5 bytes
            Instr::MovI { dst: Reg::R0, imm: 0 },           // +5
            Instr::Sys(sys::EXIT),                          // +11? no: movi 6 bytes
        ];
        // Recompute: call is 5 bytes (ends at +5), movi 6 (ends at +11),
        // sys 2 (ends at +13). Place f at +13.
        let prog = {
            let mut p = prog;
            p[0] = Instr::Call(TEXT + 13);
            p.push(Instr::MovI { dst: Reg::R1, imm: TEXT }); // f: forge target
            p.push(Instr::Store { base: Reg::Sp, disp: 0, src: Reg::R1 });
            p.push(Instr::Ret);
            p
        };
        let mut m = machine_with(&prog);
        m.set_shadow_stack(true);
        let outcome = m.run(100);
        assert!(
            matches!(outcome, RunOutcome::Fault(Fault::ShadowStackMismatch { .. })),
            "got {outcome:?}"
        );
    }

    #[test]
    fn shadow_stack_underflow_on_bare_ret() {
        let prog = vec![Instr::PushI(TEXT), Instr::Ret];
        let mut m = machine_with(&prog);
        m.set_shadow_stack(true);
        assert!(matches!(
            m.run(10),
            RunOutcome::Fault(Fault::ShadowStackUnderflow { .. })
        ));
    }

    #[test]
    fn shadow_stack_allows_honest_calls() {
        let prog = vec![
            Instr::Call(TEXT + 13),
            Instr::MovI { dst: Reg::R0, imm: 5 },
            Instr::Sys(sys::EXIT),
            Instr::Ret,
        ];
        let mut m = machine_with(&prog);
        m.set_shadow_stack(true);
        assert_eq!(m.run(100), RunOutcome::Halted(5));
    }

    #[test]
    fn pma_blocks_outside_data_access() {
        // Program (outside) loads from protected data.
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 0x0060_0000 },
            Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 0 },
        ];
        let mut m = machine_with(&prog);
        m.mem_mut().map(0x0050_0000, 0x2000, Perm::RWX).unwrap();
        m.set_protection(Some(ProtectionMap::new(vec![ProtectedRegion::new(
            0x0050_0000..0x0050_1000,
            0x0060_0000..0x0060_1000,
            vec![0x0050_0000],
        )])));
        m.mem_mut().map(0x0060_0000, 0x1000, Perm::RW).unwrap();
        let outcome = m.run(10);
        assert!(matches!(outcome, RunOutcome::Fault(Fault::Pma(_))), "{outcome:?}");
    }

    #[test]
    fn pma_entry_point_gates_calls() {
        // call into module at non-entry offset faults; at entry succeeds.
        let module_code = 0x0050_0000;
        let make = |target: u32| {
            let prog = vec![Instr::Call(target)];
            let mut m = machine_with(&prog);
            m.mem_mut().map(module_code, 0x1000, Perm::RX).unwrap();
            let body = assemble(&[
                Instr::Nop,
                Instr::MovI { dst: Reg::R0, imm: 1 },
                Instr::Sys(sys::EXIT),
            ]);
            m.mem_mut().poke_bytes(module_code, &body).unwrap();
            m.set_protection(Some(ProtectionMap::new(vec![ProtectedRegion::new(
                module_code..module_code + 0x1000,
                0x0060_0000..0x0060_1000,
                vec![module_code],
            )])));
            m
        };
        assert_eq!(make(module_code).run(10), RunOutcome::Halted(1));
        let outcome = make(module_code + 1).run(10);
        assert!(matches!(outcome, RunOutcome::Fault(Fault::Pma(_))));
    }

    #[test]
    fn pma_relaxed_reentry_permits_returns_into_module() {
        // Module calls out; external code returns back into module body.
        let module_code = 0x0050_0000;
        let external = TEXT;
        // external main: call module entry; (module then calls back out to
        // `helper` which returns into the module's middle).
        let helper = TEXT + 0x100;
        let prog = vec![Instr::Call(module_code)];
        let mut m = machine_with(&prog);
        m.mem_mut().poke_bytes(helper, &assemble(&[Instr::Ret])).unwrap();
        m.mem_mut().map(module_code, 0x1000, Perm::RX).unwrap();
        let module_body = assemble(&[
            Instr::MovI { dst: Reg::R1, imm: helper },
            Instr::CallR(Reg::R1),
            Instr::MovI { dst: Reg::R0, imm: 77 },
            Instr::Sys(sys::EXIT),
        ]);
        m.mem_mut().poke_bytes(module_code, &module_body).unwrap();
        let region = ProtectedRegion::new(
            module_code..module_code + 0x1000,
            0x0060_0000..0x0060_1000,
            vec![module_code],
        );
        // Strict policy: the helper's return into the module faults.
        m.set_protection(Some(ProtectionMap::new(vec![region.clone()])));
        let strict_outcome = m.run(100);
        assert!(matches!(strict_outcome, RunOutcome::Fault(Fault::Pma(_))));

        // Relaxed policy: the return is tolerated.
        let prog2 = vec![Instr::Call(module_code)];
        let mut m2 = machine_with(&prog2);
        m2.mem_mut().poke_bytes(helper, &assemble(&[Instr::Ret])).unwrap();
        m2.mem_mut().map(module_code, 0x1000, Perm::RX).unwrap();
        m2.mem_mut().poke_bytes(module_code, &module_body).unwrap();
        m2.set_protection(Some(
            ProtectionMap::new(vec![region]).with_reentry(ReentryPolicy::AllowReturns),
        ));
        assert_eq!(m2.run(100), RunOutcome::Halted(77));
        let _ = external;
    }

    #[test]
    fn stats_count_instructions_and_calls() {
        let prog = vec![
            Instr::Call(TEXT + 13),
            Instr::MovI { dst: Reg::R0, imm: 0 },
            Instr::Sys(sys::EXIT),
            Instr::Ret,
        ];
        let mut m = machine_with(&prog);
        m.run(100);
        assert_eq!(m.stats().calls, 1);
        assert_eq!(m.stats().rets, 1);
        assert_eq!(m.stats().instructions, 4);
    }

    #[test]
    fn trace_records_executed_instructions() {
        let prog = vec![Instr::Nop, Instr::Halt];
        let mut m = machine_with(&prog);
        m.set_trace(true);
        m.run(10);
        let trace = m.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].instr, Instr::Nop);
        assert_eq!(trace[1].instr, Instr::Halt);
    }

    #[test]
    fn icache_serves_loops_and_is_observable() {
        // r1 = 3; loop: addi r1, -1; cmpi r1, 0; jnz loop; exit(r1)
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 3 },
            Instr::AddI { dst: Reg::R1, imm: (-1i32) as u32 }, // TEXT+6
            Instr::CmpI { a: Reg::R1, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: TEXT + 6 },
            Instr::Mov { dst: Reg::R0, src: Reg::R1 },
            Instr::Sys(sys::EXIT),
        ];
        let mut m = machine_with(&prog);
        assert!(m.fast_path());
        assert_eq!(m.run(1000), RunOutcome::Halted(0));
        let stats = m.stats();
        // Three trips round the loop: the second and third fetch every
        // loop instruction from the icache.
        assert!(stats.icache_hits >= 6, "{stats:?}");
        assert!(stats.icache_misses >= 6, "{stats:?}");
        assert!(stats.tlb_hits > 0, "{stats:?}");
    }

    #[test]
    fn fast_path_off_is_bit_identical_and_uncounted() {
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 3 },
            Instr::AddI { dst: Reg::R1, imm: (-1i32) as u32 },
            Instr::CmpI { a: Reg::R1, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: TEXT + 6 },
            Instr::Mov { dst: Reg::R0, src: Reg::R1 },
            Instr::Sys(sys::EXIT),
        ];
        let mut fast = machine_with(&prog);
        let mut slow = machine_with(&prog);
        slow.set_fast_path(false);
        assert_eq!(fast.run(1000), slow.run(1000));
        let (f, s) = (fast.stats(), slow.stats());
        assert_eq!(f.instructions, s.instructions);
        assert_eq!(s.icache_hits + s.icache_misses, 0);
        assert_eq!(s.tlb_hits + s.tlb_misses, 0);
    }

    #[test]
    fn self_modifying_code_defeats_stale_decodes() {
        // A two-trip loop whose body instruction `movi r0, 1` is
        // executed (and icached) on the first trip, then overwritten
        // by the program itself: the store to the RWX text page must
        // invalidate the cached decode, so the second trip loads the
        // patched immediate. The exit code says which decode ran.
        //
        // Layout (bytes): movi r3(6) | loop@+6: movi r0(6) |
        // movi r1(6) | movi r2(6) | storeb(4) | addi(6) | cmpi(6) |
        // jnz(5) | sys(2).  MovI's immediate starts at offset 2, so
        // the patched byte is loop+2 = TEXT+8.
        let prog = vec![
            Instr::MovI { dst: Reg::R3, imm: 2 },
            Instr::MovI { dst: Reg::R0, imm: 1 }, // TEXT+6, the target
            Instr::MovI { dst: Reg::R1, imm: TEXT + 8 },
            Instr::MovI { dst: Reg::R2, imm: 42 },
            Instr::StoreB { base: Reg::R1, disp: 0, src: Reg::R2 },
            Instr::AddI { dst: Reg::R3, imm: (-1i32) as u32 },
            Instr::CmpI { a: Reg::R3, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: TEXT + 6 },
            Instr::Sys(sys::EXIT),
        ];
        let mut m = Machine::new();
        m.mem_mut().map(TEXT, 0x1000, Perm::RWX).unwrap();
        m.mem_mut()
            .map(STACK_TOP - 0x4000, 0x4000, Perm::RW)
            .unwrap();
        m.mem_mut().poke_bytes(TEXT, &assemble(&prog)).unwrap();
        m.set_reg(Reg::Sp, STACK_TOP);
        m.set_ip(TEXT);
        assert_eq!(m.run(100), RunOutcome::Halted(42));
        // Every store to the executable page bumps the code
        // generation, so this loop runs almost entirely on fresh
        // decodes — correctness beats caching for SMC.
        assert!(m.stats().icache_misses > m.stats().icache_hits);
    }

    #[test]
    fn out_of_fuel_reported() {
        let prog = vec![Instr::Jmp(TEXT)];
        assert_eq!(machine_with(&prog).run(10), RunOutcome::OutOfFuel);
    }

    #[test]
    fn events_flow_for_control_transfers_and_syscalls() {
        use swsec_obs::{CountingSink, RingBufferSink};

        let prog = vec![
            Instr::Call(TEXT + 13),                 // direct call
            Instr::MovI { dst: Reg::R0, imm: 0 },
            Instr::Sys(sys::EXIT),
            // f: (movi 6 + callr 2 + ret 1 ⇒ g at TEXT+22)
            Instr::MovI { dst: Reg::R1, imm: TEXT + 22 },
            Instr::CallR(Reg::R1),                  // indirect call
            Instr::Ret,                             // back to main
            Instr::Ret,                             // g: return to f
        ];
        let counter = std::sync::Arc::new(CountingSink::new());
        let ring = std::sync::Arc::new(RingBufferSink::new(64));
        let mut m = machine_with(&prog);
        m.set_event_sink(Some(counter.clone()));
        assert!(m.has_event_sink());
        assert_eq!(m.run(100), RunOutcome::Halted(0));
        let c = counter.counts();
        assert_eq!(c.control, 4, "{c:?}"); // call, callr, 2 rets
        assert_eq!(c.syscall, 1);
        assert_eq!(c.step, 0); // default mask excludes steps

        // The ring sink captures typed payloads in order.
        let mut m2 = machine_with(&prog);
        m2.set_event_sink(Some(ring.clone()));
        m2.run(100);
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        match events[0] {
            swsec_obs::SecurityEvent::ControlTransfer { kind, from, to } => {
                assert_eq!(kind, swsec_obs::ControlKind::Call);
                assert_eq!(from, TEXT);
                assert_eq!(to, TEXT + 13);
            }
            ref other => panic!("expected a call event, got {other}"),
        }
    }

    #[test]
    fn canary_trap_becomes_canary_trip_other_traps_guard_checks() {
        use swsec_obs::CountingSink;

        let run_trap = |code: u8| {
            let counter = std::sync::Arc::new(CountingSink::new());
            let mut m = machine_with(&[Instr::Trap(code)]);
            m.set_event_sink(Some(counter.clone()));
            m.run(10);
            counter.counts()
        };
        let canary = run_trap(trap::CANARY);
        assert_eq!((canary.canary, canary.guard), (1, 0));
        let bounds = run_trap(trap::BOUNDS);
        assert_eq!((bounds.canary, bounds.guard), (0, 1));
    }

    #[test]
    fn fault_events_classify_dep_unmapped_and_pma() {
        use swsec_obs::{RingBufferSink, SecurityEvent};

        let capture = |mut m: Machine| {
            let ring = std::sync::Arc::new(RingBufferSink::new(16));
            m.set_event_sink(Some(ring.clone()));
            m.run(20);
            ring.drain().0
        };

        // DEP: jump to a non-executable page.
        let events = capture(machine_with(&[Instr::Jmp(STACK_TOP - 0x100)]));
        assert!(events.iter().any(|e| matches!(
            e,
            SecurityEvent::Fault { kind: swsec_obs::FaultKind::Dep, .. }
        )), "{events:?}");

        // Unmapped data read.
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 0x7000_0000 },
            Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 0 },
        ];
        let events = capture(machine_with(&prog));
        assert!(events.iter().any(|e| matches!(
            e,
            SecurityEvent::Fault { kind: swsec_obs::FaultKind::Unmapped, addr: 0x7000_0000, .. }
        )), "{events:?}");

        // PMA rule 1: outside access to protected data.
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 0x0060_0000 },
            Instr::Load { dst: Reg::R0, base: Reg::R1, disp: 0 },
        ];
        let mut m = machine_with(&prog);
        m.mem_mut().map(0x0050_0000, 0x2000, Perm::RWX).unwrap();
        m.mem_mut().map(0x0060_0000, 0x1000, Perm::RW).unwrap();
        m.set_protection(Some(ProtectionMap::new(vec![ProtectedRegion::new(
            0x0050_0000..0x0050_1000,
            0x0060_0000..0x0060_1000,
            vec![0x0050_0000],
        )])));
        let events = capture(m);
        assert!(events.iter().any(|e| matches!(
            e,
            SecurityEvent::PmaViolation {
                rule: swsec_obs::PmaRule::OutsideDataAccess,
                to: 0x0060_0000,
                ..
            }
        )), "{events:?}");
    }

    #[test]
    fn straddling_store_fault_is_classified_as_straddle() {
        use swsec_obs::{FaultKind, RingBufferSink, SecurityEvent};

        // Writable page followed by a read-only page: a word store at
        // the boundary faults mid-word on the second page.
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 0x9000 - 2 },
            Instr::MovI { dst: Reg::R2, imm: 0xaabb_ccdd },
            Instr::Store { base: Reg::R1, disp: 0, src: Reg::R2 },
        ];
        let mut m = machine_with(&prog);
        m.mem_mut().map(0x8000, 0x1000, Perm::RW).unwrap();
        m.mem_mut().map(0x9000, 0x1000, Perm::R).unwrap();
        let ring = std::sync::Arc::new(RingBufferSink::new(8));
        m.set_event_sink(Some(ring.clone()));
        assert!(matches!(m.run(10), RunOutcome::Fault(Fault::Mem(_))));
        let (events, _) = ring.drain();
        assert!(events.iter().any(|e| matches!(
            e,
            SecurityEvent::Fault { kind: FaultKind::Straddle, addr: 0x9000, .. }
        )), "{events:?}");
    }

    #[test]
    fn step_events_feed_hot_address_profile() {
        use swsec_obs::HotAddressSink;

        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 3 },
            Instr::AddI { dst: Reg::R1, imm: (-1i32) as u32 }, // TEXT+6
            Instr::CmpI { a: Reg::R1, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: TEXT + 6 },
            Instr::Mov { dst: Reg::R0, src: Reg::R1 },
            Instr::Sys(sys::EXIT),
        ];
        let hot = std::sync::Arc::new(HotAddressSink::new());
        let mut m = machine_with(&prog);
        m.set_event_sink(Some(hot.clone()));
        assert_eq!(m.run(1000), RunOutcome::Halted(0));
        // Every retired instruction was profiled.
        assert_eq!(hot.total(), m.stats().instructions);
        // The loop body (TEXT+6) ran three times — the hottest address.
        let top = hot.top(1);
        assert_eq!(top[0].0, TEXT + 6);
        assert_eq!(top[0].1, 3);
    }

    #[test]
    fn detached_sink_means_no_events_and_identical_results() {
        use swsec_obs::CountingSink;

        let prog = vec![
            Instr::Call(TEXT + 13),
            Instr::MovI { dst: Reg::R0, imm: 0 },
            Instr::Sys(sys::EXIT),
            Instr::Ret,
        ];
        let counter = std::sync::Arc::new(CountingSink::new());
        let mut with_sink = machine_with(&prog);
        with_sink.set_event_sink(Some(counter.clone()));
        let mut without = machine_with(&prog);
        assert_eq!(with_sink.run(100), without.run(100));
        assert_eq!(with_sink.stats().instructions, without.stats().instructions);
        // Detaching stops the flow entirely.
        let mut detached = machine_with(&prog);
        detached.set_event_sink(Some(counter.clone()));
        detached.set_event_sink(None);
        let before = counter.counts();
        detached.run(100);
        assert_eq!(counter.counts(), before);
    }

    #[test]
    fn bounded_trace_ring_keeps_newest_entries() {
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: 3 },
            Instr::AddI { dst: Reg::R1, imm: (-1i32) as u32 },
            Instr::CmpI { a: Reg::R1, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: TEXT + 6 },
            Instr::Mov { dst: Reg::R0, src: Reg::R1 },
            Instr::Sys(sys::EXIT),
        ];
        let mut m = machine_with(&prog);
        m.set_trace_capacity(4);
        assert_eq!(m.run(1000), RunOutcome::Halted(0));
        let executed = m.stats().instructions;
        assert_eq!(m.trace_dropped(), executed - 4);
        let trace = m.take_trace();
        assert_eq!(trace.len(), 4);
        // The final entry is the exit syscall.
        assert_eq!(trace[3].instr, Instr::Sys(sys::EXIT));
        // And the entries are the last four in execution order.
        assert_eq!(trace[2].instr, Instr::Mov { dst: Reg::R0, src: Reg::R1 });
    }

    #[test]
    fn halted_machine_stays_halted() {
        let prog = vec![Instr::Halt];
        let mut m = machine_with(&prog);
        assert_eq!(m.run(10), RunOutcome::Halted(0));
        assert_eq!(m.step(), StepResult::Halted(0));
        assert_eq!(m.exit_code(), Some(0));
    }

    /// A countdown loop hot enough (100 trips ≫ threshold) to be
    /// promoted into a tier-2 block.
    fn hot_countdown(trips: u32) -> Vec<Instr> {
        vec![
            Instr::MovI { dst: Reg::R1, imm: trips },
            // TEXT + 6: the loop head, and the tier-2 block head.
            Instr::AddI { dst: Reg::R1, imm: (-1i32) as u32 },
            Instr::CmpI { a: Reg::R1, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: TEXT + 6 },
            Instr::Mov { dst: Reg::R0, src: Reg::R1 },
            Instr::Sys(sys::EXIT),
        ]
    }

    #[test]
    fn tier2_tight_loop_matches_both_baselines_bit_for_bit() {
        let prog = hot_countdown(100);
        let mut tiered = machine_with(&prog);
        tiered.set_tier2(true);
        let mut fast = machine_with(&prog);
        fast.set_tier2(false);
        let mut base = machine_with(&prog);
        base.set_tier2(false);
        base.set_fast_path(false);

        let outcome = tiered.run(100_000);
        assert_eq!(outcome, fast.run(100_000));
        assert_eq!(outcome, base.run(100_000));
        assert_eq!(outcome, RunOutcome::Halted(0));
        for r in [Reg::R0, Reg::R1, Reg::Sp, Reg::Bp] {
            assert_eq!(tiered.reg(r), fast.reg(r));
            assert_eq!(tiered.reg(r), base.reg(r));
        }
        assert_eq!(tiered.ip(), fast.ip());
        assert_eq!(tiered.flags(), fast.flags());
        assert_eq!(
            tiered.stats().architectural(),
            fast.stats().architectural()
        );
        assert_eq!(
            tiered.stats().architectural(),
            base.stats().architectural()
        );
        // And the tier actually engaged.
        let stats = tiered.stats();
        assert!(stats.tier2_compiled >= 1, "no block compiled");
        assert!(stats.tier2_hits >= 1, "no block entered");
        assert!(
            stats.tier2_instructions > stats.instructions / 2,
            "block retired too few: {} of {}",
            stats.tier2_instructions,
            stats.instructions
        );
        assert_eq!(fast.stats().tier2_hits, 0);
    }

    #[test]
    fn tier2_fuel_accounting_is_exact_mid_block() {
        // Stop the run inside the hot loop: the tiered machine must
        // retire exactly `fuel` instructions and park on the same
        // instruction as the stepping machine.
        for fuel in [1, 17, 50, 63, 64, 65, 200] {
            let prog = hot_countdown(100);
            let mut tiered = machine_with(&prog);
            tiered.set_tier2(true);
            let mut fast = machine_with(&prog);
            fast.set_tier2(false);
            assert_eq!(tiered.run(fuel), fast.run(fuel), "fuel {fuel}");
            assert_eq!(tiered.ip(), fast.ip(), "fuel {fuel}");
            assert_eq!(tiered.flags(), fast.flags(), "fuel {fuel}");
            assert_eq!(tiered.reg(Reg::R1), fast.reg(Reg::R1), "fuel {fuel}");
            assert_eq!(
                tiered.stats().instructions,
                fast.stats().instructions,
                "fuel {fuel}"
            );
            // Resuming after the pause converges to the same exit.
            assert_eq!(tiered.run(100_000), fast.run(100_000));
            assert_eq!(tiered.stats().instructions, fast.stats().instructions);
        }
    }

    #[test]
    fn tier2_fault_mid_block_is_identical_to_stepping() {
        // An ascending store loop that runs off the top of the stack
        // mapping: hot enough to run as a block, and the 65th trip
        // faults on an unmapped store *mid-block*.
        let prog = vec![
            Instr::MovI { dst: Reg::R1, imm: STACK_TOP - 0x100 },
            Instr::MovI { dst: Reg::R2, imm: 0x5a5a_5a5a },
            // TEXT + 12: loop head.
            Instr::Store { base: Reg::R1, disp: 0, src: Reg::R2 },
            Instr::AddI { dst: Reg::R1, imm: 4 },
            Instr::Jmp(TEXT + 12),
        ];
        let mut tiered = machine_with(&prog);
        tiered.set_tier2(true);
        let mut fast = machine_with(&prog);
        fast.set_tier2(false);
        let mut base = machine_with(&prog);
        base.set_tier2(false);
        base.set_fast_path(false);

        let outcome = tiered.run(100_000);
        assert_eq!(outcome, fast.run(100_000));
        assert_eq!(outcome, base.run(100_000));
        let fault = outcome.fault().expect("store must fault");
        match fault {
            Fault::Mem(e) => assert_eq!(e.addr, STACK_TOP),
            other => panic!("unexpected fault {other:?}"),
        }
        // The machine parks on the faulting instruction either way.
        assert_eq!(tiered.ip(), fast.ip());
        assert_eq!(tiered.ip(), TEXT + 12);
        assert_eq!(tiered.reg(Reg::R1), fast.reg(Reg::R1));
        assert_eq!(
            tiered.stats().architectural(),
            fast.stats().architectural()
        );
        assert!(tiered.stats().tier2_instructions > 0);
    }

    #[test]
    fn profiler_folded_identical_across_tiers() {
        // The profile is a pure function of retired instructions:
        // tier-2 block execution must produce byte-identical folded
        // output to plain stepping, while the tier stays engaged.
        let prog = hot_countdown(200);
        let run = |tier2: bool| {
            let prof = std::sync::Arc::new(crate::profile::Profiler::new(16));
            let mut m = machine_with(&prog);
            m.set_tier2(tier2);
            m.set_profiler(Some(prof.clone()));
            assert_eq!(m.run(100_000), RunOutcome::Halted(0));
            (prof.folded(&swsec_obs::SymbolTable::empty()), m.stats())
        };
        let (tiered, tiered_stats) = run(true);
        let (stepped, stepped_stats) = run(false);
        assert_eq!(tiered, stepped);
        assert!(!tiered.is_empty());
        assert!(tiered_stats.instructions / 16 > 10, "loop too short to sample");
        // Profiling must not force tier 1: blocks still compile and
        // retire the bulk of the loop between sample points.
        assert!(tiered_stats.tier2_hits > 0, "tier 2 disengaged under profiling");
        assert!(tiered_stats.tier2_instructions > 0);
        assert_eq!(stepped_stats.tier2_hits, 0);
    }

    #[test]
    fn profiler_fork_matches_rebuild() {
        // Snapshot-restore re-arms the sample countdown, so a forked
        // attempt's profile is byte-identical to a fresh rebuild's.
        let prog = hot_countdown(120);
        let folded_of = |m: &mut Machine| {
            let prof = std::sync::Arc::new(crate::profile::Profiler::new(32));
            m.set_profiler(Some(prof.clone()));
            assert_eq!(m.run(100_000), RunOutcome::Halted(0));
            m.set_profiler(None);
            prof.folded(&swsec_obs::SymbolTable::empty())
        };
        let rebuilt = folded_of(&mut machine_with(&prog));
        let mut forked = machine_with(&prog);
        forked.set_tier2(true);
        let snap = forked.snapshot();
        let first = folded_of(&mut forked);
        forked.restore_from(&snap);
        let second = folded_of(&mut forked);
        assert!(!rebuilt.is_empty());
        assert_eq!(rebuilt, first);
        assert_eq!(first, second);
    }

    #[test]
    fn profiler_interval_zero_never_samples() {
        let prog = hot_countdown(50);
        let prof = std::sync::Arc::new(crate::profile::Profiler::new(0));
        let mut m = machine_with(&prog);
        m.set_profiler(Some(prof.clone()));
        assert_eq!(m.run(100_000), RunOutcome::Halted(0));
        assert_eq!(prof.total_samples(), 0);
    }

    #[test]
    fn profiler_uses_shadow_stack_for_exact_frames() {
        // Layout: call(5) sys(2) -> f at TEXT+7; samples taken inside
        // f carry the return address into main as their root frame.
        let prog = vec![
            Instr::Call(TEXT + 7),
            Instr::Sys(sys::EXIT),
            Instr::MovI { dst: Reg::R0, imm: 7 },
            Instr::Ret,
        ];
        let prof = std::sync::Arc::new(crate::profile::Profiler::new(1));
        let mut m = machine_with(&prog);
        m.set_shadow_stack(true);
        m.set_profiler(Some(prof.clone()));
        assert_eq!(m.run(100), RunOutcome::Halted(7));
        let samples = prof.samples();
        assert!(
            samples
                .iter()
                .any(|(stack, _)| stack.as_slice() == [TEXT + 5, TEXT + 7]),
            "no sample rooted at the call site: {samples:?}"
        );
    }

    #[test]
    fn profiler_walks_bp_chain_without_shadow_stack() {
        // A conventional prologue links the frame chain; the sampler's
        // fallback walk recovers the caller's return address from
        // `[bp+4]` with the saved bp at `[bp]` terminating the scan.
        let f = TEXT + 7; // call(5) sys(2)
        let prog = vec![
            Instr::Call(f),
            Instr::Sys(sys::EXIT),
            // f: push bp; mov bp, sp; body; pop bp; ret
            Instr::Push(Reg::Bp),
            Instr::Mov { dst: Reg::Bp, src: Reg::Sp },
            Instr::MovI { dst: Reg::R0, imm: 7 },
            Instr::Pop(Reg::Bp),
            Instr::Ret,
        ];
        let prof = std::sync::Arc::new(crate::profile::Profiler::new(1));
        let mut m = machine_with(&prog);
        m.set_reg(Reg::Bp, 0); // end-of-chain sentinel
        m.set_profiler(Some(prof.clone()));
        assert_eq!(m.run(100), RunOutcome::Halted(7));
        let samples = prof.samples();
        assert!(
            samples
                .iter()
                .any(|(stack, _)| stack.len() == 2 && stack[0] == TEXT + 5),
            "bp walk found no caller frame: {samples:?}"
        );
    }

    #[test]
    fn two_way_icache_keeps_low_bit_aliases_resident() {
        // 0x1000 and 0x1200 share their set index; with one way each
        // would evict the other on every trip. Two ways keep both
        // resident: two cold fills, hits forever after.
        let mut m = Machine::new();
        m.mem_mut().map(TEXT, 0x1000, Perm::RX).unwrap();
        let mut a = Vec::new();
        Instr::Jmp(TEXT + 0x200).encode(&mut a);
        let mut b = Vec::new();
        Instr::Jmp(TEXT).encode(&mut b);
        m.mem_mut().poke_bytes(TEXT, &a).unwrap();
        m.mem_mut().poke_bytes(TEXT + 0x200, &b).unwrap();
        m.set_tier2(false); // measure the icache, not the block cache
        m.set_ip(TEXT);
        assert_eq!(m.run(100), RunOutcome::OutOfFuel);
        let stats = m.stats();
        assert_eq!(stats.icache_misses, 2, "aliasing ips must coexist");
        assert_eq!(stats.icache_hits, 98);
    }
}
