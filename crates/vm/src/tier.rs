//! Tier-2 execution: superinstruction blocks compiled from hot
//! straight-line regions.
//!
//! The tier-1 fast path (decoded-instruction cache + TLBs, see
//! [`cpu`](crate::cpu)) removes decode cost but still pays the full
//! fetch/dispatch ceremony on every instruction. This module adds a
//! second tier above it: when a control-transfer target proves hot
//! (executed [`HOT_THRESHOLD`] times), the straight-line region
//! starting there is fused into a **block** — a flat array of
//! pre-resolved [`MicroOp`]s that the CPU executes in a tight loop
//! with the per-instruction fetch, PMA test, sink test and trace test
//! all hoisted out.
//!
//! Safety of the hoisting is generational, exactly like the icache:
//! a block records the memory's global code generation plus the write
//! generation of every page its encodings were decoded from, and is
//! executed only while all of them are unchanged. Any map/unmap,
//! permission or enforcement change bumps the global generation; any
//! byte write — self-modifying code, a loader poke, a snapshot
//! restore's copy-back — bumps the written page's generation. A store
//! executed *inside* a block re-checks the block's own pages and
//! side-exits before the next micro-op if the block patched itself,
//! so SMC is byte-for-byte identical to the interpreter.
//!
//! What a block may contain is deliberately conservative: only
//! instructions whose effects the micro-op loop reproduces exactly.
//! Syscalls, traps and `halt` terminate compilation and run through
//! the ordinary [`step`](crate::cpu::Machine::step) path, which keeps
//! syscall, blocking-read and halt semantics in one place. Control
//! transfers *are* included: `jmp` and conditional jumps mid-block
//! (a backward jump to the block's own head loops without leaving the
//! block at all — the tight-loop superinstruction), and the indirect
//! transfers `callr` and `jmpr` as block **terminators** that
//! reproduce the push/pop, shadow-stack check, call/ret counting and
//! [`ControlTransfer`](swsec_obs::SecurityEvent::ControlTransfer)
//! emission of their tier-1 instruction before exiting with the
//! transfer pending.
//!
//! Static `call`s go further: compilation **links** the call — pushes
//! its return address on a compile-time call stack and continues
//! straight into the callee — and links the callee's matching `ret`
//! back to the call site, so a call-shaped loop body compiles into
//! one block. The linked return is a prediction, not an assumption:
//! the runtime op pops the actual return address and compares it to
//! the compile-time continuation, and a mismatch — a smashed return
//! address — exits the block with the attacker's target pending,
//! bit-for-bit what stepping does. A `call`/`ret` with no in-block
//! partner stays a terminator as above.
//!
//! Beyond predecoding, compilation runs a peephole pass that fuses
//! the classic loop-closing sequences — `addi; cmpi; jcc`, `cmpi;
//! jcc`, `cmp; jcc` — into single **superinstruction** micro-ops, so
//! a counted loop retires three instructions per dispatch; a block
//! that is *nothing but* a ±1 counted self-loop is executed in closed
//! form (the remaining trip count is arithmetic — intermediate states
//! of a pure ALU self-loop are unobservable — with fuel accounting
//! kept exact). Each [`Op`] records how many architectural
//! instructions it retires (`n`), the address of its last constituent
//! (`last_ip`), and where execution continues when it completes
//! without exiting (`cont_ip`/`cont_kind`), which keeps fuel
//! accounting and `prev_ip`/`pending_transfer` reconstruction exact
//! on every exit path.
//!
//! Dynamic transfers no longer pay a full dispatch round trip either:
//! each `callr`/`jmpr`/unlinked-`ret` terminator carries a
//! **polymorphic inline cache** — up to [`IC_WAYS`] observed
//! `(target, block slot)` predictions ([`InlineCache`]). When the
//! block exits through such a terminator, the dispatcher probes the
//! cache with the actual runtime target (for `ret`, the popped —
//! and shadow-stack-verified — return address), and a hit chains
//! straight into the predicted successor block, skipping the block
//! lookup and hotness bookkeeping. The predicted block is still
//! validated against the global code generation and its per-page
//! write generations before running, so SMC, snapshot restores and
//! smashed pointers invalidate predictions exactly as they invalidate
//! blocks. A miss falls back to the ordinary lookup and promotes the
//! observed target (monomorphic → polymorphic); past [`IC_WAYS`]
//! distinct targets the cache goes megamorphic and the terminator
//! stops predicting.
//!
//! When a [`CoverageSink`](swsec_obs::CoverageSink) is attached
//! directly (see `Machine::set_coverage`), blocks also update the
//! coverage map **in place**: static calls bump a compile-time
//! pre-resolved slot ([`Op::cov_slot`]) and dynamic terminators hash
//! their runtime edge, instead of constructing `ControlTransfer`
//! events and dispatching through the sink trait. The resulting map
//! is byte-identical to the event path — same slots, same counts —
//! so coverage-guided fuzzing keeps its fingerprints while running
//! tier-2 engaged.
//!
//! Machines with a PMA policy installed, tracing on, or a sink
//! interested in per-step events never enter tier 2 (the per-step
//! checks those require are exactly what the tier hoists away); they
//! run tier 1, which is bit-for-bit equivalent.

use crate::isa::{self, AluOp, Cond, Instr};
use crate::mem::{Access, Memory};
use crate::policy::TransferKind;
use swsec_obs::coverage::edge_slot;
use swsec_obs::ControlKind;

/// Number of direct-mapped block-cache slots per machine.
pub const BLOCK_SLOTS: usize = 512;

/// Number of hotness-counter sets for transfer targets.
pub const HOT_SLOTS: usize = 512;

/// Ways per hotness set. Two targets whose addresses alias the same
/// set each keep their own counter instead of resetting each other —
/// a direct-mapped table starves both sides of a ping-pong pair (A
/// claims, B claims, neither ever reaches the threshold).
pub const HOT_WAYS: usize = 2;

/// Ways per inline cache: distinct dynamic-transfer targets a
/// `callr`/`jmpr`/`ret` terminator predicts before going megamorphic.
pub const IC_WAYS: usize = 4;

/// `Op::ic` value for ops that carry no inline cache.
pub(crate) const IC_NONE: u16 = u16::MAX;

/// Control transfers to an address before the region starting there
/// is compiled into a block. Low enough that short campaign victims
/// (a few dozen loop trips) get promoted, high enough that one-shot
/// straight-line code never pays a compile.
pub const HOT_THRESHOLD: u32 = 16;

/// Maximum micro-ops fused into one block.
pub const MAX_BLOCK_OPS: usize = 64;

/// Maximum distinct pages a block's encodings may span. A block is at
/// most `MAX_BLOCK_OPS * MAX_INSTR_LEN` = 384 bytes, so two pages
/// always suffice; compilation stops early rather than track more.
pub const MAX_BLOCK_PAGES: usize = 2;

/// One pre-resolved micro-op. Operands are extracted at compile time
/// (register indices widened, displacements sign-extended) so the
/// execution loop does no per-op decoding — just a jump-table dispatch
/// on this enum.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MicroOp {
    Nop,
    MovI { dst: u8, imm: u32 },
    Mov { dst: u8, src: u8 },
    Load { dst: u8, base: u8, disp: u32 },
    Store { base: u8, disp: u32, src: u8 },
    LoadB { dst: u8, base: u8, disp: u32 },
    StoreB { base: u8, disp: u32, src: u8 },
    Push { src: u8 },
    Pop { dst: u8 },
    PushI { imm: u32 },
    Alu { op: AluOp, dst: u8, src: u8 },
    AddI { dst: u8, imm: u32 },
    Cmp { a: u8, b: u8 },
    CmpI { a: u8, imm: u32 },
    Lea { dst: u8, base: u8, disp: u32 },
    Enter { frame: u32 },
    Leave,
    Jmp { target: u32 },
    JCond { cond: Cond, target: u32 },
    /// Terminal: push the return address (`Op::next_ip`), then
    /// transfer to `target`.
    Call { target: u32 },
    /// Terminal: like [`MicroOp::Call`] with the target in a register.
    CallR { src: u8 },
    /// Terminal: pop the return address (with the shadow-stack check)
    /// and transfer to it.
    Ret,
    /// Terminal: transfer to the address in a register.
    JmpR { src: u8 },
    /// Superinstruction: `addi dst, add_imm; cmpi a, cmp_imm;
    /// jcc cond, target` — the counted-loop step, three instructions
    /// in one dispatch.
    FusedLoopI { dst: u8, add_imm: u32, a: u8, cmp_imm: u32, cond: Cond, target: u32 },
    /// Superinstruction: `cmpi a, imm; jcc cond, target`.
    FusedCmpIJ { a: u8, imm: u32, cond: Cond, target: u32 },
    /// Superinstruction: `cmp a, b; jcc cond, target`.
    FusedCmpJ { a: u8, b: u8, cond: Cond, target: u32 },
}

impl MicroOp {
    /// Whether executing this op can write memory — after such an op
    /// the block re-validates its own code pages (SMC side exit).
    /// `call`/`callr` push, but are terminal, so nothing decoded from
    /// the block runs after them anyway.
    #[inline]
    pub(crate) fn writes_memory(self) -> bool {
        matches!(
            self,
            MicroOp::Store { .. }
                | MicroOp::StoreB { .. }
                | MicroOp::Push { .. }
                | MicroOp::PushI { .. }
                | MicroOp::Enter { .. }
                | MicroOp::Call { .. }
                | MicroOp::CallR { .. }
        )
    }

    /// Whether this op ends its block unconditionally (the transfer
    /// kinds whose successor is not the next sequential instruction).
    #[inline]
    fn terminal(self) -> bool {
        matches!(
            self,
            MicroOp::Jmp { .. }
                | MicroOp::Call { .. }
                | MicroOp::CallR { .. }
                | MicroOp::Ret
                | MicroOp::JmpR { .. }
        )
    }
}

/// One micro-op plus the addresses the equivalent tier-1 steps would
/// have seen: `ip` is where the (first fused) instruction lives
/// (fault payloads and stall exits), `last_ip` the last constituent
/// instruction (`prev_ip` reconstruction for the *following* op),
/// `next_ip` the sequential successor of the whole op, and `n` how
/// many architectural instructions the op retires (fuel accounting).
///
/// `cont_ip`/`cont_kind` describe where execution continues when the
/// op completes without exiting the block: for ordinary ops that is
/// `(next_ip, Sequential)`; for a **linked call** — a static `call`
/// that compilation followed into the callee — it is `(target, Call)`,
/// and the following op in the block lives at the callee's entry. Any
/// exit *between* ops (SMC side exit, stall, fault in the next op)
/// restores `(prev_ip, pending_transfer)` from these fields, so the
/// machine is indistinguishable from one that stepped the transfer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    pub ip: u32,
    pub last_ip: u32,
    pub next_ip: u32,
    pub cont_ip: u32,
    pub cont_kind: TransferKind,
    pub n: u8,
    /// Index into the block's [`InlineCache`] table for dynamic
    /// transfer terminators (`callr`, `jmpr`, unlinked `ret`);
    /// [`IC_NONE`] for every other op.
    pub ic: u16,
    /// Pre-resolved coverage-map slot of this op's control-transfer
    /// edge, for ops whose edge is known at compile time (static
    /// `call`): with a coverage sink attached the block bumps this
    /// slot directly instead of constructing the event. Zero (unused)
    /// for every other op.
    pub cov_slot: u16,
    pub kind: MicroOp,
}

impl Op {
    /// Whether this is a linked call: control falls through into the
    /// next op (the callee's first instruction) instead of exiting.
    #[inline]
    pub(crate) fn linked(&self) -> bool {
        self.cont_kind != TransferKind::Sequential
    }
}

/// One inline-cache entry: a predicted dynamic-transfer target and
/// the block-cache slot serving it when the prediction was installed.
#[derive(Debug, Clone, Copy, Default)]
struct IcEntry {
    target: u32,
    slot: u32,
}

/// A polymorphic inline cache attached to a dynamic-transfer
/// terminator (`callr`/`jmpr`/unlinked `ret`): up to [`IC_WAYS`]
/// observed `(target, block slot)` predictions. A hit lets the
/// dispatcher chain straight into the successor block without the
/// index-mix/tag lookup and hotness bookkeeping; the predicted block
/// is still re-validated against the code generation and per-page
/// write generations before it runs, and — for `ret` — the probe key
/// is the runtime-verified popped return address, so a stale or
/// attacker-redirected prediction can never execute stale code.
/// More than [`IC_WAYS`] distinct targets flips the cache megamorphic:
/// the terminator gives up on prediction and stays terminal.
#[derive(Debug, Clone, Default)]
pub(crate) struct InlineCache {
    entries: [IcEntry; IC_WAYS],
    len: u8,
    mega: bool,
}

/// Outcome of probing an inline cache with an observed target.
pub(crate) enum IcProbe {
    /// Predicted block-cache slot, proven to hold a block starting at
    /// the probed target (validation against generations still
    /// pending).
    Hit(usize),
    /// No usable prediction: fall back to the full lookup, then
    /// promote the observed target.
    Miss,
    /// The terminator saw more than [`IC_WAYS`] distinct targets;
    /// neither probe nor promote — it stays terminal.
    Mega,
}

/// Outcome of promoting an observed target into an inline cache.
pub(crate) enum IcPromotion {
    /// The target was installed (or its stale slot refreshed).
    Installed,
    /// The cache was full of other targets and flipped megamorphic.
    Megamorphic,
    /// The owning block is gone (evicted between exit and promote).
    Skipped,
}

/// A compiled superinstruction block: straight-line micro-ops starting
/// at `start_ip`, valid while the recorded generations stand.
#[derive(Debug)]
pub(crate) struct Block {
    pub start_ip: u32,
    /// Global code generation at compile time; a match proves the
    /// layout, fetch permissions and slot indices below are current.
    pub gen: u64,
    /// `(slot, write_generation)` of each page the encodings occupy.
    pub pages: [(u32, u64); MAX_BLOCK_PAGES],
    pub npages: u8,
    pub ops: Vec<Op>,
    /// Inline caches of this block's dynamic-transfer terminators,
    /// indexed by [`Op::ic`].
    pub ics: Vec<InlineCache>,
}

impl Block {
    /// Whether every page this block was compiled from is unchanged.
    /// The caller must have checked the global generation first — a
    /// stale global generation means the slot indices cannot be
    /// trusted.
    #[inline]
    pub(crate) fn pages_valid(&self, mem: &Memory) -> bool {
        mem.page_gens_valid(&self.pages[..usize::from(self.npages)])
    }
}

/// One hotness counter: transfers seen to `ip` since the way was
/// last claimed. `count == 0` marks an empty way.
#[derive(Debug, Clone, Copy, Default)]
struct HotSlot {
    ip: u32,
    count: u32,
}

/// The per-machine tier-2 state: the block cache and the hotness
/// table. Allocated lazily on the first eligible control transfer, so
/// machines that never run hot code (or run with tier 2 off) pay
/// nothing.
#[derive(Debug)]
pub(crate) struct TierEngine {
    blocks: Box<[Option<Block>]>,
    hot: Box<[[HotSlot; HOT_WAYS]]>,
}

/// Mixes high address bits into a table index so regions that share
/// low bits (e.g. code at 0x1000 and a module at 0x0040_0000) do not
/// collide systematically.
#[inline]
fn mix(ip: u32) -> usize {
    (ip ^ (ip >> 9) ^ (ip >> 18)) as usize
}

impl TierEngine {
    pub(crate) fn new() -> TierEngine {
        TierEngine {
            blocks: (0..BLOCK_SLOTS).map(|_| None).collect(),
            hot: vec![[HotSlot::default(); HOT_WAYS]; HOT_SLOTS].into_boxed_slice(),
        }
    }

    #[inline]
    fn block_slot(ip: u32) -> usize {
        mix(ip) & (BLOCK_SLOTS - 1)
    }

    /// The table slot of the block starting at `ip`, if one exists, so
    /// the dispatcher can re-borrow the block with a plain index (see
    /// [`block`](TierEngine::block)) instead of paying the index-mix
    /// and tag compare twice per chain entry.
    #[inline]
    pub(crate) fn lookup_slot(&self, ip: u32) -> Option<usize> {
        let slot = Self::block_slot(ip);
        match &self.blocks[slot] {
            Some(b) if b.start_ip == ip => Some(slot),
            _ => None,
        }
    }

    /// The block in `slot`, which [`lookup_slot`](TierEngine::lookup_slot)
    /// proved occupied.
    #[inline]
    pub(crate) fn block(&self, slot: usize) -> &Block {
        self.blocks[slot].as_ref().expect("slot holds a block")
    }

    /// Drops the block starting at `ip` (it failed validation) and
    /// resets its hotness so recompilation waits for the region to
    /// prove hot again — hysteresis against SMC recompile storms.
    pub(crate) fn invalidate(&mut self, ip: u32) {
        let slot = Self::block_slot(ip);
        if self.blocks[slot].as_ref().is_some_and(|b| b.start_ip == ip) {
            self.blocks[slot] = None;
        }
        self.reset_hot(ip);
    }

    /// Counts one transfer to `ip`; returns `true` when the target has
    /// crossed the promotion threshold. The table is set-associative
    /// ([`HOT_WAYS`] ways per set, full `ip` stored and verified), so
    /// two targets aliasing one set accumulate heat independently; a
    /// genuine third claimant displaces the coldest way.
    #[inline]
    pub(crate) fn note_hot(&mut self, ip: u32) -> bool {
        let set = &mut self.hot[mix(ip) & (HOT_SLOTS - 1)];
        for way in set.iter_mut() {
            if way.count > 0 && way.ip == ip {
                way.count += 1;
                return way.count >= HOT_THRESHOLD;
            }
        }
        let victim = set
            .iter_mut()
            .min_by_key(|way| way.count)
            .expect("set has ways");
        *victim = HotSlot { ip, count: 1 };
        false
    }

    /// Resets the hotness counter for `ip` (after an invalidation or a
    /// failed compile).
    pub(crate) fn reset_hot(&mut self, ip: u32) {
        let set = &mut self.hot[mix(ip) & (HOT_SLOTS - 1)];
        for way in set.iter_mut() {
            if way.count > 0 && way.ip == ip {
                way.count = 0;
            }
        }
    }

    /// Probes the inline cache `ic` of the block in `from_slot`
    /// (starting at `from_ip`) with the observed transfer target.
    /// A hit guarantees the returned slot currently holds a block
    /// starting at `target`; the dispatcher still validates that block
    /// against the code generation and its per-page write generations
    /// before running it.
    #[inline]
    pub(crate) fn ic_probe(&self, from_slot: usize, from_ip: u32, ic: u16, target: u32) -> IcProbe {
        let Some(from) = self.blocks[from_slot].as_ref() else {
            return IcProbe::Miss;
        };
        if from.start_ip != from_ip {
            return IcProbe::Miss;
        }
        let Some(cache) = from.ics.get(usize::from(ic)) else {
            return IcProbe::Miss;
        };
        if cache.mega {
            return IcProbe::Mega;
        }
        for entry in &cache.entries[..usize::from(cache.len)] {
            if entry.target == target {
                let pred = entry.slot as usize;
                // The predicted slot may have been evicted or reused
                // for a different region since the entry was
                // installed; only a live block with the right start
                // address counts as a hit.
                if self.blocks[pred].as_ref().is_some_and(|b| b.start_ip == target) {
                    return IcProbe::Hit(pred);
                }
                return IcProbe::Miss;
            }
        }
        IcProbe::Miss
    }

    /// Installs the observed `(target, succ_slot)` prediction into the
    /// inline cache a probe just missed: an existing entry for the
    /// target has its slot refreshed, a free way is claimed, and a
    /// full cache flips megamorphic (monomorphic → polymorphic →
    /// megamorphic, never back).
    pub(crate) fn ic_promote(
        &mut self,
        from_slot: usize,
        from_ip: u32,
        ic: u16,
        target: u32,
        succ_slot: usize,
    ) -> IcPromotion {
        let Some(from) = self.blocks[from_slot].as_mut() else {
            return IcPromotion::Skipped;
        };
        if from.start_ip != from_ip {
            // Compiling the successor evicted the exiting block from
            // its slot (a direct-mapped collision): nothing to update.
            return IcPromotion::Skipped;
        }
        let Some(cache) = from.ics.get_mut(usize::from(ic)) else {
            return IcPromotion::Skipped;
        };
        if cache.mega {
            return IcPromotion::Skipped;
        }
        let len = usize::from(cache.len);
        for entry in cache.entries[..len].iter_mut() {
            if entry.target == target {
                entry.slot = succ_slot as u32;
                return IcPromotion::Installed;
            }
        }
        if len < IC_WAYS {
            cache.entries[len] = IcEntry { target, slot: succ_slot as u32 };
            cache.len += 1;
            IcPromotion::Installed
        } else {
            cache.mega = true;
            IcPromotion::Megamorphic
        }
    }

    /// Compiles the region at `ip` and installs it, evicting any
    /// colliding block. Returns whether a block was produced.
    pub(crate) fn compile_into(&mut self, mem: &Memory, ip: u32) -> bool {
        match compile(mem, ip) {
            Some(block) => {
                self.blocks[Self::block_slot(ip)] = Some(block);
                true
            }
            None => {
                self.reset_hot(ip);
                false
            }
        }
    }
}

/// Decodes one instruction at `addr` without touching any machine
/// state. Mirrors the CPU's uncached fetch; any fault (unmapped, DEP,
/// undecodable) simply ends the region.
fn decode_at(mem: &Memory, addr: u32) -> Option<(Instr, usize)> {
    let first = mem.read_u8(addr, Access::Fetch).ok()?;
    let len = isa::instr_len(first)?;
    let mut buf = [0u8; isa::MAX_INSTR_LEN];
    buf[0] = first;
    if len > 1 {
        mem.read_bytes(addr.wrapping_add(1), &mut buf[1..len], Access::Fetch)
            .ok()?;
    }
    let (instr, _) = Instr::decode(&buf[..len]).ok()?;
    Some((instr, len))
}

/// Translates one decodable instruction into a micro-op, or `None`
/// for the instruction classes that must run through `step`
/// (syscalls, traps, halt).
fn lower(instr: Instr) -> Option<MicroOp> {
    let r = |reg: isa::Reg| reg as u8;
    let sx = |disp: i16| disp as i32 as u32;
    Some(match instr {
        Instr::Nop => MicroOp::Nop,
        Instr::MovI { dst, imm } => MicroOp::MovI { dst: r(dst), imm },
        Instr::Mov { dst, src } => MicroOp::Mov { dst: r(dst), src: r(src) },
        Instr::Load { dst, base, disp } => MicroOp::Load { dst: r(dst), base: r(base), disp: sx(disp) },
        Instr::Store { base, disp, src } => MicroOp::Store { base: r(base), disp: sx(disp), src: r(src) },
        Instr::LoadB { dst, base, disp } => MicroOp::LoadB { dst: r(dst), base: r(base), disp: sx(disp) },
        Instr::StoreB { base, disp, src } => MicroOp::StoreB { base: r(base), disp: sx(disp), src: r(src) },
        Instr::Push(src) => MicroOp::Push { src: r(src) },
        Instr::Pop(dst) => MicroOp::Pop { dst: r(dst) },
        Instr::PushI(imm) => MicroOp::PushI { imm },
        Instr::Alu { op, dst, src } => MicroOp::Alu { op, dst: r(dst), src: r(src) },
        Instr::AddI { dst, imm } => MicroOp::AddI { dst: r(dst), imm },
        Instr::Cmp { a, b } => MicroOp::Cmp { a: r(a), b: r(b) },
        Instr::CmpI { a, imm } => MicroOp::CmpI { a: r(a), imm },
        Instr::Lea { dst, base, disp } => MicroOp::Lea { dst: r(dst), base: r(base), disp: sx(disp) },
        Instr::Enter(frame) => MicroOp::Enter { frame },
        Instr::Leave => MicroOp::Leave,
        Instr::Jmp(target) => MicroOp::Jmp { target },
        Instr::JCond { cond, target } => MicroOp::JCond { cond, target },
        Instr::Call(target) => MicroOp::Call { target },
        Instr::CallR(src) => MicroOp::CallR { src: r(src) },
        Instr::Ret => MicroOp::Ret,
        Instr::JmpR(src) => MicroOp::JmpR { src: r(src) },
        Instr::Halt | Instr::Sys(_) | Instr::Trap(_) => return None,
    })
}

/// The peephole pass: collapses the loop-closing compare-and-branch
/// idioms into single superinstruction micro-ops. Only fault-free
/// constituents (register ALU, flag set, direct branch) are fused, so
/// a fused op never needs a mid-superinstruction fault state.
fn fuse(ops: Vec<Op>) -> Vec<Op> {
    let mut out = Vec::with_capacity(ops.len());
    let mut j = 0;
    while j < ops.len() {
        if j + 2 < ops.len() {
            if let (
                MicroOp::AddI { dst, imm: add_imm },
                MicroOp::CmpI { a, imm: cmp_imm },
                MicroOp::JCond { cond, target },
            ) = (ops[j].kind, ops[j + 1].kind, ops[j + 2].kind)
            {
                out.push(Op {
                    ip: ops[j].ip,
                    last_ip: ops[j + 2].ip,
                    next_ip: ops[j + 2].next_ip,
                    cont_ip: ops[j + 2].cont_ip,
                    cont_kind: ops[j + 2].cont_kind,
                    n: 3,
                    ic: IC_NONE,
                    cov_slot: 0,
                    kind: MicroOp::FusedLoopI { dst, add_imm, a, cmp_imm, cond, target },
                });
                j += 3;
                continue;
            }
        }
        if j + 1 < ops.len() {
            let pair = match (ops[j].kind, ops[j + 1].kind) {
                (MicroOp::CmpI { a, imm }, MicroOp::JCond { cond, target }) => {
                    Some(MicroOp::FusedCmpIJ { a, imm, cond, target })
                }
                (MicroOp::Cmp { a, b }, MicroOp::JCond { cond, target }) => {
                    Some(MicroOp::FusedCmpJ { a, b, cond, target })
                }
                _ => None,
            };
            if let Some(kind) = pair {
                out.push(Op {
                    ip: ops[j].ip,
                    last_ip: ops[j + 1].ip,
                    next_ip: ops[j + 1].next_ip,
                    cont_ip: ops[j + 1].cont_ip,
                    cont_kind: ops[j + 1].cont_kind,
                    n: 2,
                    ic: IC_NONE,
                    cov_slot: 0,
                    kind,
                });
                j += 2;
                continue;
            }
        }
        out.push(ops[j]);
        j += 1;
    }
    out
}

/// Compiles the straight-line region starting at `start_ip` into a
/// block, or `None` when the very first instruction already cannot be
/// lowered (the hot target is a syscall/trap/halt or undecodable).
///
/// A static `call` does not end the block: its successor is known at
/// compile time, so compilation **links** it — marks the op as
/// falling through (`cont_ip` = target, `cont_kind` = `Call`) and
/// continues lowering at the callee's entry, inlining the callee body
/// into the block. The op still reproduces the full call (push,
/// shadow stack, counters, event); only the round trip through the
/// dispatcher is saved. `ret`, `callr` and `jmpr` have dynamic
/// successors and stay terminal; `jmp` stays terminal too (a backward
/// jump to the block head becomes the in-block loop instead).
///
/// Compilation otherwise stops after a terminal transfer, at any
/// non-lowerable instruction, at [`MAX_BLOCK_OPS`], at the third
/// page, or at bytes that do not currently decode — the block simply
/// ends early and execution side-exits to tier 1 there. A final
/// peephole pass ([`fuse`]) then collapses compare-and-branch idioms
/// into superinstructions.
pub(crate) fn compile(mem: &Memory, start_ip: u32) -> Option<Block> {
    let gen = mem.code_generation();
    let mut pages: [(u32, u64); MAX_BLOCK_PAGES] = [(0, 0); MAX_BLOCK_PAGES];
    let mut npages = 0usize;
    let mut ops: Vec<Op> = Vec::new();
    let mut nics = 0usize;
    // Return addresses of linked calls whose matching `Ret` has not
    // been reached yet (compile-time call stack, innermost last).
    let mut call_rets: Vec<u32> = Vec::new();
    let mut ip = start_ip;
    while ops.len() < MAX_BLOCK_OPS {
        let Some((instr, len)) = decode_at(mem, ip) else { break };
        let Some(kind) = lower(instr) else { break };
        // Record the page(s) this encoding occupies; give up on the
        // region (ending the block) rather than track a third page.
        let last = ip.wrapping_add(len as u32 - 1);
        let mut fits = true;
        for addr in [ip, last] {
            let Ok(page) = mem.fetch_page(addr) else { fits = false; break };
            if pages[..npages].contains(&page) {
                continue;
            }
            if npages == MAX_BLOCK_PAGES {
                fits = false;
                break;
            }
            pages[npages] = page;
            npages += 1;
        }
        if !fits {
            break;
        }
        let next_ip = ip.wrapping_add(len as u32);
        let (cont_ip, cont_kind) = match kind {
            // Link the static call: execution continues at the callee.
            MicroOp::Call { target } if ops.len() + 1 < MAX_BLOCK_OPS => {
                call_rets.push(next_ip);
                (target, TransferKind::Call)
            }
            // Link the return matching an in-block call: it continues
            // at that call's return site. This is a *prediction*, not
            // an assumption — the runtime op compares the popped
            // target against it and side-exits on mismatch, so a
            // smashed return address behaves exactly as stepped code.
            MicroOp::Ret if ops.len() + 1 < MAX_BLOCK_OPS && !call_rets.is_empty() => {
                (call_rets.pop().expect("non-empty"), TransferKind::Ret)
            }
            _ => (next_ip, TransferKind::Sequential),
        };
        // Dynamic-transfer terminators get an inline cache; a linked
        // `ret` does not (its mismatch path — a smashed return
        // address — must stay an unpredicted terminal exit).
        let dynamic = matches!(kind, MicroOp::CallR { .. } | MicroOp::JmpR { .. })
            || (matches!(kind, MicroOp::Ret) && cont_kind == TransferKind::Sequential);
        let ic = if dynamic {
            nics += 1;
            (nics - 1) as u16
        } else {
            IC_NONE
        };
        // A static call's edge is fully known here: pre-resolve its
        // coverage-map slot so an attached sink can be bumped without
        // constructing the event.
        let cov_slot = match kind {
            MicroOp::Call { target } => edge_slot(ControlKind::Call as u8, ip, target) as u16,
            _ => 0,
        };
        ops.push(Op { ip, last_ip: ip, next_ip, cont_ip, cont_kind, n: 1, ic, cov_slot, kind });
        if kind.terminal() && cont_kind == TransferKind::Sequential {
            break;
        }
        ip = cont_ip;
    }
    // A linked call must have a follower inside the block (the exits
    // between ops continue at `cont_ip`, but a *natural end* exits at
    // the last op's own continuation, which the dispatcher would then
    // re-enter — unlink instead and let the call exit like a terminal).
    if let Some(last) = ops.last_mut() {
        if last.linked() {
            last.cont_ip = last.next_ip;
            last.cont_kind = TransferKind::Sequential;
        }
    }
    if ops.is_empty() {
        return None;
    }
    Some(Block {
        start_ip,
        gen,
        pages,
        npages: npages as u8,
        ops: fuse(ops),
        ics: vec![InlineCache::default(); nics],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Reg};
    use crate::mem::Perm;

    fn assemble(instrs: &[Instr]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in instrs {
            i.encode(&mut out);
        }
        out
    }

    fn mem_with(base: u32, instrs: &[Instr]) -> Memory {
        let mut mem = Memory::new();
        mem.map(base, 0x2000, Perm::RX).unwrap();
        mem.poke_bytes(base, &assemble(instrs)).unwrap();
        mem
    }

    #[test]
    fn compile_links_a_static_call_into_the_callee() {
        let mut mem = mem_with(
            0x1000,
            &[
                Instr::AddI { dst: Reg::R0, imm: 1 },
                Instr::CmpI { a: Reg::R0, imm: 10 },
                Instr::Call(0x2000),
                Instr::Nop, // reached only after the callee returns
                Instr::Ret, // top-level: no in-block call to link to
            ],
        );
        mem.poke_bytes(
            0x2000,
            &assemble(&[Instr::MovI { dst: Reg::R1, imm: 7 }, Instr::Ret]),
        )
        .unwrap();
        let block = compile(&mem, 0x1000).expect("block");
        // addi, cmpi, linked call, the callee inline, then the linked
        // return continues at the call's return site.
        assert_eq!(block.ops.len(), 7);
        assert_eq!(block.ops[0].ip, 0x1000);
        let call = block.ops[2];
        assert!(matches!(call.kind, MicroOp::Call { target: 0x2000 }));
        assert!(call.linked());
        assert_eq!(call.cont_ip, 0x2000);
        assert_eq!(call.cont_kind, TransferKind::Call);
        // The call's next_ip is still the pre-resolved return address.
        assert_eq!(call.next_ip, 0x1000 + 12 + 5);
        assert_eq!(block.ops[3].ip, 0x2000);
        // The callee's return links back to the call's return site...
        let ret = block.ops[4];
        assert!(matches!(ret.kind, MicroOp::Ret));
        assert!(ret.linked());
        assert_eq!(ret.cont_ip, call.next_ip);
        assert_eq!(ret.cont_kind, TransferKind::Ret);
        // ...where compilation resumed.
        assert_eq!(block.ops[5].ip, call.next_ip);
        assert!(matches!(block.ops[5].kind, MicroOp::Nop));
        // A return with no matching in-block call stays terminal.
        let top = block.ops[6];
        assert!(matches!(top.kind, MicroOp::Ret));
        assert!(!top.linked());
        assert_eq!(usize::from(block.npages), 2);
    }

    #[test]
    fn compile_unlinks_a_call_whose_target_cannot_follow() {
        // The call target is unmapped, so the callee cannot be inlined:
        // the call must fall back to a terminal block exit.
        let mem = mem_with(
            0x1000,
            &[
                Instr::AddI { dst: Reg::R0, imm: 1 },
                Instr::CmpI { a: Reg::R0, imm: 10 },
                Instr::Call(0x9000),
                Instr::Nop, // never reached by the block
            ],
        );
        let block = compile(&mem, 0x1000).expect("block");
        assert_eq!(block.ops.len(), 3);
        let call = block.ops[2];
        assert!(matches!(call.kind, MicroOp::Call { target: 0x9000 }));
        assert!(!call.linked());
        assert_eq!(call.cont_ip, call.next_ip);
        assert_eq!(usize::from(block.npages), 1);
    }

    #[test]
    fn fusion_collapses_the_loop_closing_triple() {
        let mem = mem_with(
            0x1000,
            &[
                Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 },
                Instr::CmpI { a: Reg::R0, imm: 0 },
                Instr::JCond { cond: Cond::Nz, target: 0x1000 },
                Instr::Sys(isa::sys::EXIT), // ends the block
            ],
        );
        let block = compile(&mem, 0x1000).expect("block");
        assert_eq!(block.ops.len(), 1);
        let op = block.ops[0];
        assert!(matches!(
            op.kind,
            MicroOp::FusedLoopI { dst: 0, a: 0, cond: Cond::Nz, target: 0x1000, .. }
        ));
        assert_eq!(op.n, 3);
        assert_eq!(op.ip, 0x1000);
        assert_eq!(op.last_ip, 0x1000 + 12); // the jcc
        assert_eq!(op.next_ip, 0x1000 + 12 + 5); // past the jcc
    }

    #[test]
    fn fusion_collapses_compare_and_branch_pairs() {
        let mem = mem_with(
            0x1000,
            &[
                Instr::CmpI { a: Reg::R1, imm: 7 },
                Instr::JCond { cond: Cond::Z, target: 0x1800 },
                Instr::Cmp { a: Reg::R1, b: Reg::R2 },
                Instr::JCond { cond: Cond::Lt, target: 0x1900 },
                Instr::Sys(isa::sys::EXIT),
            ],
        );
        let block = compile(&mem, 0x1000).expect("block");
        assert_eq!(block.ops.len(), 2);
        assert!(matches!(block.ops[0].kind, MicroOp::FusedCmpIJ { a: 1, imm: 7, .. }));
        assert_eq!(block.ops[0].n, 2);
        assert!(matches!(block.ops[1].kind, MicroOp::FusedCmpJ { a: 1, b: 2, .. }));
        assert_eq!(block.ops[1].n, 2);
    }

    #[test]
    fn compile_includes_terminal_jmp_and_conditional() {
        let mem = mem_with(
            0x1000,
            &[
                Instr::AddI { dst: Reg::R0, imm: 1 },
                Instr::JCond { cond: Cond::Nz, target: 0x1000 },
                Instr::Jmp(0x1000),
            ],
        );
        let block = compile(&mem, 0x1000).expect("block");
        // The conditional does not end the block; the jmp does.
        assert_eq!(block.ops.len(), 3);
        assert!(matches!(block.ops[2].kind, MicroOp::Jmp { target: 0x1000 }));
    }

    #[test]
    fn compile_refuses_unfusible_leaders() {
        let mem = mem_with(0x1000, &[Instr::Halt]);
        assert!(compile(&mem, 0x1000).is_none());
        let mem = mem_with(0x1000, &[Instr::Sys(isa::sys::EXIT)]);
        assert!(compile(&mem, 0x1000).is_none());
        // Unmapped address: nothing to compile.
        assert!(compile(&Memory::new(), 0x1000).is_none());
        // A `ret` leader, by contrast, is a valid one-op block.
        let mem = mem_with(0x1000, &[Instr::Ret]);
        let block = compile(&mem, 0x1000).expect("ret block");
        assert_eq!(block.ops.len(), 1);
        assert!(matches!(block.ops[0].kind, MicroOp::Ret));
    }

    #[test]
    fn blocks_validate_against_page_generations() {
        let mut mem = Memory::new();
        mem.map(0x1000, 0x1000, Perm::RWX).unwrap();
        mem.poke_bytes(0x1000, &assemble(&[Instr::Nop, Instr::Nop])).unwrap();
        let block = compile(&mem, 0x1000).expect("block");
        assert!(block.gen == mem.code_generation() && block.pages_valid(&mem));
        // A write to the page bumps its generation: stale.
        mem.write_u8(0x1800, 0x5a, Access::Write).unwrap();
        assert!(!block.pages_valid(&mem));
    }

    #[test]
    fn hotness_promotes_at_threshold_and_resets() {
        let mut engine = TierEngine::new();
        for _ in 0..HOT_THRESHOLD - 1 {
            assert!(!engine.note_hot(0x1000));
        }
        assert!(engine.note_hot(0x1000));
        engine.reset_hot(0x1000);
        assert!(!engine.note_hot(0x1000));
    }

    /// Two targets that deliberately index the same hotness set.
    fn aliasing_pair() -> (u32, u32) {
        let a = 0x1000u32;
        let set = mix(a) & (HOT_SLOTS - 1);
        let b = (a + 1..)
            .find(|&b| mix(b) & (HOT_SLOTS - 1) == set)
            .expect("an alias exists");
        (a, b)
    }

    #[test]
    fn aliasing_hot_targets_promote_independently() {
        // Regression: a direct-mapped table let two targets that alias
        // one entry alternately claim it from each other, so a
        // ping-pong pair (dispatcher + handler, caller + callee) never
        // accumulated HOT_THRESHOLD and neither ever compiled. Each
        // way now stores and verifies the full ip.
        let (a, b) = aliasing_pair();
        let mut engine = TierEngine::new();
        let (mut hot_a, mut hot_b) = (false, false);
        for _ in 0..HOT_THRESHOLD {
            hot_a |= engine.note_hot(a);
            hot_b |= engine.note_hot(b);
        }
        assert!(hot_a, "aliased target a starved of its counter");
        assert!(hot_b, "aliased target b starved of its counter");
    }

    #[test]
    fn third_claimant_displaces_the_coldest_way_only() {
        let (a, b) = aliasing_pair();
        let set = mix(a) & (HOT_SLOTS - 1);
        let c = (b + 1..)
            .find(|&c| mix(c) & (HOT_SLOTS - 1) == set)
            .expect("a third alias exists");
        let mut engine = TierEngine::new();
        for _ in 0..5 {
            engine.note_hot(a);
        }
        for _ in 0..3 {
            engine.note_hot(b);
        }
        // c displaces b (the colder way); a's heat survives and still
        // reaches the threshold on schedule.
        assert!(!engine.note_hot(c));
        for _ in 0..HOT_THRESHOLD - 5 - 1 {
            assert!(!engine.note_hot(a));
        }
        assert!(engine.note_hot(a));
    }

    #[test]
    fn compile_assigns_inline_caches_to_dynamic_terminators() {
        for (instrs, want_ops) in [
            (vec![Instr::Nop, Instr::CallR(Reg::R1)], 2),
            (vec![Instr::Nop, Instr::JmpR(Reg::R2)], 2),
            (vec![Instr::Nop, Instr::Ret], 2),
        ] {
            let mem = mem_with(0x1000, &instrs);
            let block = compile(&mem, 0x1000).expect("block");
            assert_eq!(block.ops.len(), want_ops);
            assert_eq!(block.ics.len(), 1, "one dynamic terminator, one cache");
            assert_eq!(block.ops[0].ic, IC_NONE);
            assert_eq!(block.ops[1].ic, 0);
        }
    }

    #[test]
    fn linked_calls_and_returns_carry_no_inline_cache() {
        let mut mem = mem_with(
            0x1000,
            &[Instr::Call(0x2000), Instr::Ret], // top-level ret: unlinked
        );
        mem.poke_bytes(0x2000, &assemble(&[Instr::Ret])).unwrap();
        let block = compile(&mem, 0x1000).expect("block");
        // linked call, linked ret, top-level (unlinked) ret.
        assert_eq!(block.ops.len(), 3);
        assert!(block.ops[0].linked());
        assert_eq!(block.ops[0].ic, IC_NONE, "linked call predicts statically");
        assert!(block.ops[1].linked());
        assert_eq!(block.ops[1].ic, IC_NONE, "linked ret's mismatch path stays unpredicted");
        assert!(!block.ops[2].linked());
        assert_eq!(block.ops[2].ic, 0);
        assert_eq!(block.ics.len(), 1);
        // The static call's coverage slot is pre-resolved to exactly
        // the slot the event path would hash to.
        assert_eq!(
            usize::from(block.ops[0].cov_slot),
            edge_slot(ControlKind::Call as u8, 0x1000, 0x2000)
        );
    }

    #[test]
    fn ic_promotes_hits_and_goes_megamorphic() {
        let mut mem = Memory::new();
        mem.map(0x1000, 0x8000, Perm::RX).unwrap();
        // Dispatcher block: a bare jmpr (ic 0).
        mem.poke_bytes(0x1000, &assemble(&[Instr::JmpR(Reg::R0)])).unwrap();
        // Six distinct targets, each its own one-op block.
        let targets: Vec<u32> = (0..6).map(|k| 0x2000 + k * 0x100).collect();
        for &t in &targets {
            mem.poke_bytes(t, &assemble(&[Instr::Ret])).unwrap();
        }
        let mut engine = TierEngine::new();
        assert!(engine.compile_into(&mem, 0x1000));
        let from = engine.lookup_slot(0x1000).expect("dispatcher block");
        assert!(engine.compile_into(&mem, targets[0]));
        let succ = engine.lookup_slot(targets[0]).expect("target block");

        // Cold cache: miss, then promote, then hit.
        assert!(matches!(engine.ic_probe(from, 0x1000, 0, targets[0]), IcProbe::Miss));
        assert!(matches!(
            engine.ic_promote(from, 0x1000, 0, targets[0], succ),
            IcPromotion::Installed
        ));
        assert!(matches!(
            engine.ic_probe(from, 0x1000, 0, targets[0]),
            IcProbe::Hit(s) if s == succ
        ));

        // Fill the remaining ways; the (IC_WAYS+1)-th distinct target
        // flips the cache megamorphic, and it stays that way.
        for &t in &targets[1..IC_WAYS] {
            assert!(matches!(
                engine.ic_promote(from, 0x1000, 0, t, succ),
                IcPromotion::Installed
            ));
        }
        assert!(matches!(
            engine.ic_promote(from, 0x1000, 0, targets[IC_WAYS], succ),
            IcPromotion::Megamorphic
        ));
        assert!(matches!(engine.ic_probe(from, 0x1000, 0, targets[0]), IcProbe::Mega));
    }

    #[test]
    fn ic_hit_requires_a_live_matching_successor() {
        let mut mem = Memory::new();
        mem.map(0x1000, 0x4000, Perm::RX).unwrap();
        mem.poke_bytes(0x1000, &assemble(&[Instr::JmpR(Reg::R0)])).unwrap();
        mem.poke_bytes(0x2000, &assemble(&[Instr::Ret])).unwrap();
        let mut engine = TierEngine::new();
        assert!(engine.compile_into(&mem, 0x1000));
        assert!(engine.compile_into(&mem, 0x2000));
        let from = engine.lookup_slot(0x1000).unwrap();
        let succ = engine.lookup_slot(0x2000).unwrap();
        assert!(matches!(
            engine.ic_promote(from, 0x1000, 0, 0x2000, succ),
            IcPromotion::Installed
        ));
        assert!(matches!(engine.ic_probe(from, 0x1000, 0, 0x2000), IcProbe::Hit(_)));
        // A different runtime target (a smashed pointer) never hits a
        // cache entry installed for another address.
        assert!(matches!(engine.ic_probe(from, 0x1000, 0, 0x2400), IcProbe::Miss));
        // Dropping the predicted block (invalidation, eviction) turns
        // the stale entry into a miss, not a hit on dead state.
        engine.invalidate(0x2000);
        assert!(matches!(engine.ic_probe(from, 0x1000, 0, 0x2000), IcProbe::Miss));
    }

    #[test]
    fn index_mix_separates_low_bit_aliases() {
        // 0x1000 and 0x0040_0000 share low bits — the classic
        // text/module alias; the mixed index must differ.
        assert_ne!(
            TierEngine::block_slot(0x1000),
            TierEngine::block_slot(0x0040_0000)
        );
    }
}
