//! # swsec-vm — the execution platform of the swsec laboratory
//!
//! A 32-bit little-endian von Neumann virtual machine modelled on the
//! platform described in Section II of Piessens & Verbauwhede,
//! *Software Security: Vulnerabilities and Countermeasures for Two
//! Attacker Models* (DATE 2016):
//!
//! * a single 2³²-byte virtual address space holding code, data and the
//!   call stack ([`mem`]);
//! * 32-bit registers including a stack pointer and base pointer, with a
//!   downward-growing stack whose activation records hold saved base
//!   pointers and **return addresses** ([`cpu`]);
//! * a variable-length instruction set in which data and code are just
//!   bytes ([`isa`]);
//! * I/O channels as the program's only interface to the outside world
//!   ([`io`]) — the I/O attacker's entire surface;
//! * optional platform protections: page permissions / DEP ([`mem`]),
//!   a hardware shadow stack ([`cpu`]), and protected-module memory
//!   access control ([`policy`]).
//!
//! The machine is intentionally *attackable*: with protections switched
//! off it faithfully reproduces the platform weaknesses every classic
//! low-level attack relies on.
//!
//! ## Example
//!
//! ```
//! use swsec_vm::prelude::*;
//!
//! let mut code = Vec::new();
//! Instr::MovI { dst: Reg::R0, imm: 7 }.encode(&mut code);
//! Instr::Sys(swsec_vm::isa::sys::EXIT).encode(&mut code);
//!
//! let mut m = Machine::new();
//! m.mem_mut().map(0x1000, 0x1000, Perm::RX)?;
//! m.mem_mut().poke_bytes(0x1000, &code)?;
//! m.set_ip(0x1000);
//! assert_eq!(m.run(10), RunOutcome::Halted(7));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod cpu;
pub mod io;
pub mod isa;
pub mod mem;
pub mod policy;
pub mod profile;
pub mod tier;
pub mod trace;

/// The names almost every user of this crate needs.
pub mod prelude {
    pub use crate::cpu::{Fault, Machine, MachineSnapshot, RunOutcome, StepResult};
    pub use crate::io::IoBus;
    pub use crate::isa::{Instr, Reg};
    pub use crate::mem::{Access, Memory, Perm, RestoreStats};
    pub use crate::policy::{ProtectedRegion, ProtectionMap, ReentryPolicy};
}
