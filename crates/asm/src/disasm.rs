//! Linear-sweep disassembler.
//!
//! Decodes a byte image back into instructions, tolerating data mixed
//! into the instruction stream (undecodable bytes become `.byte` lines).
//! Because the ISA has variable-length instructions, sweeping from a
//! different start offset yields a different instruction stream — the
//! property the gadget scanner in `swsec-attacks` exploits by sweeping
//! from *every* offset.

use std::fmt;

use swsec_vm::isa::Instr;

/// One disassembled item: either an instruction or a raw data byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisasmItem {
    /// A decoded instruction.
    Instr(Instr),
    /// A byte that does not start a valid instruction.
    Data(u8),
}

/// A disassembled line: address, encoded length and the item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisasmLine {
    /// Address of the first byte.
    pub addr: u32,
    /// Number of bytes consumed.
    pub len: usize,
    /// The decoded content.
    pub item: DisasmItem,
}

impl fmt::Display for DisasmLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.item {
            DisasmItem::Instr(i) => write!(f, "{:#010x}: {}", self.addr, i),
            DisasmItem::Data(b) => write!(f, "{:#010x}: .byte {b:#04x}", self.addr),
        }
    }
}

/// Disassembles `bytes` as loaded at `base`, sweeping linearly from the
/// first byte. Undecodable bytes are emitted one at a time as
/// [`DisasmItem::Data`] so the sweep always makes progress.
///
/// # Examples
///
/// ```
/// use swsec_vm::isa::{Instr, Reg};
///
/// let mut bytes = Vec::new();
/// Instr::Push(Reg::Bp).encode(&mut bytes);
/// Instr::Ret.encode(&mut bytes);
/// let lines = swsec_asm::disassemble(&bytes, 0x1000);
/// assert_eq!(lines.len(), 2);
/// assert_eq!(lines[1].to_string(), "0x00001002: ret");
/// ```
pub fn disassemble(bytes: &[u8], base: u32) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        match Instr::decode(&bytes[offset..]) {
            Ok((instr, len)) => {
                out.push(DisasmLine {
                    addr: base.wrapping_add(offset as u32),
                    len,
                    item: DisasmItem::Instr(instr),
                });
                offset += len;
            }
            Err(_) => {
                out.push(DisasmLine {
                    addr: base.wrapping_add(offset as u32),
                    len: 1,
                    item: DisasmItem::Data(bytes[offset]),
                });
                offset += 1;
            }
        }
    }
    out
}

/// Renders a full listing with hex bytes alongside each line, in the
/// style of the paper's Figure 1(b).
pub fn format_listing(bytes: &[u8], base: u32) -> String {
    let mut out = String::new();
    for line in disassemble(bytes, base) {
        let offset = line.addr.wrapping_sub(base) as usize;
        let hex: Vec<String> = bytes[offset..offset + line.len]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        let text = match line.item {
            DisasmItem::Instr(i) => i.to_string(),
            DisasmItem::Data(b) => format!(".byte {b:#04x}"),
        };
        out.push_str(&format!(
            "{:#010x}:  {:<18} {}\n",
            line.addr,
            hex.join(" "),
            text
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_vm::isa::Reg;

    #[test]
    fn sweep_decodes_instruction_sequence() {
        let mut bytes = Vec::new();
        Instr::Enter(0x18).encode(&mut bytes);
        Instr::Lea { dst: Reg::R0, base: Reg::Bp, disp: -16 }.encode(&mut bytes);
        Instr::Leave.encode(&mut bytes);
        Instr::Ret.encode(&mut bytes);
        let lines = disassemble(&bytes, 0x0804_83f2);
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].addr, 0x0804_83f2);
        assert_eq!(lines[0].item, DisasmItem::Instr(Instr::Enter(0x18)));
        assert_eq!(lines[3].item, DisasmItem::Instr(Instr::Ret));
    }

    #[test]
    fn invalid_bytes_become_data_lines() {
        let bytes = vec![0xFF, 0x00]; // invalid, then nop
        let lines = disassemble(&bytes, 0);
        assert_eq!(lines[0].item, DisasmItem::Data(0xFF));
        assert_eq!(lines[1].item, DisasmItem::Instr(Instr::Nop));
    }

    #[test]
    fn truncated_tail_becomes_data() {
        // A lone MOVI opcode byte with no immediate following.
        let bytes = vec![swsec_vm::isa::opcode::MOVI];
        let lines = disassemble(&bytes, 0);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].item, DisasmItem::Data(swsec_vm::isa::opcode::MOVI));
    }

    #[test]
    fn listing_contains_hex_and_mnemonics() {
        let mut bytes = Vec::new();
        Instr::Push(Reg::Bp).encode(&mut bytes);
        let listing = format_listing(&bytes, 0x1000);
        assert!(listing.contains("push bp"));
        assert!(listing.contains("08 09"));
    }

    #[test]
    fn different_offsets_yield_different_streams() {
        let mut bytes = Vec::new();
        // The immediate contains a RET opcode byte.
        Instr::MovI {
            dst: Reg::R0,
            imm: u32::from_le_bytes([swsec_vm::isa::opcode::RET, 0, 0, 0]),
        }
        .encode(&mut bytes);
        let from_zero = disassemble(&bytes, 0);
        assert_eq!(from_zero.len(), 1);
        let from_two = disassemble(&bytes[2..], 2);
        assert_eq!(from_two[0].item, DisasmItem::Instr(Instr::Ret));
    }
}
