//! # swsec-asm — assembler and disassembler for the swsec VM
//!
//! Turns textual assembly into loadable images ([`assemble`]) and byte
//! images back into listings ([`disassemble`], [`format_listing`]).
//! Shellcode in `swsec-attacks`, the runtime stubs emitted by
//! `swsec-minc`, and many tests are written in this assembly dialect.
//!
//! ```
//! use swsec_vm::prelude::*;
//!
//! let image = swsec_asm::assemble(
//!     ".org 0x1000\n\
//!      movi r0, 41\n\
//!      addi r0, 1\n\
//!      sys 0\n",
//! )?;
//!
//! let mut m = Machine::new();
//! m.mem_mut().map(image.base, image.bytes.len() as u32, Perm::RX)?;
//! m.mem_mut().poke_bytes(image.base, &image.bytes)?;
//! m.set_ip(image.base);
//! assert_eq!(m.run(10), RunOutcome::Halted(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod asm;
mod disasm;

pub use asm::{assemble, AsmError, AsmErrorKind, AsmOutput};
pub use disasm::{disassemble, format_listing, DisasmItem, DisasmLine};
