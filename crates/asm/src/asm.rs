//! The two-pass assembler.
//!
//! Syntax, one statement per line (`;` starts a comment):
//!
//! ```text
//! .org 0x1000          ; base address (must precede any emission)
//! start:               ; a label
//!     movi r0, 42
//!     movi r1, msg     ; labels are plain 32-bit immediates
//!     cmpi r0, 0
//!     jz   done
//!     call start
//! done:
//!     halt
//! msg:
//!     .ascii "hello"   ; raw bytes
//!     .byte 0, 0xff
//!     .word 0xdeadbeef
//!     .space 16        ; 16 zero bytes
//! ```
//!
//! Memory operands are written `[reg+disp]`, `[reg-disp]` or `[reg]`,
//! matching the disassembler's output so that listings re-assemble.

use std::collections::BTreeMap;
use std::fmt;

use swsec_vm::isa::{AluOp, Cond, Instr, Reg};

/// The result of assembling a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmOutput {
    /// Load address of the first emitted byte.
    pub base: u32,
    /// The raw image.
    pub bytes: Vec<u8>,
    /// Every label with its absolute address.
    pub labels: BTreeMap<String, u32>,
}

impl AsmOutput {
    /// Address of a label.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] with [`AsmErrorKind::UnknownLabel`] if no
    /// such label was defined.
    pub fn label(&self, name: &str) -> Result<u32, AsmError> {
        self.labels.get(name).copied().ok_or_else(|| AsmError {
            line: 0,
            kind: AsmErrorKind::UnknownLabel(name.to_string()),
        })
    }

    /// Address one past the last emitted byte.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.base.wrapping_add(self.bytes.len() as u32)
    }

    /// The label set as a profiler symbol table: each label names the
    /// address range up to the next label (or the image end), so
    /// sampled guest PCs resolve to the enclosing label. Labels are
    /// the assembler's only notion of "function"; data labels resolve
    /// too, which is exactly what you want when a sample lands in a
    /// gadget or injected payload.
    #[must_use]
    pub fn symbol_table(&self) -> swsec_obs::SymbolTable {
        swsec_obs::SymbolTable::from_labels(
            self.labels.iter().map(|(name, addr)| (name.clone(), *addr)),
            self.end(),
        )
    }
}

/// What went wrong while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings are given in each variant's doc
pub enum AsmErrorKind {
    /// A mnemonic that is not part of the ISA or directive set.
    UnknownMnemonic(String),
    /// An operand that could not be parsed.
    BadOperand(String),
    /// Wrong number of operands for the mnemonic.
    WrongArity { mnemonic: String, expected: usize, got: usize },
    /// Reference to a label that is never defined.
    UnknownLabel(String),
    /// The same label defined twice.
    DuplicateLabel(String),
    /// `.org` after bytes were already emitted.
    LateOrg,
    /// A displacement outside the i16 range of load/store encodings.
    DispOutOfRange(i64),
    /// A malformed string literal in `.ascii`.
    BadString(String),
}

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for errors without a location).
    pub line: usize,
    /// The specific problem.
    pub kind: AsmErrorKind,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let loc = if self.line > 0 {
            format!("line {}: ", self.line)
        } else {
            String::new()
        };
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "{loc}unknown mnemonic `{m}`"),
            AsmErrorKind::BadOperand(o) => write!(f, "{loc}cannot parse operand `{o}`"),
            AsmErrorKind::WrongArity { mnemonic, expected, got } => {
                write!(f, "{loc}`{mnemonic}` takes {expected} operands, got {got}")
            }
            AsmErrorKind::UnknownLabel(l) => write!(f, "{loc}undefined label `{l}`"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "{loc}label `{l}` defined twice"),
            AsmErrorKind::LateOrg => write!(f, "{loc}`.org` must precede any emitted bytes"),
            AsmErrorKind::DispOutOfRange(d) => {
                write!(f, "{loc}displacement {d} outside the ±32767 encoding range")
            }
            AsmErrorKind::BadString(s) => write!(f, "{loc}malformed string literal {s}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An operand as written in the source, before label resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Reg(Reg),
    Imm(i64),
    Label(String),
    Mem { base: Reg, disp: i64 },
    Str(String),
}

fn parse_reg(s: &str) -> Option<Reg> {
    Some(match s {
        "r0" => Reg::R0,
        "r1" => Reg::R1,
        "r2" => Reg::R2,
        "r3" => Reg::R3,
        "r4" => Reg::R4,
        "r5" => Reg::R5,
        "r6" => Reg::R6,
        "r7" => Reg::R7,
        "sp" => Reg::Sp,
        "bp" => Reg::Bp,
        _ => return None,
    })
}

fn parse_int(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(ch) = body.strip_prefix('\'') {
        let ch = ch.strip_suffix('\'')?;
        let mut chars = ch.chars();
        let c = chars.next()?;
        if chars.next().is_some() {
            return None;
        }
        c as i64
    } else {
        body.replace('_', "").parse::<i64>().ok()?
    };
    Some(if neg { -value } else { value })
}

fn parse_operand(s: &str) -> Result<Operand, AsmErrorKind> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| AsmErrorKind::BadOperand(s.to_string()))?
            .trim();
        // Forms: reg, reg+disp, reg-disp.
        let (reg_part, disp) = if let Some(idx) = inner.find(['+', '-']) {
            let (r, d) = inner.split_at(idx);
            let disp = parse_int(d.trim()).ok_or_else(|| AsmErrorKind::BadOperand(s.to_string()))?;
            (r.trim(), disp)
        } else {
            (inner, 0)
        };
        let base = parse_reg(reg_part).ok_or_else(|| AsmErrorKind::BadOperand(s.to_string()))?;
        return Ok(Operand::Mem { base, disp });
    }
    if s.starts_with('"') {
        let body = s
            .strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .ok_or_else(|| AsmErrorKind::BadString(s.to_string()))?;
        return Ok(Operand::Str(unescape(body).ok_or_else(|| AsmErrorKind::BadString(s.to_string()))?));
    }
    if let Some(reg) = parse_reg(s) {
        return Ok(Operand::Reg(reg));
    }
    if let Some(imm) = parse_int(s) {
        return Ok(Operand::Imm(imm));
    }
    if s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.') && !s.is_empty() {
        return Ok(Operand::Label(s.to_string()));
    }
    Err(AsmErrorKind::BadOperand(s.to_string()))
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '0' => out.push('\0'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Splits the operand field on commas that are not inside quotes or
/// brackets.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut cur = String::new();
    let mut prev_escape = false;
    for c in s.chars() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth = depth.saturating_sub(1),
            ',' if !in_str && depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
                prev_escape = false;
                continue;
            }
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

#[derive(Debug)]
enum Stmt {
    Label(String),
    Instr { mnemonic: String, operands: Vec<Operand> },
    Org(u32),
    Byte(Vec<Operand>),
    Word(Vec<Operand>),
    Ascii(String),
    Space(u32),
}

fn parse_line(line: &str, lineno: usize) -> Result<Vec<Stmt>, AsmError> {
    let code = match line.find(';') {
        Some(idx) => &line[..idx],
        None => line,
    };
    let code = code.trim();
    if code.is_empty() {
        return Ok(Vec::new());
    }
    let mut stmts = Vec::new();
    let mut rest = code;
    // Leading labels (possibly several on one line).
    while let Some(idx) = rest.find(':') {
        let candidate = rest[..idx].trim();
        if !candidate.is_empty()
            && candidate
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            && !rest[..idx].contains(char::is_whitespace)
        {
            stmts.push(Stmt::Label(candidate.to_string()));
            rest = rest[idx + 1..].trim_start();
        } else {
            break;
        }
    }
    if rest.is_empty() {
        return Ok(stmts);
    }
    let (mnemonic, args) = match rest.find(char::is_whitespace) {
        Some(idx) => (&rest[..idx], rest[idx..].trim()),
        None => (rest, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let raw_ops = if args.is_empty() {
        Vec::new()
    } else {
        split_operands(args)
    };
    let mut operands = Vec::with_capacity(raw_ops.len());
    for raw in &raw_ops {
        operands.push(parse_operand(raw).map_err(|kind| AsmError { line: lineno, kind })?);
    }
    let stmt = match mnemonic.as_str() {
        ".org" => match operands.as_slice() {
            [Operand::Imm(v)] => Stmt::Org(*v as u32),
            _ => {
                return Err(AsmError {
                    line: lineno,
                    kind: AsmErrorKind::BadOperand(args.to_string()),
                })
            }
        },
        ".byte" => Stmt::Byte(operands),
        ".word" => Stmt::Word(operands),
        ".ascii" => match operands.as_slice() {
            [Operand::Str(s)] => Stmt::Ascii(s.clone()),
            _ => {
                return Err(AsmError {
                    line: lineno,
                    kind: AsmErrorKind::BadString(args.to_string()),
                })
            }
        },
        ".space" => match operands.as_slice() {
            [Operand::Imm(v)] if *v >= 0 => Stmt::Space(*v as u32),
            _ => {
                return Err(AsmError {
                    line: lineno,
                    kind: AsmErrorKind::BadOperand(args.to_string()),
                })
            }
        },
        _ => Stmt::Instr { mnemonic, operands },
    };
    stmts.push(stmt);
    Ok(stmts)
}

/// Size of a statement in bytes, for the label-address pass.
fn stmt_len(stmt: &Stmt, lineno: usize) -> Result<u32, AsmError> {
    Ok(match stmt {
        Stmt::Label(_) | Stmt::Org(_) => 0,
        Stmt::Byte(ops) => ops.len() as u32,
        Stmt::Word(ops) => 4 * ops.len() as u32,
        Stmt::Ascii(s) => s.len() as u32,
        Stmt::Space(n) => *n,
        Stmt::Instr { mnemonic, .. } => mnemonic_len(mnemonic).ok_or_else(|| AsmError {
            line: lineno,
            kind: AsmErrorKind::UnknownMnemonic(mnemonic.clone()),
        })? as u32,
    })
}

fn mnemonic_len(m: &str) -> Option<usize> {
    Some(match m {
        "nop" | "halt" | "ret" | "leave" => 1,
        "mov" | "push" | "pop" | "callr" | "jmpr" | "sys" | "trap" | "cmp" | "add" | "sub"
        | "mul" | "divu" | "divs" | "modu" | "mods" | "and" | "or" | "xor" | "shl" | "shr"
        | "sar" => 2,
        "load" | "store" | "loadb" | "storeb" | "lea" => 4,
        "pushi" | "jmp" | "jz" | "jnz" | "jlt" | "jge" | "jle" | "jgt" | "jb" | "jae" | "call"
        | "enter" => 5,
        "movi" | "addi" | "cmpi" => 6,
        _ => return None,
    })
}

fn alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "divu" => AluOp::DivU,
        "divs" => AluOp::DivS,
        "modu" => AluOp::ModU,
        "mods" => AluOp::ModS,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sar" => AluOp::Sar,
        _ => return None,
    })
}

fn cond(m: &str) -> Option<Cond> {
    Some(match m {
        "jz" => Cond::Z,
        "jnz" => Cond::Nz,
        "jlt" => Cond::Lt,
        "jge" => Cond::Ge,
        "jle" => Cond::Le,
        "jgt" => Cond::Gt,
        "jb" => Cond::B,
        "jae" => Cond::Ae,
        _ => return None,
    })
}

struct Resolver<'a> {
    labels: &'a BTreeMap<String, u32>,
    line: usize,
}

impl Resolver<'_> {
    fn imm(&self, op: &Operand) -> Result<u32, AsmError> {
        match op {
            Operand::Imm(v) => Ok(*v as u32),
            Operand::Label(name) => self.labels.get(name).copied().ok_or_else(|| AsmError {
                line: self.line,
                kind: AsmErrorKind::UnknownLabel(name.clone()),
            }),
            other => Err(self.bad(other)),
        }
    }

    fn reg(&self, op: &Operand) -> Result<Reg, AsmError> {
        match op {
            Operand::Reg(r) => Ok(*r),
            other => Err(self.bad(other)),
        }
    }

    fn mem(&self, op: &Operand) -> Result<(Reg, i16), AsmError> {
        match op {
            Operand::Mem { base, disp } => {
                let disp16 = i16::try_from(*disp).map_err(|_| AsmError {
                    line: self.line,
                    kind: AsmErrorKind::DispOutOfRange(*disp),
                })?;
                Ok((*base, disp16))
            }
            other => Err(self.bad(other)),
        }
    }

    fn bad(&self, op: &Operand) -> AsmError {
        AsmError {
            line: self.line,
            kind: AsmErrorKind::BadOperand(format!("{op:?}")),
        }
    }
}

fn encode_instr(
    mnemonic: &str,
    operands: &[Operand],
    resolver: &Resolver<'_>,
) -> Result<Instr, AsmError> {
    let arity_err = |expected: usize| AsmError {
        line: resolver.line,
        kind: AsmErrorKind::WrongArity {
            mnemonic: mnemonic.to_string(),
            expected,
            got: operands.len(),
        },
    };
    let need = |n: usize| -> Result<(), AsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(arity_err(n))
        }
    };
    let instr = match mnemonic {
        "nop" => {
            need(0)?;
            Instr::Nop
        }
        "halt" => {
            need(0)?;
            Instr::Halt
        }
        "ret" => {
            need(0)?;
            Instr::Ret
        }
        "leave" => {
            need(0)?;
            Instr::Leave
        }
        "movi" => {
            need(2)?;
            Instr::MovI { dst: resolver.reg(&operands[0])?, imm: resolver.imm(&operands[1])? }
        }
        "mov" => {
            need(2)?;
            Instr::Mov { dst: resolver.reg(&operands[0])?, src: resolver.reg(&operands[1])? }
        }
        "load" | "loadb" | "lea" => {
            need(2)?;
            let dst = resolver.reg(&operands[0])?;
            let (base, disp) = resolver.mem(&operands[1])?;
            match mnemonic {
                "load" => Instr::Load { dst, base, disp },
                "loadb" => Instr::LoadB { dst, base, disp },
                _ => Instr::Lea { dst, base, disp },
            }
        }
        "store" | "storeb" => {
            need(2)?;
            let (base, disp) = resolver.mem(&operands[0])?;
            let src = resolver.reg(&operands[1])?;
            if mnemonic == "store" {
                Instr::Store { base, disp, src }
            } else {
                Instr::StoreB { base, disp, src }
            }
        }
        "push" => {
            need(1)?;
            Instr::Push(resolver.reg(&operands[0])?)
        }
        "pop" => {
            need(1)?;
            Instr::Pop(resolver.reg(&operands[0])?)
        }
        "pushi" => {
            need(1)?;
            Instr::PushI(resolver.imm(&operands[0])?)
        }
        "addi" => {
            need(2)?;
            Instr::AddI { dst: resolver.reg(&operands[0])?, imm: resolver.imm(&operands[1])? }
        }
        "cmp" => {
            need(2)?;
            Instr::Cmp { a: resolver.reg(&operands[0])?, b: resolver.reg(&operands[1])? }
        }
        "cmpi" => {
            need(2)?;
            Instr::CmpI { a: resolver.reg(&operands[0])?, imm: resolver.imm(&operands[1])? }
        }
        "jmp" => {
            need(1)?;
            Instr::Jmp(resolver.imm(&operands[0])?)
        }
        "call" => {
            need(1)?;
            Instr::Call(resolver.imm(&operands[0])?)
        }
        "callr" => {
            need(1)?;
            Instr::CallR(resolver.reg(&operands[0])?)
        }
        "jmpr" => {
            need(1)?;
            Instr::JmpR(resolver.reg(&operands[0])?)
        }
        "enter" => {
            need(1)?;
            Instr::Enter(resolver.imm(&operands[0])?)
        }
        "sys" => {
            need(1)?;
            Instr::Sys(resolver.imm(&operands[0])? as u8)
        }
        "trap" => {
            need(1)?;
            Instr::Trap(resolver.imm(&operands[0])? as u8)
        }
        _ => {
            if let Some(op) = alu_op(mnemonic) {
                need(2)?;
                Instr::Alu {
                    op,
                    dst: resolver.reg(&operands[0])?,
                    src: resolver.reg(&operands[1])?,
                }
            } else if let Some(c) = cond(mnemonic) {
                need(1)?;
                Instr::JCond { cond: c, target: resolver.imm(&operands[0])? }
            } else {
                return Err(AsmError {
                    line: resolver.line,
                    kind: AsmErrorKind::UnknownMnemonic(mnemonic.to_string()),
                });
            }
        }
    };
    Ok(instr)
}

/// Assembles a complete source file into a loadable image.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: unknown mnemonics, bad
/// operands, undefined or duplicate labels, late `.org`.
///
/// # Examples
///
/// ```
/// let out = swsec_asm::assemble(
///     ".org 0x1000\n\
///      start: movi r0, 1\n\
///      sys 0            ; exit(1)\n",
/// )?;
/// assert_eq!(out.base, 0x1000);
/// assert_eq!(out.label("start")?, 0x1000);
/// # Ok::<(), swsec_asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<AsmOutput, AsmError> {
    let mut stmts = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let lineno = idx + 1;
        for stmt in parse_line(line, lineno)? {
            stmts.push((lineno, stmt));
        }
    }

    // Pass 1: label addresses.
    let mut labels = BTreeMap::new();
    let mut base = 0u32;
    let mut pc = 0u32;
    let mut emitted = false;
    for (lineno, stmt) in &stmts {
        match stmt {
            Stmt::Org(addr) => {
                if emitted {
                    return Err(AsmError { line: *lineno, kind: AsmErrorKind::LateOrg });
                }
                base = *addr;
                pc = *addr;
            }
            Stmt::Label(name) => {
                if labels.insert(name.clone(), pc).is_some() {
                    return Err(AsmError {
                        line: *lineno,
                        kind: AsmErrorKind::DuplicateLabel(name.clone()),
                    });
                }
            }
            other => {
                let len = stmt_len(other, *lineno)?;
                if len > 0 {
                    emitted = true;
                }
                pc = pc.wrapping_add(len);
            }
        }
    }

    // Pass 2: encoding.
    let mut bytes = Vec::new();
    for (lineno, stmt) in &stmts {
        let resolver = Resolver { labels: &labels, line: *lineno };
        match stmt {
            Stmt::Org(_) | Stmt::Label(_) => {}
            Stmt::Byte(ops) => {
                for op in ops {
                    bytes.push(resolver.imm(op)? as u8);
                }
            }
            Stmt::Word(ops) => {
                for op in ops {
                    bytes.extend_from_slice(&resolver.imm(op)?.to_le_bytes());
                }
            }
            Stmt::Ascii(s) => bytes.extend_from_slice(s.as_bytes()),
            Stmt::Space(n) => bytes.extend(std::iter::repeat_n(0u8, *n as usize)),
            Stmt::Instr { mnemonic, operands } => {
                let instr = encode_instr(mnemonic, operands, &resolver)?;
                instr.encode(&mut bytes);
            }
        }
    }
    Ok(AsmOutput { base, bytes, labels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_vm::isa::Instr;

    #[test]
    fn assembles_minimal_program() {
        let out = assemble("movi r0, 42\nsys 0\n").unwrap();
        let (i, _) = Instr::decode(&out.bytes).unwrap();
        assert_eq!(i, Instr::MovI { dst: Reg::R0, imm: 42 });
    }

    #[test]
    fn org_sets_base_and_labels_are_absolute() {
        let out = assemble(
            ".org 0x1000\n\
             loop: nop\n\
             jmp loop\n",
        )
        .unwrap();
        assert_eq!(out.base, 0x1000);
        assert_eq!(out.label("loop").unwrap(), 0x1000);
        // jmp encodes the absolute label address.
        let (i, _) = Instr::decode(&out.bytes[1..]).unwrap();
        assert_eq!(i, Instr::Jmp(0x1000));
    }

    #[test]
    fn symbol_table_covers_labels_to_image_end() {
        let out = assemble(
            ".org 0x1000\n\
             main: nop\n\
             nop\n\
             gadget: nop\n\
             nop\n",
        )
        .unwrap();
        assert_eq!(out.end(), 0x1004);
        let table = out.symbol_table();
        assert_eq!(table.resolve(0x1000), Some("main"));
        assert_eq!(table.resolve(0x1001), Some("main"));
        assert_eq!(table.resolve(0x1002), Some("gadget"));
        assert_eq!(table.resolve(0x1003), Some("gadget"));
        assert_eq!(table.resolve(0x1004), None);
    }

    #[test]
    fn forward_references_resolve() {
        let out = assemble(
            "jmp end\n\
             nop\n\
             end: halt\n",
        )
        .unwrap();
        let (i, _) = Instr::decode(&out.bytes).unwrap();
        assert_eq!(i, Instr::Jmp(6)); // 5-byte jmp + 1-byte nop
    }

    #[test]
    fn memory_operands_parse_all_forms() {
        let out = assemble(
            "load r0, [bp-16]\n\
             store [sp+4], r1\n\
             loadb r2, [r3]\n",
        )
        .unwrap();
        let (a, n) = Instr::decode(&out.bytes).unwrap();
        assert_eq!(a, Instr::Load { dst: Reg::R0, base: Reg::Bp, disp: -16 });
        let (b, n2) = Instr::decode(&out.bytes[n..]).unwrap();
        assert_eq!(b, Instr::Store { base: Reg::Sp, disp: 4, src: Reg::R1 });
        let (c, _) = Instr::decode(&out.bytes[n + n2..]).unwrap();
        assert_eq!(c, Instr::LoadB { dst: Reg::R2, base: Reg::R3, disp: 0 });
    }

    #[test]
    fn data_directives_emit_bytes() {
        let out = assemble(
            ".byte 1, 2, 0xff\n\
             .word 0x08048424\n\
             .ascii \"AB\\n\"\n\
             .space 2\n",
        )
        .unwrap();
        assert_eq!(
            out.bytes,
            vec![1, 2, 0xff, 0x24, 0x84, 0x04, 0x08, b'A', b'B', b'\n', 0, 0]
        );
    }

    #[test]
    fn labels_usable_as_movi_immediates() {
        let out = assemble(
            ".org 0x2000\n\
             movi r1, msg\n\
             halt\n\
             msg: .ascii \"hi\"\n",
        )
        .unwrap();
        let (i, _) = Instr::decode(&out.bytes).unwrap();
        assert_eq!(i, Instr::MovI { dst: Reg::R1, imm: 0x2007 });
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let out = assemble("; full comment line\n\n  nop ; trailing\n").unwrap();
        assert_eq!(out.bytes, vec![0x00]);
    }

    #[test]
    fn error_unknown_mnemonic_includes_line() {
        let err = assemble("nop\nfrobnicate r0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn error_undefined_label() {
        let err = assemble("jmp nowhere\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UnknownLabel(_)));
    }

    #[test]
    fn error_duplicate_label() {
        let err = assemble("a: nop\na: nop\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn error_late_org() {
        let err = assemble("nop\n.org 0x1000\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::LateOrg));
    }

    #[test]
    fn error_wrong_arity() {
        let err = assemble("mov r0\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::WrongArity { .. }));
    }

    #[test]
    fn error_disp_out_of_range() {
        let err = assemble("load r0, [bp+40000]\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DispOutOfRange(40000)));
    }

    #[test]
    fn negative_and_char_immediates() {
        let out = assemble("movi r0, -1\nmovi r1, 'A'\n").unwrap();
        let (a, n) = Instr::decode(&out.bytes).unwrap();
        assert_eq!(a, Instr::MovI { dst: Reg::R0, imm: u32::MAX });
        let (b, _) = Instr::decode(&out.bytes[n..]).unwrap();
        assert_eq!(b, Instr::MovI { dst: Reg::R1, imm: 65 });
    }

    #[test]
    fn alu_and_cond_families() {
        let out = assemble("add r0, r1\nsar r2, r3\njae 0x10\n").unwrap();
        let (a, n) = Instr::decode(&out.bytes).unwrap();
        assert_eq!(a, Instr::Alu { op: AluOp::Add, dst: Reg::R0, src: Reg::R1 });
        let (b, n2) = Instr::decode(&out.bytes[n..]).unwrap();
        assert_eq!(b, Instr::Alu { op: AluOp::Sar, dst: Reg::R2, src: Reg::R3 });
        let (c, _) = Instr::decode(&out.bytes[n + n2..]).unwrap();
        assert_eq!(c, Instr::JCond { cond: Cond::Ae, target: 0x10 });
    }
}
