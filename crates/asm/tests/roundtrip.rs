//! Property: the `Display` form of every instruction is valid assembler
//! syntax that re-assembles to the identical encoding — so disassembly
//! listings are always round-trippable, and the two syntax definitions
//! (printer and parser) can never drift apart.
//
// Gated behind the non-default `proptest-tests` feature: the default
// workspace must build with zero network access, and `proptest` is a
// registry dependency. Enable with `--features proptest-tests` after
// restoring `proptest` to [dev-dependencies].
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use swsec_vm::isa::{AluOp, Cond, Instr, Reg, ALL_REGS};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    prop::sample::select(ALL_REGS.to_vec())
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    let alu = prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::DivU,
        AluOp::DivS,
        AluOp::ModU,
        AluOp::ModS,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
    ]);
    let cond = prop::sample::select(vec![
        Cond::Z,
        Cond::Nz,
        Cond::Lt,
        Cond::Ge,
        Cond::Le,
        Cond::Gt,
        Cond::B,
        Cond::Ae,
    ]);
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Ret),
        Just(Instr::Leave),
        (reg_strategy(), any::<u32>()).prop_map(|(dst, imm)| Instr::MovI { dst, imm }),
        (reg_strategy(), reg_strategy()).prop_map(|(dst, src)| Instr::Mov { dst, src }),
        (reg_strategy(), reg_strategy(), any::<i16>())
            .prop_map(|(dst, base, disp)| Instr::Load { dst, base, disp }),
        (reg_strategy(), reg_strategy(), any::<i16>())
            .prop_map(|(base, src, disp)| Instr::Store { base, disp, src }),
        (reg_strategy(), reg_strategy(), any::<i16>())
            .prop_map(|(dst, base, disp)| Instr::LoadB { dst, base, disp }),
        (reg_strategy(), reg_strategy(), any::<i16>())
            .prop_map(|(base, src, disp)| Instr::StoreB { base, disp, src }),
        reg_strategy().prop_map(Instr::Push),
        reg_strategy().prop_map(Instr::Pop),
        any::<u32>().prop_map(Instr::PushI),
        (alu, reg_strategy(), reg_strategy())
            .prop_map(|(op, dst, src)| Instr::Alu { op, dst, src }),
        (reg_strategy(), any::<u32>()).prop_map(|(dst, imm)| Instr::AddI { dst, imm }),
        (reg_strategy(), reg_strategy()).prop_map(|(a, b)| Instr::Cmp { a, b }),
        (reg_strategy(), any::<u32>()).prop_map(|(a, imm)| Instr::CmpI { a, imm }),
        any::<u32>().prop_map(Instr::Jmp),
        (cond, any::<u32>()).prop_map(|(cond, target)| Instr::JCond { cond, target }),
        any::<u32>().prop_map(Instr::Call),
        reg_strategy().prop_map(Instr::CallR),
        reg_strategy().prop_map(Instr::JmpR),
        any::<u32>().prop_map(Instr::Enter),
        any::<u8>().prop_map(Instr::Sys),
        any::<u8>().prop_map(Instr::Trap),
        (reg_strategy(), reg_strategy(), any::<i16>())
            .prop_map(|(dst, base, disp)| Instr::Lea { dst, base, disp }),
    ]
}

proptest! {
    #[test]
    fn display_form_reassembles_to_identical_bytes(
        instrs in prop::collection::vec(instr_strategy(), 1..24),
    ) {
        let mut expected = Vec::new();
        let mut source = String::new();
        for i in &instrs {
            i.encode(&mut expected);
            source.push_str(&i.to_string());
            source.push('\n');
        }
        let assembled = swsec_asm::assemble(&source)
            .unwrap_or_else(|e| panic!("display form failed to assemble:\n{source}\n{e}"));
        prop_assert_eq!(assembled.bytes, expected, "source:\n{}", source);
    }
}
