//! # swsec-bench — the benchmark harness of the reproduction
//!
//! One Criterion bench target per experiment (E1..E12, see
//! `DESIGN.md` §5). Each target first *regenerates and prints* its
//! experiment's table — so `cargo bench` reproduces every figure of
//! the paper — and then times the representative kernel under
//! Criterion.

/// Prints a banner followed by an experiment's regenerated tables, so
/// bench logs double as experiment reports.
pub fn print_report(experiment: &str, tables: &[swsec::report::Table]) {
    println!("\n================ {experiment} ================");
    for t in tables {
        println!("{t}");
    }
}
