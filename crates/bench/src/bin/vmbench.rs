//! vmbench — the offline VM hot-path benchmark.
//!
//! Criterion stays opt-in (network), so this harness is plain
//! `std::time::Instant`: five hand-assembled machine-code workloads
//! run in three tiers — tier 2 (superinstruction block engine over
//! the hot path), tier 1 (decoded-instruction cache + two-entry TLBs,
//! blocks off) and the per-byte baseline — reporting instructions per
//! second and both speedups; two attack-harness workloads
//! (`aslr-bruteforce`, `canary-oracle`) timing attempts served per
//! second by the fork server against the per-attempt rebuild
//! baseline; a fuzz-replay ratio leg plus a coverage-parity leg that
//! replays the same corpus with a `CoverageSink` attached, tier 2 on
//! vs off, asserting byte-identical per-attempt fingerprints with
//! blocks engaged; plus the wall time of a campaign run. Results go
//! to stdout as a table and to `BENCH_vm.json` (schema v6).
//!
//! ```text
//! sh scripts/bench.sh            # full run, writes BENCH_vm.json
//! sh scripts/bench.sh --smoke    # seconds-long sanity run (verify.sh)
//! ```
//!
//! `--verbose` prints each workload's full [`ExecStats::verbose`]
//! counters; `--telemetry PATH` streams the campaign leg's security
//! events and final metrics as schema-v1 JSONL. A telemetry-overhead
//! leg re-times the tight loop with sinks attached and asserts the
//! disabled-interest configuration costs within 3% of no sink at all.
//! A profiler-overhead leg re-times it in the tier-1 fast path with
//! the sampling profiler attached: disabled (interval 0) must stay
//! within the stand's 3% noise floor (design target ≤1%, measured
//! ~0%), 1/4096 sampling within 10% — and a tiered leg under sampling
//! asserts the block engine stays engaged between samples.
//! Workloads where tier 2 is not a win are marked `~` in the table and
//! listed under `"flat_workloads"` in the JSON; workloads the block
//! engine excludes by construction (`tier2.compiled == 0`, e.g.
//! `pma-crossing` — PMA machines run every access through the
//! protection check) are marked `^` and listed under
//! `"tier2_excluded_workloads"` instead.

use std::sync::Arc;
use std::time::{Duration, Instant};

use swsec::attacker::VICTIM_SMASH;
use swsec::cache::ProgramCache;
use swsec::campaign::{run_campaign_with, CampaignConfig, CampaignTelemetry};
use swsec::harness::{AttackTarget, ForkServer, ServeMode};
use swsec::serve::{CampaignService, JobSpec, ServeConfig, TenantConfig};
use swsec::loader;
use swsec::report::ExperimentId;
use swsec_defenses::DefenseConfig;
use swsec_fuzz::targets::{FuzzTarget, VictimTarget};
use swsec_obs::jsonl::meta_line;
use swsec_obs::{
    clear_default_sink, set_default_sink, CountingSink, CoverageSink, EventMask, EventSink,
    JsonlSink, MetricsRegistry, SecurityEvent,
};
use swsec_rng::derive;
use swsec_vm::cpu::{Machine, RunOutcome};
use swsec_vm::profile::{Profiler, DEFAULT_INTERVAL};
use swsec_vm::isa::{sys, AluOp, Cond, Instr, Reg};
use swsec_vm::mem::Perm;
use swsec_vm::policy::{ProtectedRegion, ProtectionMap};
use swsec_vm::trace::ExecStats;

const TEXT: u32 = 0x1000;
const DATA: u32 = 0x0020_0000;
const MODULE: u32 = 0x0040_0000;
const MDATA: u32 = 0x0041_0000;
const STACK_TOP: u32 = 0xbfff_f000;

/// Resolves an instruction index to its address during assembly.
type AddrOf<'a> = &'a dyn Fn(usize) -> u32;

/// Assembles `build`'s program at `base`, resolving instruction-index
/// references to addresses in a second pass (instruction lengths are
/// fixed per opcode, so the first-pass layout is exact).
fn assemble_at(base: u32, build: &dyn Fn(AddrOf) -> Vec<Instr>) -> Vec<u8> {
    let draft = build(&|_| base);
    let mut addrs = Vec::with_capacity(draft.len());
    let mut off = 0u32;
    for i in &draft {
        addrs.push(base + off);
        let mut b = Vec::new();
        i.encode(&mut b);
        off += b.len() as u32;
    }
    let mut out = Vec::new();
    for i in &build(&|idx| addrs[idx]) {
        i.encode(&mut out);
    }
    out
}

/// A machine mapped with text, data and stack, code poked at `TEXT`.
fn machine(code: &[u8]) -> Machine {
    let mut m = Machine::new();
    m.mem_mut().map(TEXT, 0x1000, Perm::RX).expect("map text");
    m.mem_mut().map(DATA, 0x2000, Perm::RW).expect("map data");
    m.mem_mut()
        .map(STACK_TOP - 0x4000, 0x4000, Perm::RW)
        .expect("map stack");
    m.mem_mut().poke_bytes(TEXT, code).expect("load text");
    m.set_reg(Reg::Sp, STACK_TOP);
    m.set_ip(TEXT);
    m
}

/// A counted loop: `iters` trips of decrement / compare / branch.
/// Pure icache fodder — the densest fetch-decode stream the ISA has.
fn tight_loop(iters: u32) -> Machine {
    let code = assemble_at(TEXT, &|at| {
        vec![
            Instr::MovI { dst: Reg::R0, imm: iters },
            Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 }, // 1: loop head
            Instr::CmpI { a: Reg::R0, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: at(1) },
            Instr::Sys(sys::EXIT),
        ]
    });
    machine(&code)
}

/// `iters` calls to a leaf that builds and tears down a frame — the
/// call/ret/push/pop path, all stack traffic on one page (data TLB).
fn call_heavy(iters: u32) -> Machine {
    let code = assemble_at(TEXT, &|at| {
        vec![
            Instr::MovI { dst: Reg::R0, imm: iters },
            Instr::Call(at(6)), // 1: loop head
            Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 },
            Instr::CmpI { a: Reg::R0, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: at(1) },
            Instr::Sys(sys::EXIT),
            Instr::Enter(16), // 6: f
            Instr::Push(Reg::R0),
            Instr::Pop(Reg::R1),
            Instr::Leave,
            Instr::Ret,
        ]
    });
    machine(&code)
}

/// Word and byte loads/stores against one data page: the single-lookup
/// read_u32/write_u32 fast path and the data TLB.
fn memory_heavy(iters: u32) -> Machine {
    let code = assemble_at(TEXT, &|at| {
        vec![
            Instr::MovI { dst: Reg::R1, imm: DATA },
            Instr::MovI { dst: Reg::R0, imm: iters },
            Instr::Store { base: Reg::R1, disp: 0, src: Reg::R0 }, // 2: loop head
            Instr::Load { dst: Reg::R2, base: Reg::R1, disp: 0 },
            Instr::Store { base: Reg::R1, disp: 64, src: Reg::R2 },
            Instr::Load { dst: Reg::R3, base: Reg::R1, disp: 64 },
            Instr::StoreB { base: Reg::R1, disp: 4, src: Reg::R0 },
            Instr::LoadB { dst: Reg::R4, base: Reg::R1, disp: 4 },
            Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 },
            Instr::CmpI { a: Reg::R0, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: at(2) },
            Instr::Sys(sys::EXIT),
        ]
    });
    machine(&code)
}

/// `iters` round trips into a protected module: every step runs the
/// PMA fetch check, every call crosses the boundary through the entry
/// point, and the module touches its private data page.
fn pma_crossing(iters: u32) -> Machine {
    let main_code = assemble_at(TEXT, &|at| {
        vec![
            Instr::MovI { dst: Reg::R0, imm: iters },
            Instr::Call(MODULE), // 1: loop head
            Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 },
            Instr::CmpI { a: Reg::R0, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: at(1) },
            Instr::Sys(sys::EXIT),
        ]
    });
    let module_code = assemble_at(MODULE, &|_| {
        vec![
            Instr::MovI { dst: Reg::R1, imm: MDATA },
            Instr::Load { dst: Reg::R2, base: Reg::R1, disp: 0 },
            Instr::Store { base: Reg::R1, disp: 4, src: Reg::R2 },
            Instr::Ret,
        ]
    });
    let mut m = machine(&main_code);
    m.mem_mut().map(MODULE, 0x1000, Perm::RX).expect("map module");
    m.mem_mut().map(MDATA, 0x1000, Perm::RW).expect("map mdata");
    m.mem_mut().poke_bytes(MODULE, &module_code).expect("load module");
    m.set_protection(Some(ProtectionMap::new(vec![ProtectedRegion::new(
        MODULE..MODULE + 0x1000,
        MDATA..MDATA + 0x1000,
        vec![MODULE],
    )])));
    m
}

/// `iters` dispatches through a four-entry function-pointer table in
/// data — the virtual-call/jump-table shape every dispatcher-heavy
/// victim (and every bytecode interpreter) reduces to. Each trip
/// masks the counter into a table index, loads the function pointer
/// and calls through the register; each "method" runs a short counted
/// loop read-modify-writing its own field next to the table and
/// returns. The hot path is `callr` into one of four rotating callees
/// plus the matching unlinked `ret` every iteration — exactly the
/// dynamic transfers the tier-2 inline caches exist to predict — over
/// an access pattern that alternates the data page with the stack
/// page on every dispatch.
fn indirect_dispatch(iters: u32) -> Machine {
    let code = assemble_at(TEXT, &|at| {
        vec![
            Instr::MovI { dst: Reg::R0, imm: iters },
            Instr::MovI { dst: Reg::R5, imm: DATA }, // table base
            Instr::MovI { dst: Reg::R6, imm: 3 },    // index mask
            Instr::MovI { dst: Reg::R7, imm: 2 },    // entry shift
            Instr::Mov { dst: Reg::R1, src: Reg::R0 }, // 4: loop head
            Instr::Alu { op: AluOp::And, dst: Reg::R1, src: Reg::R6 },
            Instr::Alu { op: AluOp::Shl, dst: Reg::R1, src: Reg::R7 },
            Instr::Alu { op: AluOp::Add, dst: Reg::R1, src: Reg::R5 },
            Instr::Load { dst: Reg::R2, base: Reg::R1, disp: 0 },
            Instr::MovI { dst: Reg::R4, imm: 6 }, // method trip count
            Instr::CallR(Reg::R2),
            Instr::AddI { dst: Reg::R0, imm: (-1i32) as u32 },
            Instr::CmpI { a: Reg::R0, imm: 0 },
            Instr::JCond { cond: Cond::Nz, target: at(4) },
            Instr::Sys(sys::EXIT),
        ]
    });
    let mut m = machine(&code);
    // Four callees in fixed 64-byte slots past the driver loop; the
    // table in data points at them as little-endian words. Each body
    // is a six-trip counted loop read-modify-writing the method's own
    // field just past the table — the shape of a small virtual method
    // or bytecode handler bumping an object field or accumulator.
    let mut table = Vec::new();
    for k in 0..4u32 {
        let addr = TEXT + 0x100 + k * 0x40;
        let field = (0x40 + k * 0x10) as i16;
        let callee = assemble_at(addr, &|at| {
            vec![
                Instr::Load { dst: Reg::R3, base: Reg::R5, disp: field }, // 0: work loop head
                Instr::AddI { dst: Reg::R3, imm: k + 1 },
                Instr::Store { base: Reg::R5, disp: field, src: Reg::R3 },
                Instr::AddI { dst: Reg::R4, imm: (-1i32) as u32 },
                Instr::CmpI { a: Reg::R4, imm: 0 },
                Instr::JCond { cond: Cond::Nz, target: at(0) },
                Instr::Ret,
            ]
        });
        m.mem_mut().poke_bytes(addr, &callee).expect("load callee");
        table.extend_from_slice(&addr.to_le_bytes());
    }
    m.mem_mut().poke_bytes(DATA, &table).expect("load table");
    m
}

/// A sink that wants nothing: attached but with every interest bit
/// clear, it exercises exactly the disabled-tracing hot path.
struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: &SecurityEvent) {}
    fn interests(&self) -> EventMask {
        EventMask::NONE
    }
}

struct Measurement {
    instructions: u64,
    elapsed: Duration,
    stats: ExecStats,
    icache_hit_rate: Option<f64>,
    tlb_hit_rate: Option<f64>,
}

/// One of the three execution configurations a workload is timed in.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// Per-byte fetch/decode, caches off, blocks off.
    Base,
    /// Decoded-instruction cache + TLBs, block engine off.
    Fast,
    /// Fast path plus the tier-2 superinstruction block engine.
    Tiered,
}

/// Runs one freshly built machine to completion, timed. `reps` runs,
/// best (minimum) time kept — interpreter timings are noisy downwards
/// only. `sink` (if any) is attached to every machine before it runs.
fn measure_with_sink(
    build: &dyn Fn() -> Machine,
    tier: Tier,
    fuel: u64,
    reps: u32,
    sink: Option<&Arc<dyn EventSink>>,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps.max(1) {
        let mut m = build();
        m.set_fast_path(tier != Tier::Base);
        m.set_tier2(tier == Tier::Tiered);
        if let Some(sink) = sink {
            m.set_event_sink(Some(sink.clone()));
        }
        let started = Instant::now();
        let outcome = m.run(fuel);
        let elapsed = started.elapsed();
        assert_eq!(outcome, RunOutcome::Halted(0), "workload must halt cleanly");
        let stats = m.stats();
        let icache = stats.icache_hits + stats.icache_misses;
        let tlb = stats.tlb_hits + stats.tlb_misses;
        let sample = Measurement {
            instructions: stats.instructions,
            elapsed,
            stats,
            icache_hit_rate: (icache > 0)
                .then(|| stats.icache_hits as f64 / icache as f64),
            tlb_hit_rate: (tlb > 0).then(|| stats.tlb_hits as f64 / tlb as f64),
        };
        if best.as_ref().is_none_or(|b| sample.elapsed < b.elapsed) {
            best = Some(sample);
        }
    }
    best.expect("reps >= 1")
}

fn measure(build: &dyn Fn() -> Machine, tier: Tier, fuel: u64, reps: u32) -> Measurement {
    measure_with_sink(build, tier, fuel, reps, None)
}

/// Like [`measure`], but with `prof` attached to every machine before
/// it runs — the profiler-overhead legs.
fn measure_with_prof(
    build: &dyn Fn() -> Machine,
    tier: Tier,
    fuel: u64,
    reps: u32,
    prof: &Arc<Profiler>,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps.max(1) {
        let mut m = build();
        m.set_fast_path(tier != Tier::Base);
        m.set_tier2(tier == Tier::Tiered);
        m.set_profiler(Some(prof.clone()));
        let started = Instant::now();
        let outcome = m.run(fuel);
        let elapsed = started.elapsed();
        assert_eq!(outcome, RunOutcome::Halted(0), "workload must halt cleanly");
        let stats = m.stats();
        let sample = Measurement {
            instructions: stats.instructions,
            elapsed,
            stats,
            icache_hit_rate: None,
            tlb_hit_rate: None,
        };
        if best.as_ref().is_none_or(|b| sample.elapsed < b.elapsed) {
            best = Some(sample);
        }
    }
    best.expect("reps >= 1")
}

/// One attack-search workload timed against both serve modes: the fork
/// server (boot-time snapshot, O(dirty-pages) restore per attempt) and
/// the per-attempt rebuild baseline the experiments used to pay.
struct HarnessCase {
    name: &'static str,
    config: DefenseConfig,
    plan_seed: u64,
    payload: Vec<u8>,
}

struct HarnessResult {
    name: &'static str,
    attempts: u64,
    fork: Duration,
    rebuild: Duration,
    /// Mean dirty pages copied per restore during the fork leg.
    dirty_per_restore: Option<f64>,
}

impl HarnessResult {
    fn fork_aps(&self) -> f64 {
        aps(self.attempts, self.fork)
    }
    fn rebuild_aps(&self) -> f64 {
        aps(self.attempts, self.rebuild)
    }
    fn speedup(&self) -> f64 {
        self.fork_aps() / self.rebuild_aps()
    }
}

fn aps(attempts: u64, elapsed: Duration) -> f64 {
    attempts as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// The campaign-service leg: one full service round timed end to end
/// (queue drain, admission bookkeeping, pool leases, watchdog-guarded
/// job threads), fork-served vs rebuilt per attempt.
struct ServiceResult {
    tenants: usize,
    jobs: u64,
    attempts: u64,
    fork: Duration,
    rebuild: Duration,
    /// Job-latency quantile upper bounds (µs) from the fork leg.
    p50_us: u64,
    p99_us: u64,
}

impl ServiceResult {
    fn fork_aps(&self) -> f64 {
        aps(self.attempts, self.fork)
    }
    fn rebuild_aps(&self) -> f64 {
        aps(self.attempts, self.rebuild)
    }
    fn speedup(&self) -> f64 {
        self.fork_aps() / self.rebuild_aps()
    }
}

/// Runs one service round with `tenants` simulated concurrent clients
/// of `jobs_per` jobs each, every job serving `attempts` attack
/// attempts against the stock smash victim. Returns the round's wall
/// time, the attempts served, and the per-job latency histogram. The
/// full service stack is on the clock — job queue, per-tenant
/// admission, sharded warm pools, one watchdog-guarded thread per job
/// — which is exactly the point: this leg measures what a campaign
/// *service* sustains, not what a bare serve loop does (the harness
/// legs above cover that).
fn measure_service(fork: bool, tenants: usize, jobs_per: u32, attempts: u32) -> ServiceSample {
    let mut svc = CampaignService::new(ServeConfig {
        workers: 0,
        queue_capacity: tenants * jobs_per as usize,
        fork_server: fork,
        cache_capacity: Some(64),
        ..ServeConfig::default()
    });
    let ids: Vec<_> = (0..tenants)
        .map(|t| {
            svc.register_tenant(TenantConfig {
                name: format!("client-{t}"),
                seed: derive(0xBE9C4ED, &[t as u64]),
                priority: 1,
                quota: jobs_per as usize,
            })
        })
        .collect();
    for _ in 0..jobs_per {
        for id in &ids {
            svc.submit(
                *id,
                JobSpec {
                    attempts,
                    ..JobSpec::new(VICTIM_SMASH, DefenseConfig::none())
                },
            )
            .expect("queue is sized for the full load");
        }
    }
    let round = svc.run();
    assert_eq!(
        round.totals.jobs_failed, 0,
        "service-leg jobs must all complete"
    );
    let lat = svc.job_latency();
    ServiceSample {
        elapsed: round.elapsed,
        attempts: round.totals.attempts,
        p50_us: lat.quantile_upper_bound(0.50),
        p99_us: lat.quantile_upper_bound(0.99),
    }
}

struct ServiceSample {
    elapsed: Duration,
    attempts: u64,
    p50_us: u64,
    p99_us: u64,
}

/// Serves `attempts` identical attack attempts from one booted server
/// and times the attempt loop (boot and compile excluded — both modes
/// share the compile cache). `reps` runs, best kept.
fn measure_attempts(
    cache: &ProgramCache,
    case: &HarnessCase,
    mode: ServeMode,
    attempts: u64,
    reps: u32,
) -> Duration {
    let mut best: Option<Duration> = None;
    for _ in 0..reps.max(1) {
        let mut server = ForkServer::boot(cache, VICTIM_SMASH, case.config, case.plan_seed)
            .expect("victim compiles")
            .with_mode(mode);
        let started = Instant::now();
        for _ in 0..attempts {
            let outcome = server
                .execute(case.plan_seed, &case.payload)
                .expect("plan seed matches");
            std::hint::black_box(&outcome);
        }
        let elapsed = started.elapsed();
        if best.is_none_or(|b| elapsed < b) {
            best = Some(elapsed);
        }
    }
    best.expect("reps >= 1")
}

/// Times the per-attempt cost the experiments paid before the fork
/// server existed: a compile-cache lookup, a full machine build from
/// the compiled image, the payload feed and the run — per attempt.
/// This is the honest rebuild baseline for the speedup column.
fn measure_rebuild(
    cache: &ProgramCache,
    case: &HarnessCase,
    attempts: u64,
    reps: u32,
) -> Duration {
    let opts = loader::plan_options(&case.config, case.plan_seed);
    let mut best: Option<Duration> = None;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        for _ in 0..attempts {
            let program = cache.compile(VICTIM_SMASH, &opts).expect("victim compiles");
            let mut session = loader::launch_compiled(&program, case.config, case.plan_seed)
                .expect("victim launches");
            session.machine.io_mut().feed_input(0, &case.payload);
            let outcome = session.machine.run(swsec::harness::DEFAULT_FUEL);
            std::hint::black_box(&outcome);
        }
        let elapsed = started.elapsed();
        if best.is_none_or(|b| elapsed < b) {
            best = Some(elapsed);
        }
    }
    best.expect("reps >= 1")
}

/// Times the serving cost of a fuzzing campaign: a deterministic
/// corpus of mutated attack inputs (the fuzzer's own mutators over its
/// victim seeds and dictionary, so the attempt mix — benign runs,
/// early faults, wild jumps — is what a real campaign produces) is
/// replayed through [`swsec_fuzz::targets::VictimTarget`] under each
/// serve mode. Mutation happens before the clock starts and no
/// coverage sink is attached: in-VM execution under instrumentation is
/// identical across modes and would only dilute the ratio this leg
/// exists to isolate — what serving an attempt costs, fork-restore vs
/// rebuild.
fn measure_fuzz_replay(
    cache: &ProgramCache,
    mode: ServeMode,
    corpus: &[Vec<u8>],
    reps: u32,
) -> Duration {
    let mut best: Option<Duration> = None;
    for _ in 0..reps.max(1) {
        let mut target = VictimTarget::new(cache, 7, mode);
        let started = Instant::now();
        for input in corpus {
            let outcome = target.execute(7, input).expect("attempt runs");
            std::hint::black_box(&outcome);
        }
        let elapsed = started.elapsed();
        if best.is_none_or(|b| elapsed < b) {
            best = Some(elapsed);
        }
    }
    best.expect("reps >= 1")
}

/// The replay corpus for [`measure_fuzz_replay`]: the fuzzer's
/// mutators applied to the victim target's seeds and dictionary with
/// derived seeds — a pure function of `attempts`.
///
/// Expensive candidates are screened out before the clock starts:
/// hang-class attempts (fuel exhaustion) and wild-code spins (a
/// corrupted return address lands in executable attacker bytes and
/// runs tens of thousands of instructions before faulting). Both are
/// pure in-VM execution, identical in either serve mode, and a real
/// campaign bounds them with its per-attempt execution budget — left
/// in, they swamp the serving cost this leg exists to isolate. Kept
/// attempts (benign runs, quick crashes) stay within an order of
/// magnitude of the victim's clean-run instruction count, the same
/// regime the aslr/canary legs measure in.
fn fuzz_replay_corpus(cache: &ProgramCache, attempts: u64) -> Vec<Vec<u8>> {
    let mut probe = VictimTarget::new(cache, 7, ServeMode::Fork);
    let seeds = probe.seeds();
    let dict = probe.dictionary();
    let max_len = probe.max_len();
    let benign = probe
        .execute(7, &seeds[0])
        .expect("benign seed runs")
        .stats
        .instructions;
    let cap = benign.max(1) * 16;
    let mut corpus = Vec::with_capacity(attempts as usize);
    let mut i = 0u64;
    while (corpus.len() as u64) < attempts {
        let parent = &seeds[i as usize % seeds.len()];
        let donor = &seeds[(i as usize + 1) % seeds.len()];
        let input = swsec_fuzz::mutate::mutate(
            swsec_rng::derive(7, &[100, i]),
            parent,
            donor,
            &dict,
            max_len,
        );
        i += 1;
        let outcome = probe.execute(7, &input).expect("attempt runs");
        let quick = !matches!(outcome.outcome, RunOutcome::OutOfFuel)
            && outcome.stats.instructions <= cap;
        if quick {
            corpus.push(input);
        }
    }
    corpus
}

struct CaseResult {
    name: &'static str,
    instructions: u64,
    tiered: Measurement,
    fast: Measurement,
    base: Measurement,
}

impl CaseResult {
    fn tiered_ips(&self) -> f64 {
        ips(self.instructions, self.tiered.elapsed)
    }
    fn fast_ips(&self) -> f64 {
        ips(self.instructions, self.fast.elapsed)
    }
    fn base_ips(&self) -> f64 {
        ips(self.instructions, self.base.elapsed)
    }
    /// Tier-2 blocks over the tier-1 fast path.
    fn tier2_speedup(&self) -> f64 {
        self.tiered_ips() / self.fast_ips()
    }
    /// Tier-1 fast path over the per-byte baseline.
    fn speedup(&self) -> f64 {
        self.fast_ips() / self.base_ips()
    }
}

fn ips(instructions: u64, elapsed: Duration) -> f64 {
    instructions as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn json_opt_rate(r: Option<f64>) -> String {
    match r {
        Some(r) => format!("{r:.6}"),
        None => "null".to_string(),
    }
}

fn main() {
    let mut smoke = false;
    let mut verbose = false;
    let mut out: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--verbose" => verbose = true,
            "--out" => out = Some(argv.next().expect("--out needs a path")),
            "--telemetry" => {
                telemetry_path = Some(argv.next().expect("--telemetry needs a path"));
            }
            "--help" | "-h" => {
                println!("usage: vmbench [--smoke] [--verbose] [--out PATH] [--telemetry PATH]");
                return;
            }
            other => {
                eprintln!("vmbench: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        if smoke {
            "target/BENCH_vm_smoke.json".to_string()
        } else {
            "BENCH_vm.json".to_string()
        }
    });

    // Workload sizes: full mode targets ~3-4M retired instructions per
    // workload; smoke mode just proves the harness end to end.
    let scale: u32 = if smoke { 5_000 } else { 1_000_000 };
    let reps: u32 = if smoke { 1 } else { 3 };
    type Case = (&'static str, Box<dyn Fn() -> Machine>);
    let cases: Vec<Case> = vec![
        ("tight-loop", Box::new(move || tight_loop(scale))),
        ("call-heavy", Box::new(move || call_heavy(scale / 2))),
        ("memory-heavy", Box::new(move || memory_heavy(scale / 3))),
        ("indirect-dispatch", Box::new(move || indirect_dispatch(scale / 13))),
        ("pma-crossing", Box::new(move || pma_crossing(scale / 5))),
    ];

    println!(
        "vmbench: {} mode, best of {reps} rep(s) per configuration",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>7} {:>8} {:>8} {:>8}",
        "workload", "instrs", "tier2 i/s", "fast i/s", "base i/s", "t2/t1", "fast/b", "icache",
        "tlb"
    );

    let fuel = u64::from(scale) * 20 + 10_000;
    let mut results = Vec::new();
    // The headline table feeds ratio gates, so its legs get more reps
    // than the harness legs: each leg's best-of-N must converge or a
    // host-load drift between two legs shows up as a phantom ratio
    // shift. Legs stay back-to-back (not interleaved) on purpose —
    // alternating execution engines would cold-start the host's branch
    // predictors every sample and measure the wrong thing.
    let wreps = if smoke { 1 } else { reps * 3 };
    for (name, build) in &cases {
        let tiered = measure(build.as_ref(), Tier::Tiered, fuel, wreps);
        let fast = measure(build.as_ref(), Tier::Fast, fuel, wreps);
        let base = measure(build.as_ref(), Tier::Base, fuel, wreps);
        assert_eq!(
            fast.instructions, base.instructions,
            "{name}: fast and baseline must retire identical instruction counts"
        );
        assert_eq!(
            tiered.instructions, fast.instructions,
            "{name}: tier 2 and fast path must retire identical instruction counts"
        );
        let r = CaseResult {
            name,
            instructions: fast.instructions,
            tiered,
            fast,
            base,
        };
        // `^` marks a workload the block engine excludes by
        // construction (`tier2.compiled == 0` — PMA machines run every
        // access through the protection check, so blocks never form);
        // `~` marks one where blocks ran but didn't beat the tier-1
        // fast path.
        let marked = if r.tiered.stats.tier2_compiled == 0 {
            format!("{}^", r.name)
        } else if r.tier2_speedup() < 1.0 {
            format!("{}~", r.name)
        } else {
            r.name.to_string()
        };
        println!(
            "{:<14} {:>12} {:>12.3e} {:>12.3e} {:>12.3e} {:>6.2}x {:>7.2}x {:>8} {:>8}",
            marked,
            r.instructions,
            r.tiered_ips(),
            r.fast_ips(),
            r.base_ips(),
            r.tier2_speedup(),
            r.speedup(),
            r.fast
                .icache_hit_rate
                .map_or("n/a".into(), |v| format!("{:.1}%", v * 100.0)),
            r.fast
                .tlb_hit_rate
                .map_or("n/a".into(), |v| format!("{:.1}%", v * 100.0)),
        );
        if verbose {
            println!("  {}", r.tiered.stats.verbose().replace('\n', "\n  "));
        }
        results.push(r);
    }
    // Engine-excluded legs (no blocks compiled) are an expected
    // property of the workload, not a flat regression: they get their
    // own annotation and JSON list so a genuinely flat leg can't hide
    // behind them.
    let tier2_excluded: Vec<&str> = results
        .iter()
        .filter(|r| r.tiered.stats.tier2_compiled == 0)
        .map(|r| r.name)
        .collect();
    let flat_workloads: Vec<&str> = results
        .iter()
        .filter(|r| r.tiered.stats.tier2_compiled > 0 && r.tier2_speedup() < 1.0)
        .map(|r| r.name)
        .collect();
    if !tier2_excluded.is_empty() {
        println!(
            "  ^ tier 2 excluded by the engine on: {} (tier2.compiled=0, expected)",
            tier2_excluded.join(", ")
        );
    }
    if !flat_workloads.is_empty() {
        println!("  ~ tier 2 not a win on: {}", flat_workloads.join(", "));
    }

    // Attack-harness workloads: attempts served per second, fork
    // server vs per-attempt rebuild. The ASLR case fixes the victim
    // slide (16 bits, so no attempt ever lands) and smashes past the
    // buffer; the canary case probes one byte past it. Both crash per
    // attempt — the steady state of a real brute force.
    let aslr_case = HarnessCase {
        name: "aslr-bruteforce",
        config: {
            let mut c = DefenseConfig::none();
            c.aslr_bits = Some(16);
            c
        },
        plan_seed: 7,
        payload: vec![0x41; 64],
    };
    let canary_case = HarnessCase {
        name: "canary-oracle",
        config: {
            let mut c = DefenseConfig::none();
            c.canary = true;
            c
        },
        plan_seed: 42,
        payload: vec![0x41; 49],
    };
    // Full-mode legs need to be long enough that one scheduler hiccup
    // can't dominate a rep: at 2k attempts the fork leg finishes in
    // ~2ms and the 10x floor flakes; at 10k it runs tens of ms and the
    // best-of-reps ratio is stable.
    let attempts: u64 = if smoke { 50 } else { 10_000 };
    println!("fork-server workloads: {attempts} attempts per configuration");
    println!(
        "{:<16} {:>10} {:>12} {:>13} {:>9} {:>14}",
        "workload", "attempts", "fork a/s", "rebuild a/s", "speedup", "dirty/restore"
    );
    let cache = ProgramCache::new();
    let mut harness_results = Vec::new();
    for case in [&aslr_case, &canary_case] {
        // Fork and rebuild legs run the same step loop, so their reps
        // interleave (fork, rebuild, fork, rebuild...): host-load
        // drift hits both legs of the ratio alike instead of letting
        // one leg collect all its samples in a fast window. (The tier
        // table above deliberately does NOT interleave — alternating
        // execution engines would trash the host's branch predictors.)
        let before = swsec_vm::counters::snapshot();
        let mut fork = measure_attempts(&cache, case, ServeMode::Fork, attempts, 1);
        let mut rebuild = measure_rebuild(&cache, case, attempts, 1);
        for _ in 1..reps {
            fork = fork.min(measure_attempts(&cache, case, ServeMode::Fork, attempts, 1));
            rebuild = rebuild.min(measure_rebuild(&cache, case, attempts, 1));
        }
        // Rebuild legs never restore, so the restore-counter delta
        // still reflects the fork legs alone.
        let delta = swsec_vm::counters::snapshot().since(before);
        let r = HarnessResult {
            name: case.name,
            attempts,
            fork,
            rebuild,
            dirty_per_restore: delta.mean_dirty_pages(),
        };
        println!(
            "{:<16} {:>10} {:>12.3e} {:>13.3e} {:>8.2}x {:>14}",
            r.name,
            r.attempts,
            r.fork_aps(),
            r.rebuild_aps(),
            r.speedup(),
            r.dirty_per_restore
                .map_or("n/a".into(), |v| format!("{v:.1}")),
        );
        harness_results.push(r);
    }

    // Fuzz throughput: a pre-mutated attack corpus (the fuzzer's own
    // operators, so the attempt mix is a real campaign's) replayed
    // through the victim fuzz target, fork-served vs rebuilt.
    let corpus = fuzz_replay_corpus(&cache, attempts);
    {
        // Interleaved for the same drift-correlation reason as above.
        let before = swsec_vm::counters::snapshot();
        let mut fork = measure_fuzz_replay(&cache, ServeMode::Fork, &corpus, 1);
        let mut rebuild = measure_fuzz_replay(&cache, ServeMode::Rebuild, &corpus, 1);
        for _ in 1..reps {
            fork = fork.min(measure_fuzz_replay(&cache, ServeMode::Fork, &corpus, 1));
            rebuild = rebuild.min(measure_fuzz_replay(&cache, ServeMode::Rebuild, &corpus, 1));
        }
        let delta = swsec_vm::counters::snapshot().since(before);
        let r = HarnessResult {
            name: "fuzz-replay",
            attempts,
            fork,
            rebuild,
            dirty_per_restore: delta.mean_dirty_pages(),
        };
        println!(
            "{:<16} {:>10} {:>12.3e} {:>13.3e} {:>8.2}x {:>14}",
            r.name,
            r.attempts,
            r.fork_aps(),
            r.rebuild_aps(),
            r.speedup(),
            r.dirty_per_restore
                .map_or("n/a".into(), |v| format!("{v:.1}")),
        );
        harness_results.push(r);
    }

    // Coverage parity: the same corpus replayed through a coverage-
    // attached victim twice — tier 2 engaged, then pinned to tier 1 —
    // asserting byte-identical per-attempt fingerprints while blocks
    // actually serve instructions. This is the gate that lets E18 fuzz
    // tier-2 engaged: blocks update the edge map directly at their
    // transfer terminators, and the map the fuzzer steers by must not
    // be able to tell.
    let parity = {
        let run = |tier2: bool| {
            let mut target = VictimTarget::new(&cache, 7, ServeMode::Fork);
            target.set_tier2(tier2);
            let sink = Arc::new(CoverageSink::new());
            target.attach_coverage(Arc::clone(&sink));
            let mut fingerprints = Vec::with_capacity(corpus.len());
            let mut tier2_hits = 0u64;
            let mut ic_hits = 0u64;
            let mut ic_misses = 0u64;
            let started = Instant::now();
            for input in &corpus {
                let outcome = target.execute(7, input).expect("attempt runs");
                tier2_hits += outcome.stats.tier2_hits;
                ic_hits += outcome.stats.tier2_ic_hits;
                ic_misses += outcome.stats.tier2_ic_misses;
                fingerprints.push(sink.take_map().fingerprint());
            }
            (fingerprints, tier2_hits, ic_hits, ic_misses, started.elapsed())
        };
        let (tiered_fps, tier2_hits, ic_hits, ic_misses, tiered_ns) = run(true);
        let (fast_fps, fast_hits, _, _, fast_ns) = run(false);
        assert_eq!(
            tiered_fps, fast_fps,
            "coverage fingerprints diverge between tier 2 and tier 1"
        );
        assert_eq!(fast_hits, 0, "tier-1 parity leg served tier-2 blocks");
        assert!(
            tier2_hits > 0,
            "coverage-parity leg never engaged tier 2 (0 block hits)"
        );
        println!(
            "coverage parity (fuzz corpus, {} attempts): byte-identical fingerprints; \
             tiered leg {} block hits, {} ic hits, {} ic misses",
            corpus.len(),
            tier2_hits,
            ic_hits,
            ic_misses,
        );
        (corpus.len() as u64, tier2_hits, ic_hits, ic_misses, tiered_ns, fast_ns)
    };

    // Campaign-service leg: thousands of simulated concurrent clients
    // behind the job queue, the whole service stack on the clock.
    // Interleaved fork/rebuild reps for the usual drift-correlation
    // reason. Smoke mode shrinks the client count, not the shape.
    let (svc_tenants, svc_jobs, svc_attempts): (usize, u32, u32) =
        if smoke { (24, 2, 4) } else { (2_000, 2, 16) };
    println!(
        "campaign service: {svc_tenants} tenants x {svc_jobs} jobs x {svc_attempts} attempts"
    );
    let service = {
        let mut fork = measure_service(true, svc_tenants, svc_jobs, svc_attempts);
        let mut rebuild = measure_service(false, svc_tenants, svc_jobs, svc_attempts);
        for _ in 1..reps {
            let f = measure_service(true, svc_tenants, svc_jobs, svc_attempts);
            if f.elapsed < fork.elapsed {
                fork = f;
            }
            let r = measure_service(false, svc_tenants, svc_jobs, svc_attempts);
            if r.elapsed < rebuild.elapsed {
                rebuild = r;
            }
        }
        assert_eq!(
            fork.attempts, rebuild.attempts,
            "service legs must serve identical attempt counts"
        );
        ServiceResult {
            tenants: svc_tenants,
            jobs: u64::from(svc_jobs) * svc_tenants as u64,
            attempts: fork.attempts,
            fork: fork.elapsed,
            rebuild: rebuild.elapsed,
            p50_us: fork.p50_us,
            p99_us: fork.p99_us,
        }
    };
    println!(
        "{:<16} {:>10} {:>12} {:>13} {:>9} {:>9} {:>9}",
        "workload", "attempts", "fork a/s", "rebuild a/s", "speedup", "p50 us", "p99 us"
    );
    println!(
        "{:<16} {:>10} {:>12.3e} {:>13.3e} {:>8.2}x {:>9} {:>9}",
        "serve-round",
        service.attempts,
        service.fork_aps(),
        service.rebuild_aps(),
        service.speedup(),
        service.p50_us,
        service.p99_us,
    );

    // Telemetry overhead: the tight loop re-timed with sinks attached.
    // A sink with no interests must cost within noise of no sink at
    // all (the hot path only adds one u8 mask test); a counting sink
    // subscribed to everything shows the price of actually listening.
    let (_, tight_build) = &cases[0];
    // Best-of-5 in full mode: this leg feeds a 3% guard, so it needs
    // more noise suppression than the headline table.
    let oreps = if smoke { 1 } else { 5 };
    // Timed in the tier-1 fast path: a sink with STEP interest forces
    // tier 2 off anyway, so tier 1 is the configuration where the
    // attached-vs-detached comparison is apples to apples. All three
    // legs run the *same* engine, so their reps interleave round-robin
    // to keep host-load drift out of the overhead ratios.
    let null_sink: Arc<dyn EventSink> = Arc::new(NullSink);
    let counting: Arc<dyn EventSink> = Arc::new(CountingSink::new());
    let mut detached = measure(tight_build.as_ref(), Tier::Fast, fuel, 1);
    let mut disabled =
        measure_with_sink(tight_build.as_ref(), Tier::Fast, fuel, 1, Some(&null_sink));
    let mut attached =
        measure_with_sink(tight_build.as_ref(), Tier::Fast, fuel, 1, Some(&counting));
    for _ in 1..oreps {
        let d = measure(tight_build.as_ref(), Tier::Fast, fuel, 1);
        if d.elapsed < detached.elapsed {
            detached = d;
        }
        let d = measure_with_sink(tight_build.as_ref(), Tier::Fast, fuel, 1, Some(&null_sink));
        if d.elapsed < disabled.elapsed {
            disabled = d;
        }
        let d = measure_with_sink(tight_build.as_ref(), Tier::Fast, fuel, 1, Some(&counting));
        if d.elapsed < attached.elapsed {
            attached = d;
        }
    }
    let detached_ips = ips(detached.instructions, detached.elapsed);
    let disabled_ips = ips(disabled.instructions, disabled.elapsed);
    let attached_ips = ips(attached.instructions, attached.elapsed);
    let disabled_overhead = (detached_ips / disabled_ips - 1.0).max(0.0);
    let attached_overhead = (detached_ips / attached_ips - 1.0).max(0.0);
    println!(
        "telemetry overhead (tight-loop): no sink {:.3e} i/s, \
         disabled sink {:.3e} i/s (+{:.1}%), counting sink {:.3e} i/s (+{:.1}%)",
        detached_ips,
        disabled_ips,
        disabled_overhead * 100.0,
        attached_ips,
        attached_overhead * 100.0,
    );

    // Profiler overhead: the tight loop re-timed with the deterministic
    // sampling profiler attached. Timed in the tier-1 fast path, like
    // the sink leg and for a sharper version of the same reason: the
    // block engine retires this entire counted loop in a handful of
    // dispatches (the 8000x row above), so *any* finite sampling
    // interval forces chain exits the unclipped engine never takes and
    // a relative gate there would measure loop collapse, not profiling.
    // Tier 1 is where the per-instruction costs — one countdown
    // decrement per step when disabled, plus the stack walk and record
    // per sample — are actually commensurable. Interleaved round-robin,
    // same drift argument as the sink leg.
    let preps = if smoke { 1 } else { 9 };
    let disabled_prof = Arc::new(Profiler::new(0));
    let sampling_prof = Arc::new(Profiler::new(DEFAULT_INTERVAL));
    let mut prof_off = measure(tight_build.as_ref(), Tier::Fast, fuel, 1);
    let mut prof_disabled =
        measure_with_prof(tight_build.as_ref(), Tier::Fast, fuel, 1, &disabled_prof);
    let mut prof_sampling =
        measure_with_prof(tight_build.as_ref(), Tier::Fast, fuel, 1, &sampling_prof);
    for _ in 1..preps {
        let d = measure(tight_build.as_ref(), Tier::Fast, fuel, 1);
        if d.elapsed < prof_off.elapsed {
            prof_off = d;
        }
        let d = measure_with_prof(tight_build.as_ref(), Tier::Fast, fuel, 1, &disabled_prof);
        if d.elapsed < prof_disabled.elapsed {
            prof_disabled = d;
        }
        let d = measure_with_prof(tight_build.as_ref(), Tier::Fast, fuel, 1, &sampling_prof);
        if d.elapsed < prof_sampling.elapsed {
            prof_sampling = d;
        }
    }
    let prof_off_ips = ips(prof_off.instructions, prof_off.elapsed);
    let prof_disabled_ips = ips(prof_disabled.instructions, prof_disabled.elapsed);
    let prof_sampling_ips = ips(prof_sampling.instructions, prof_sampling.elapsed);
    let prof_disabled_overhead = (prof_off_ips / prof_disabled_ips - 1.0).max(0.0);
    let prof_sampling_overhead = (prof_off_ips / prof_sampling_ips - 1.0).max(0.0);
    // The tiered engagement leg: profiling must not force tier 1. Run
    // the same workload in the tiered engine under sampling and assert
    // blocks still served instructions between sample points (the
    // chain-budget clip, not an engine downgrade).
    let tiered_prof = Arc::new(Profiler::new(DEFAULT_INTERVAL));
    let tiered_sampling =
        measure_with_prof(tight_build.as_ref(), Tier::Tiered, fuel, 1, &tiered_prof);
    let tiered_sampling_ips = ips(tiered_sampling.instructions, tiered_sampling.elapsed);
    println!(
        "profiler overhead (tight-loop, tier 1): off {:.3e} i/s, \
         disabled {:.3e} i/s (+{:.1}%), 1/{} sampling {:.3e} i/s (+{:.1}%), {} samples; \
         tiered under sampling {:.3e} i/s, {} block hits",
        prof_off_ips,
        prof_disabled_ips,
        prof_disabled_overhead * 100.0,
        DEFAULT_INTERVAL,
        prof_sampling_ips,
        prof_sampling_overhead * 100.0,
        sampling_prof.total_samples(),
        tiered_sampling_ips,
        tiered_sampling.stats.tier2_hits,
    );
    // Sampling must actually happen, and must not have forced the
    // block engine off. Holds in smoke mode too.
    assert!(
        sampling_prof.total_samples() > 0,
        "profiler recorded no samples under 1/{DEFAULT_INTERVAL} sampling"
    );
    assert!(
        tiered_sampling.stats.tier2_hits > 0,
        "tier 2 disengaged under sampling (0 block hits)"
    );

    // Campaign wall time: the end-to-end consumer of the hot path.
    let cfg = if smoke {
        CampaignConfig {
            experiments: vec![ExperimentId::new(10), ExperimentId::new(12)],
            ..CampaignConfig::quick()
        }
    } else {
        CampaignConfig::quick()
    };
    let security = EventMask::FAULT
        .union(EventMask::CANARY)
        .union(EventMask::PMA)
        .union(EventMask::GUARD);
    let mut telemetry = CampaignTelemetry::none();
    let mut jsonl = None;
    if let Some(path) = telemetry_path.as_deref() {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("cannot create telemetry file {path}: {e}"));
        let sink = Arc::new(JsonlSink::with_interests(
            Box::new(std::io::BufWriter::new(file)),
            security,
        ));
        sink.write_line(&meta_line("source", "vmbench"));
        set_default_sink(sink.clone());
        let registry = Arc::new(MetricsRegistry::new());
        telemetry.metrics = Some(registry.clone());
        jsonl = Some((sink, registry));
    }
    let campaign = run_campaign_with(&cfg, &telemetry);
    if let Some((sink, registry)) = jsonl {
        clear_default_sink();
        for line in registry.export_jsonl() {
            sink.write_line(&line);
        }
        sink.flush();
        println!("vmbench: wrote telemetry {}", telemetry_path.as_deref().unwrap());
    }
    println!("{}", campaign.summary());

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"swsec-vmbench-v6\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let t2 = &r.tiered.stats;
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"instructions\": {}, \"tiered_ns\": {}, \"fast_ns\": {}, \
             \"base_ns\": {}, \"tiered_ips\": {:.1}, \"fast_ips\": {:.1}, \"base_ips\": {:.1}, \
             \"tier2_speedup\": {:.3}, \"speedup\": {:.3}, \
             \"icache_hit_rate\": {}, \"tlb_hit_rate\": {}, \
             \"tier2\": {{\"compiled\": {}, \"hits\": {}, \"instructions\": {}, \
             \"side_exits\": {}, \"invalidations\": {}, \"ic_hits\": {}, \"ic_misses\": {}, \
             \"ic_installs\": {}, \"ic_megamorphic\": {}}}}}{}\n",
            r.name,
            r.instructions,
            r.tiered.elapsed.as_nanos(),
            r.fast.elapsed.as_nanos(),
            r.base.elapsed.as_nanos(),
            r.tiered_ips(),
            r.fast_ips(),
            r.base_ips(),
            r.tier2_speedup(),
            r.speedup(),
            json_opt_rate(r.fast.icache_hit_rate),
            json_opt_rate(r.fast.tlb_hit_rate),
            t2.tier2_compiled,
            t2.tier2_hits,
            t2.tier2_instructions,
            t2.tier2_side_exits,
            t2.tier2_invalidations,
            t2.tier2_ic_hits,
            t2.tier2_ic_misses,
            t2.tier2_ic_installs,
            t2.tier2_ic_megamorphic,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"flat_workloads\": [{}],\n",
        flat_workloads
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    json.push_str(&format!(
        "  \"tier2_excluded_workloads\": [{}],\n",
        tier2_excluded
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    json.push_str("  \"harness\": [\n");
    for (i, r) in harness_results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"attempts\": {}, \"fork_ns\": {}, \"rebuild_ns\": {}, \
             \"fork_aps\": {:.1}, \"rebuild_aps\": {:.1}, \"speedup\": {:.3}, \
             \"dirty_pages_per_restore\": {}}}{}\n",
            r.name,
            r.attempts,
            r.fork.as_nanos(),
            r.rebuild.as_nanos(),
            r.fork_aps(),
            r.rebuild_aps(),
            r.speedup(),
            json_opt_rate(r.dirty_per_restore),
            if i + 1 == harness_results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"coverage_parity\": {{\"attempts\": {}, \"fingerprints_identical\": true, \
         \"tier2_hits\": {}, \"ic_hits\": {}, \"ic_misses\": {}, \
         \"tiered_ns\": {}, \"fast_ns\": {}}},\n",
        parity.0,
        parity.1,
        parity.2,
        parity.3,
        parity.4.as_nanos(),
        parity.5.as_nanos(),
    ));
    json.push_str(&format!(
        "  \"service\": {{\"tenants\": {}, \"jobs\": {}, \"attempts\": {}, \
         \"fork_ns\": {}, \"rebuild_ns\": {}, \"fork_aps\": {:.1}, \"rebuild_aps\": {:.1}, \
         \"speedup\": {:.3}, \"p50_us\": {}, \"p99_us\": {}}},\n",
        service.tenants,
        service.jobs,
        service.attempts,
        service.fork.as_nanos(),
        service.rebuild.as_nanos(),
        service.fork_aps(),
        service.rebuild_aps(),
        service.speedup(),
        service.p50_us,
        service.p99_us,
    ));
    json.push_str(&format!(
        "  \"telemetry\": {{\"detached_ips\": {:.1}, \"disabled_sink_ips\": {:.1}, \
         \"counting_sink_ips\": {:.1}, \"disabled_overhead\": {:.4}, \
         \"counting_overhead\": {:.4}}},\n",
        detached_ips, disabled_ips, attached_ips, disabled_overhead, attached_overhead,
    ));
    json.push_str(&format!(
        "  \"profiler\": {{\"interval\": {}, \"off_ips\": {:.1}, \"disabled_ips\": {:.1}, \
         \"sampling_ips\": {:.1}, \"disabled_overhead\": {:.4}, \"sampling_overhead\": {:.4}, \
         \"samples\": {}, \"tiered_sampling_ips\": {:.1}, \"tier2_hits_under_sampling\": {}}},\n",
        DEFAULT_INTERVAL,
        prof_off_ips,
        prof_disabled_ips,
        prof_sampling_ips,
        prof_disabled_overhead,
        prof_sampling_overhead,
        sampling_prof.total_samples(),
        tiered_sampling_ips,
        tiered_sampling.stats.tier2_hits,
    ));
    json.push_str(&format!(
        "  \"campaign\": {{\"wall_s\": {:.6}, \"workers\": {}, \"vm_instructions\": {}, \
         \"icache_hit_rate\": {}, \"tlb_hit_rate\": {}, \
         \"tier2\": {{\"compiled\": {}, \"hits\": {}, \"instructions\": {}, \
         \"side_exits\": {}, \"invalidations\": {}, \"ic_hits\": {}, \"ic_misses\": {}, \
         \"ic_installs\": {}, \"ic_megamorphic\": {}}}}}\n",
        campaign.elapsed.as_secs_f64(),
        campaign.workers,
        campaign.vm.instructions,
        json_opt_rate(campaign.vm.icache_hit_rate()),
        json_opt_rate(campaign.vm.tlb_hit_rate()),
        campaign.vm.tier2_compiled,
        campaign.vm.tier2_hits,
        campaign.vm.tier2_instructions,
        campaign.vm.tier2_side_exits,
        campaign.vm.tier2_invalidations,
        campaign.vm.tier2_ic_hits,
        campaign.vm.tier2_ic_misses,
        campaign.vm.tier2_ic_installs,
        campaign.vm.tier2_ic_megamorphic,
    ));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write benchmark JSON");
    println!("vmbench: wrote {out}");

    // The inline caches must actually predict on the jump-table loop —
    // in smoke mode too, since warmup only needs the 16-hit threshold.
    let indirect = results
        .iter()
        .find(|r| r.name == "indirect-dispatch")
        .expect("indirect-dispatch runs");
    assert!(
        indirect.tiered.stats.tier2_ic_hits > 0,
        "indirect-dispatch never hit an inline cache"
    );

    if smoke {
        // Smoke runs gate verify.sh: neither tier may be slower than
        // the one below it. The full-size floors live in the full run.
        let tight = &results[0];
        assert!(
            tight.speedup() > 1.0,
            "smoke: hot path slower than baseline ({:.2}x)",
            tight.speedup()
        );
        assert!(
            tight.tier2_speedup() > 1.0,
            "smoke: tier 2 slower than the fast path ({:.2}x)",
            tight.tier2_speedup()
        );
        for r in &harness_results {
            assert!(
                r.speedup() > 1.0,
                "smoke: {} fork server slower than rebuild ({:.2}x)",
                r.name,
                r.speedup()
            );
        }
        assert!(
            service.speedup() > 1.0,
            "smoke: fork-served service slower than rebuild-per-attempt ({:.2}x)",
            service.speedup()
        );
    } else {
        for r in &harness_results {
            assert!(
                r.speedup() >= 10.0,
                "{} fork-server speedup {:.2}x is below the 10x floor",
                r.name,
                r.speedup()
            );
        }
        // The service keeps the fork economics even with the queue,
        // admission bookkeeping and one watchdog thread per job on
        // the clock. The floor is 5x (vs 10x for the bare harness
        // loops): per-job overheads are real, they just must not eat
        // the snapshot/restore win.
        assert!(
            service.speedup() >= 5.0,
            "campaign-service speedup {:.2}x is below the 5x floor",
            service.speedup()
        );
        let tight = &results[0];
        assert!(
            tight.speedup() >= 5.0,
            "tight-loop speedup {:.2}x is below the 5x floor",
            tight.speedup()
        );
        assert!(
            tight.tier2_speedup() >= 3.0,
            "tight-loop tier-2 speedup {:.2}x is below the 3x floor",
            tight.tier2_speedup()
        );
        let calls = results.iter().find(|r| r.name == "call-heavy").expect("call-heavy runs");
        assert!(
            calls.tier2_speedup() >= 2.0,
            "call-heavy tier-2 speedup {:.2}x is below the 2x floor",
            calls.tier2_speedup()
        );
        // The IC acceptance floor: predicted dynamic transfers must
        // make the jump-table loop at least twice as fast as tier-1
        // dispatch, the same bar the static call/ret chain clears.
        assert!(
            indirect.tier2_speedup() >= 2.0,
            "indirect-dispatch tier-2 speedup {:.2}x is below the 2x floor",
            indirect.tier2_speedup()
        );
        // The two-way icache must keep both halves of the pma-crossing
        // working set resident (the direct-mapped design thrashed at
        // 75%).
        let pma = results.iter().find(|r| r.name == "pma-crossing").expect("pma-crossing runs");
        let pma_icache = pma.fast.icache_hit_rate.expect("pma-crossing fetches");
        assert!(
            pma_icache >= 0.999,
            "pma-crossing icache hit rate {:.4} is below the 0.999 floor",
            pma_icache
        );
        // The overhead guard: an attached-but-disabled sink must stay
        // within 3% of running with no sink at all.
        assert!(
            disabled_overhead <= 0.03,
            "disabled-sink overhead {:.1}% exceeds the 3% guard",
            disabled_overhead * 100.0
        );
        // Profiler guards, tier-1 fast path: disabled is one countdown
        // decrement per step (design target ≤1%, measured ~0%); the
        // guard sits at 3% — this stand's measured noise floor, the
        // same margin the disabled-sink guard above uses — so it trips
        // on a real regression, not on host CPU steal. 1/4096 sampling
        // — stack walk and record included — stays within 10%.
        assert!(
            prof_disabled_overhead <= 0.03,
            "disabled-profiler overhead {:.1}% exceeds the 3% guard",
            prof_disabled_overhead * 100.0
        );
        assert!(
            prof_sampling_overhead <= 0.10,
            "1/{DEFAULT_INTERVAL}-sampling overhead {:.1}% exceeds the 10% guard",
            prof_sampling_overhead * 100.0
        );
    }
}
