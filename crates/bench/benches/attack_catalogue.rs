//! E2 bench: regenerate the catalogue and time each attack technique
//! end-to-end (compile victim, craft payload, run, classify).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swsec::experiments::catalogue;
use swsec::prelude::*;

fn bench(c: &mut Criterion) {
    swsec_bench::print_report("E2: catalogue", &catalogue::run(42).tables());

    let mut group = c.benchmark_group("e2_attack_technique");
    for t in Technique::ALL {
        group.bench_function(t.label(), |b| {
            b.iter(|| {
                let r = run_technique(black_box(t), DefenseConfig::none(), 42).unwrap();
                assert!(r.outcome.succeeded());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
