//! E10 bench: regenerate the attestation table and time measurement,
//! key derivation and the attest/verify roundtrip.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swsec::experiments::attest as attest_exp;
use swsec::experiments::scraping;
use swsec_pma::platform::Measurement;
use swsec_pma::{attest, Platform, Verifier};

fn bench(c: &mut Criterion) {
    swsec_bench::print_report("E10: attestation", &[attest_exp::run().table()]);

    let image = scraping::secret_module_image();
    let platform = Platform::new([7; 32]);

    c.bench_function("e10_measure_module", |b| {
        b.iter(|| black_box(Measurement::of(&image)))
    });
    let measurement = Measurement::of(&image);
    c.bench_function("e10_derive_module_key", |b| {
        b.iter(|| black_box(platform.derive_key(measurement)))
    });
    let key = platform.derive_key(measurement);
    c.bench_function("e10_attest_and_verify", |b| {
        b.iter(|| {
            let mut verifier = Verifier::new(measurement, key);
            let nonce = verifier.challenge(1);
            let report = attest(&key, nonce, b"data");
            assert!(verifier.verify(nonce, &report));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
