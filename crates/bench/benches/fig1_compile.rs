//! E1 bench: regenerate Figure 1 and time the compilation pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swsec::experiments::fig1;
use swsec_minc::{compile, parse, CompileOptions};

fn bench(c: &mut Criterion) {
    let report = fig1::run();
    swsec_bench::print_report("E1: Figure 1 reproduction", &[report.snapshot.clone()]);
    println!("{}", report.listing);

    let unit = parse(fig1::FIG1_SOURCE).unwrap();
    c.bench_function("e1_compile_fig1_server", |b| {
        b.iter(|| compile(black_box(&unit), &CompileOptions::default()).unwrap())
    });
    c.bench_function("e1_full_fig1_reproduction", |b| b.iter(fig1::run));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
