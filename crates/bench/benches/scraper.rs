//! E7 bench: regenerate the scraping table and time address-space
//! scans with and without PMA protection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swsec::experiments::scraping;
use swsec_attacks::Scraper;
use swsec_pma::Platform;
use swsec_vm::cpu::Machine;
use swsec_vm::mem::Perm;
use swsec_vm::policy::ReentryPolicy;

fn bench(c: &mut Criterion) {
    swsec_bench::print_report("E7: scraping", &[scraping::run().table()]);

    let image = scraping::secret_module_image();

    // Unprotected machine.
    let mut unprotected = Machine::new();
    unprotected
        .mem_mut()
        .map(image.code_base(), image.code().len() as u32, Perm::RX)
        .unwrap();
    unprotected
        .mem_mut()
        .poke_bytes(image.code_base(), image.code())
        .unwrap();
    unprotected
        .mem_mut()
        .map(image.data_base(), image.data().len() as u32, Perm::RW)
        .unwrap();
    unprotected
        .mem_mut()
        .poke_bytes(image.data_base(), image.data())
        .unwrap();

    // Protected machine.
    let mut platform = Platform::new([1; 32]);
    let mut protected = Machine::new();
    platform
        .load_module(&mut protected, &image, ReentryPolicy::EntryPointsOnly)
        .unwrap();

    let scraper = Scraper::kernel();
    c.bench_function("e7_scan_unprotected", |b| {
        b.iter(|| black_box(scraper.scan_word(&unprotected, 666)))
    });
    c.bench_function("e7_scan_protected", |b| {
        b.iter(|| black_box(scraper.scan_word(&protected, 666)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
