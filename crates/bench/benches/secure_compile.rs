//! E9 bench: regenerate the Figure 4 secure-compilation tables and
//! time the module call under both compilations, plus the brute-force
//! campaigns.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swsec::experiments::fig4;

fn bench(c: &mut Criterion) {
    swsec_bench::print_report("E9: secure compilation", &fig4::run().tables());

    let naive = fig4::build_module(57, false);
    let secure = fig4::build_module(57, true);
    c.bench_function("e9_honest_call_naive", |b| {
        b.iter(|| black_box(fig4::single_call(&naive, fig4::FnPtrChoice::HonestGetPin, 57)))
    });
    c.bench_function("e9_honest_call_secure", |b| {
        b.iter(|| black_box(fig4::single_call(&secure, fig4::FnPtrChoice::HonestGetPin, 57)))
    });
    let strict = fig4::build_module_strict(57);
    c.bench_function("e13_honest_call_strict_reentry", |b| {
        b.iter(|| {
            black_box(fig4::single_call_with_policy(
                &strict,
                fig4::FnPtrChoice::HonestGetPin,
                57,
                swsec_vm::policy::ReentryPolicy::EntryPointsOnly,
            ))
        })
    });
    c.bench_function("e9_brute_force_with_reset_naive", |b| {
        b.iter(|| {
            let m = fig4::build_module(57, false);
            let r = fig4::brute_force(&m, 100, true);
            assert!(r.found);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
