//! E5 bench: regenerate the countermeasure overhead table and measure
//! the wall-clock counterpart of the instruction counts: the same
//! workload executed plain, with canaries, and with bounds checks.

use criterion::{criterion_group, criterion_main, Criterion};

use swsec::experiments::overhead;
use swsec::prelude::*;
use swsec_minc::parse;

fn bench(c: &mut Criterion) {
    let report = overhead::run();
    swsec_bench::print_report("E5: overhead", &[report.table()]);

    let (_, checksum_src) = overhead::workloads().into_iter().next().unwrap();
    let unit = parse(&checksum_src).unwrap();
    let mut group = c.benchmark_group("e5_checksum_walltime");
    let mut canary = DefenseConfig::none();
    canary.canary = true;
    let mut bounds = DefenseConfig::none();
    bounds.bounds_checks = true;
    for (name, config) in [
        ("plain", DefenseConfig::none()),
        ("canary", canary),
        ("bounds", bounds),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut session = launch(&unit, config, 1).unwrap();
                assert!(session.run(50_000_000).is_halted());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
