//! E6 bench: regenerate the analysis table and time the two tool
//! families over the seeded corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swsec::experiments::analysis;
use swsec_defenses::analyzer::{analyze, Precision};
use swsec_defenses::runtime_check::check_with_tests;
use swsec_minc::parse;

fn bench(c: &mut Criterion) {
    swsec_bench::print_report("E6: analysis", &[analysis::run().table()]);

    let corpus: Vec<_> = analysis::corpus()
        .into_iter()
        .map(|e| (parse(e.source).unwrap(), e.benign.to_vec()))
        .collect();

    c.bench_function("e6_static_analysis_corpus", |b| {
        b.iter(|| {
            for (unit, _) in &corpus {
                black_box(analyze(unit, Precision::Paranoid));
            }
        })
    });
    c.bench_function("e6_runtime_check_corpus", |b| {
        b.iter(|| {
            for (unit, benign) in &corpus {
                black_box(
                    check_with_tests(unit, std::slice::from_ref(benign), 1_000_000).unwrap(),
                );
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
