//! E4 bench: regenerate the ASLR brute-force sweep and time one
//! brute-force campaign at 4 bits of entropy.

use criterion::{criterion_group, criterion_main, Criterion};
use swsec_rng::{stream, Xoshiro256pp};

use swsec::cache::ProgramCache;
use swsec::experiments::aslr;
use swsec::harness::ServeMode;

fn bench(c: &mut Criterion) {
    let cache = ProgramCache::new();
    let sweep = aslr::compute(&[2, 4, 6, 8], 6, 7, &cache, ServeMode::Fork);
    swsec_bench::print_report("E4: ASLR sweep", &[sweep.table()]);

    c.bench_function("e4_brute_force_campaign_4bits", |b| {
        let mut rng: Xoshiro256pp = stream(99, &[0]);
        b.iter(|| aslr::brute_force_once(4, &mut rng, 1_000, &cache, ServeMode::Fork))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
