//! E3 bench: regenerate the attack × countermeasure matrix and time a
//! full matrix sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use swsec::experiments::matrix;

fn bench(c: &mut Criterion) {
    let m = matrix::run(42);
    swsec_bench::print_report("E3: defense matrix", &[m.table()]);
    println!(
        "compromises per configuration: {:?}",
        m.compromises_per_config()
    );

    c.bench_function("e3_full_matrix_7x8", |b| b.iter(|| matrix::run(42)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
