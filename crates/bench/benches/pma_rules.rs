//! E8 bench: regenerate the access-control rule grid and time the
//! checks the "hardware" performs on every access.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swsec::experiments::pma_rules;
use swsec_vm::policy::{ProtectedRegion, ProtectionMap, TransferKind};

fn bench(c: &mut Criterion) {
    let report = pma_rules::run();
    swsec_bench::print_report("E8: PMA rules", &[report.table()]);

    let map = ProtectionMap::new(vec![ProtectedRegion::new(
        0x0a00_0000..0x0a00_1000,
        0x0a10_0000..0x0a10_1000,
        vec![0x0a00_0000],
    )]);
    c.bench_function("e8_check_data_inside", |b| {
        b.iter(|| black_box(map.check_data(0x0a00_0400, 0x0a10_0004)))
    });
    c.bench_function("e8_check_data_outside_denied", |b| {
        b.iter(|| black_box(map.check_data(0x0900_0000, 0x0a10_0004)))
    });
    c.bench_function("e8_check_fetch_entry", |b| {
        b.iter(|| black_box(map.check_fetch(0x0900_0000, 0x0a00_0000, TransferKind::Call)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);
