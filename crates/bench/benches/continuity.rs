//! E11 bench: regenerate the continuity tables and time save/load
//! roundtrips under the three schemes.

use criterion::{criterion_group, criterion_main, Criterion};

use swsec::experiments::continuity as cont_exp;
use swsec_pma::platform::ModuleKey;
use swsec_pma::{
    CounterContinuity, CrashPoint, NaiveContinuity, Platform, TwoPhaseContinuity, UntrustedStore,
};

fn bench(c: &mut Criterion) {
    swsec_bench::print_report("E11: continuity", &cont_exp::run().tables());

    let key = ModuleKey([9; 32]);
    let state = vec![0x55u8; 64];

    c.bench_function("e11_naive_save_load", |b| {
        let mut scheme = NaiveContinuity::new(key, 0);
        let mut store = UntrustedStore::new();
        b.iter(|| {
            scheme.save(&mut store, &state);
            scheme.load(&store).unwrap()
        })
    });
    c.bench_function("e11_counter_save_load", |b| {
        let mut platform = Platform::new([1; 32]);
        let counter = platform.alloc_counter();
        let mut scheme = CounterContinuity::new(key, counter, 0);
        let mut store = UntrustedStore::new();
        b.iter(|| {
            scheme.save(&mut platform, &mut store, &state, CrashPoint::None);
            scheme.load(&platform, &store).unwrap()
        })
    });
    c.bench_function("e11_two_phase_save_load", |b| {
        let mut platform = Platform::new([1; 32]);
        let counter = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, counter, 0, 1);
        let mut store = UntrustedStore::new();
        b.iter(|| {
            scheme.save(&mut platform, &mut store, &state, CrashPoint::None);
            scheme.load(&mut platform, &store).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
