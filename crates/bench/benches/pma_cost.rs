//! E12 bench: regenerate the isolation-cost table and measure the
//! host-side cost PMA checking adds to every executed instruction —
//! the "hardware" price of the protection.

use criterion::{criterion_group, criterion_main, Criterion};

use swsec::experiments::{fig4, pma_cost};
use swsec_vm::cpu::RunOutcome;

fn bench(c: &mut Criterion) {
    swsec_bench::print_report("E12: PMA cost", &[pma_cost::run().table()]);

    let module = fig4::build_module(57, false);
    // With protection (as loaded by the platform).
    c.bench_function("e12_module_call_with_pma", |b| {
        b.iter(|| {
            let mut m = fig4::machine_for_cost_probe(&module, 57);
            assert_eq!(m.run(100_000), RunOutcome::Halted(666));
        })
    });
    // Same machine, protection stripped (unprotected platform).
    c.bench_function("e12_module_call_without_pma", |b| {
        b.iter(|| {
            let mut m = fig4::machine_for_cost_probe(&module, 57);
            m.set_protection(None);
            assert_eq!(m.run(100_000), RunOutcome::Halted(666));
        })
    });
    // Secure compilation premium, wall-clock.
    let secure = fig4::build_module(57, true);
    c.bench_function("e12_module_call_secure_compiled", |b| {
        b.iter(|| {
            let mut m = fig4::machine_for_cost_probe(&secure, 57);
            assert_eq!(m.run(100_000), RunOutcome::Halted(666));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
