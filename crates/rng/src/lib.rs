//! # swsec-rng — deterministic randomness without dependencies
//!
//! The workspace must build and test with **zero network access**, so
//! it cannot depend on the `rand` ecosystem. This crate provides the
//! two generators the reproduction needs, in ~200 lines of
//! std-only code:
//!
//! * [`SplitMix64`] — the classic seed-stream deriver (Steele, Lea &
//!   Flood, *Fast Splittable Pseudorandom Number Generators*). Every
//!   experiment, grid cell and trial of the campaign runner derives an
//!   independent, reproducible sub-seed from one master seed via
//!   [`derive`], so results are byte-identical at any worker count.
//! * [`Xoshiro256pp`] — xoshiro256++ 1.0 (Blackman & Vigna), the
//!   general-purpose generator used wherever the old code drew from
//!   `rand::StdRng`.
//!
//! Both are exactly the reference algorithms, verified against the
//! published test vectors in this crate's tests.

#![warn(missing_docs)]

/// A minimal uniform-random source: everything the workspace draws is
/// derived from `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (the high half of
    /// [`Rng::next_u64`], which is the better-mixed half for both
    /// generators here).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `0..bound` (`bound > 0`), via Lemire-style
    /// rejection so small bounds are exactly uniform.
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Rejection zone keeps the draw unbiased.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform `bool`.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// SplitMix64: one 64-bit word of state, a Weyl sequence plus a
/// finalizer. Primarily used to *derive* seeds — it is robust to
/// correlated or low-entropy inputs, which makes it the standard way
/// to seed xoshiro state from a single word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0: the workspace's general-purpose generator.
/// 256 bits of state, seeded via SplitMix64 so that any `u64` seed —
/// including zero — yields a good stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// A generator whose state is expanded from `seed` by SplitMix64,
    /// the seeding procedure recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// A generator from a full 256-bit state (must not be all zero).
    pub fn from_state(s: [u64; 4]) -> Xoshiro256pp {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        Xoshiro256pp { s }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Derives a sub-seed from a master seed and a path of indices, e.g.
/// `derive(master, &[experiment, cell, trial])`.
///
/// Each path element advances an independent SplitMix64 chain, so
/// sibling streams (same prefix, different last element) and nested
/// streams are statistically independent and — crucially for the
/// campaign runner — depend only on the path, never on scheduling
/// order.
pub fn derive(master: u64, path: &[u64]) -> u64 {
    let mut seed = master;
    for &part in path {
        // Mix the path element in, then advance the chain one step so
        // `derive(m, &[a])` and `derive(m, &[a, 0])` differ.
        let mut mix = SplitMix64::new(seed ^ part.wrapping_mul(0xA076_1D64_78BD_642F));
        seed = mix.next_u64();
    }
    seed
}

/// A ready-to-use xoshiro256++ stream for a derived path (see
/// [`derive`]).
pub fn stream(master: u64, path: &[u64]) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(derive(master, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Published test vector: seed 1234567.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
        assert_eq!(g.next_u64(), 4593380528125082431);
        assert_eq!(g.next_u64(), 16408922859458223821);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn xoshiro_reference_step() {
        // One hand-computed step of xoshiro256++ from a simple state:
        // with s = [1, 2, 3, 4], result = rotl(1 + 4, 23) + 1.
        let mut g = Xoshiro256pp::from_state([1, 2, 3, 4]);
        assert_eq!(g.next_u64(), 5u64.rotate_left(23) + 1);
    }

    #[test]
    fn gen_range_is_in_bounds_and_hits_every_residue() {
        let mut g = Xoshiro256pp::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = g.gen_range(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn derive_separates_siblings_and_depths() {
        let m = 0xD47E_2016;
        assert_ne!(derive(m, &[0]), derive(m, &[1]));
        assert_ne!(derive(m, &[0]), derive(m, &[0, 0]));
        assert_ne!(derive(m, &[1, 2]), derive(m, &[2, 1]));
        // Pure function of (master, path).
        assert_eq!(derive(m, &[3, 1, 4]), derive(m, &[3, 1, 4]));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut g = Xoshiro256pp::seed_from_u64(1);
        let mut buf = [0u8; 13];
        g.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
