//! Authenticated sealing of protected-module state.
//!
//! §IV-C of the paper: a protected module's persisted state "should be
//! confidentiality and integrity protected using cryptographic
//! mechanisms". [`seal`] produces `nonce ‖ ciphertext ‖ tag` using
//! ChaCha20 for confidentiality and HMAC-SHA256 over the associated
//! data, nonce and ciphertext for integrity (encrypt-then-MAC).
//!
//! Sealing alone does **not** prevent rollback — an attacker can replay
//! an older validly-sealed blob. Rollback protection is layered on top
//! in `swsec-pma::continuity`.
//!
//! # Examples
//!
//! ```
//! use swsec_crypto::seal::{seal, open};
//!
//! let key = [3u8; 32];
//! let blob = seal(&key, &[9u8; 12], b"module-id", b"tries_left=3");
//! let state = open(&key, b"module-id", &blob)?;
//! assert_eq!(state, b"tries_left=3");
//! # Ok::<(), swsec_crypto::seal::SealError>(())
//! ```

use std::fmt;

use crate::hmac::{ct_eq, hkdf_sha256, hmac_sha256};
use crate::stream::{ChaCha20, KEY_LEN, NONCE_LEN};

/// Length of the authentication tag in bytes.
pub const TAG_LEN: usize = 32;

/// Why a sealed blob failed to open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// The blob is shorter than a nonce plus a tag.
    TooShort,
    /// The authentication tag did not verify (tampered blob, wrong key,
    /// or wrong associated data).
    BadTag,
}

impl fmt::Display for SealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealError::TooShort => write!(f, "sealed blob too short"),
            SealError::BadTag => write!(f, "sealed blob failed authentication"),
        }
    }
}

impl std::error::Error for SealError {}

fn derive_keys(key: &[u8; KEY_LEN]) -> ([u8; KEY_LEN], [u8; KEY_LEN]) {
    let enc = hkdf_sha256(b"swsec-seal", key, b"enc", KEY_LEN);
    let mac = hkdf_sha256(b"swsec-seal", key, b"mac", KEY_LEN);
    (
        enc.try_into().expect("length fixed"),
        mac.try_into().expect("length fixed"),
    )
}

fn tag_input(aad: &[u8], nonce: &[u8], ciphertext: &[u8]) -> Vec<u8> {
    // Length-prefix the associated data so (aad, ct) pairs cannot be
    // reinterpreted by sliding bytes across the boundary.
    let mut input = Vec::with_capacity(8 + aad.len() + nonce.len() + ciphertext.len());
    input.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    input.extend_from_slice(aad);
    input.extend_from_slice(nonce);
    input.extend_from_slice(ciphertext);
    input
}

/// Seals `plaintext` under `key`, binding it to `aad` (associated data
/// such as the module measurement). The caller supplies the `nonce`; a
/// nonce must never be reused with the same key and different plaintext.
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let (enc_key, mac_key) = derive_keys(key);
    let mut ciphertext = plaintext.to_vec();
    ChaCha20::new(&enc_key, nonce, 1).apply(&mut ciphertext);
    let tag = hmac_sha256(&mac_key, &tag_input(aad, nonce, &ciphertext));
    let mut blob = Vec::with_capacity(NONCE_LEN + ciphertext.len() + TAG_LEN);
    blob.extend_from_slice(nonce);
    blob.extend_from_slice(&ciphertext);
    blob.extend_from_slice(&tag);
    blob
}

/// Opens a blob produced by [`seal`], verifying its tag in constant
/// time before decrypting.
///
/// # Errors
///
/// [`SealError::TooShort`] for malformed blobs and [`SealError::BadTag`]
/// when authentication fails.
pub fn open(key: &[u8; KEY_LEN], aad: &[u8], blob: &[u8]) -> Result<Vec<u8>, SealError> {
    if blob.len() < NONCE_LEN + TAG_LEN {
        return Err(SealError::TooShort);
    }
    let (enc_key, mac_key) = derive_keys(key);
    let nonce: [u8; NONCE_LEN] = blob[..NONCE_LEN].try_into().expect("length checked");
    let ciphertext = &blob[NONCE_LEN..blob.len() - TAG_LEN];
    let tag = &blob[blob.len() - TAG_LEN..];
    let expected = hmac_sha256(&mac_key, &tag_input(aad, &nonce, ciphertext));
    if !ct_eq(&expected, tag) {
        return Err(SealError::BadTag);
    }
    let mut plaintext = ciphertext.to_vec();
    ChaCha20::new(&enc_key, &nonce, 1).apply(&mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [0x11; 32];
    const NONCE: [u8; 12] = [0x22; 12];

    #[test]
    fn roundtrip() {
        let blob = seal(&KEY, &NONCE, b"aad", b"secret state");
        assert_eq!(open(&KEY, b"aad", &blob).unwrap(), b"secret state");
    }

    #[test]
    fn empty_plaintext_roundtrips() {
        let blob = seal(&KEY, &NONCE, b"", b"");
        assert_eq!(open(&KEY, b"", &blob).unwrap(), b"");
    }

    #[test]
    fn tampered_ciphertext_detected() {
        let mut blob = seal(&KEY, &NONCE, b"aad", b"secret state");
        blob[NONCE_LEN] ^= 1;
        assert_eq!(open(&KEY, b"aad", &blob), Err(SealError::BadTag));
    }

    #[test]
    fn tampered_nonce_detected() {
        let mut blob = seal(&KEY, &NONCE, b"aad", b"secret state");
        blob[0] ^= 1;
        assert_eq!(open(&KEY, b"aad", &blob), Err(SealError::BadTag));
    }

    #[test]
    fn tampered_tag_detected() {
        let mut blob = seal(&KEY, &NONCE, b"aad", b"secret state");
        let last = blob.len() - 1;
        blob[last] ^= 1;
        assert_eq!(open(&KEY, b"aad", &blob), Err(SealError::BadTag));
    }

    #[test]
    fn wrong_key_rejected() {
        let blob = seal(&KEY, &NONCE, b"aad", b"secret state");
        let other = [0x12u8; 32];
        assert_eq!(open(&other, b"aad", &blob), Err(SealError::BadTag));
    }

    #[test]
    fn wrong_aad_rejected() {
        let blob = seal(&KEY, &NONCE, b"module-A", b"secret state");
        assert_eq!(open(&KEY, b"module-B", &blob), Err(SealError::BadTag));
    }

    #[test]
    fn short_blob_rejected() {
        assert_eq!(open(&KEY, b"", &[0u8; 10]), Err(SealError::TooShort));
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let blob = seal(&KEY, &NONCE, b"", b"PIN=1234");
        let body = &blob[NONCE_LEN..blob.len() - TAG_LEN];
        assert_ne!(body, b"PIN=1234");
    }

    #[test]
    fn replay_of_old_blob_still_opens() {
        // Sealing alone does NOT stop rollback: an old blob remains
        // valid. This is the gap that swsec-pma::continuity closes.
        let old = seal(&KEY, &NONCE, b"aad", b"tries_left=3");
        let newer = seal(&KEY, &[0x23; 12], b"aad", b"tries_left=1");
        assert!(open(&KEY, b"aad", &newer).is_ok());
        assert_eq!(open(&KEY, b"aad", &old).unwrap(), b"tries_left=3");
    }
}
