//! HMAC-SHA256 (RFC 2104), the MAC used for attestation reports and
//! sealed-blob authentication, plus an HKDF-style key-derivation
//! function used to derive module-private keys from the platform master
//! key and a code measurement.
//!
//! # Examples
//!
//! ```
//! use swsec_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! ```

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = Sha256::digest(key);
        key_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Derives a key of `len` bytes (≤ 8160) from input keying material,
/// following HKDF (RFC 5869) with SHA-256.
///
/// * `salt` — optional non-secret randomizer (empty is allowed);
/// * `ikm` — the input keying material;
/// * `info` — context string binding the key to its purpose, e.g. a
///   module measurement.
///
/// # Panics
///
/// Panics if `len` exceeds `255 * 32` bytes, per RFC 5869.
pub fn hkdf_sha256(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    let prk = hmac_sha256(salt, ikm);
    let mut okm = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut block_input = previous.clone();
        block_input.extend_from_slice(info);
        block_input.push(counter);
        let block = hmac_sha256(&prk, &block_input);
        previous = block.to_vec();
        okm.extend_from_slice(&block);
        counter += 1;
    }
    okm.truncate(len);
    okm
}

/// Constant-time byte-slice equality: the comparison time depends only
/// on the lengths, never on the contents, so MAC verification does not
/// leak how many prefix bytes matched.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_long_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hkdf_rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00u8..=0x0c).collect();
        let info: Vec<u8> = (0xf0u8..=0xf9).collect();
        let okm = hkdf_sha256(&salt, &ikm, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_different_info_different_keys() {
        let a = hkdf_sha256(b"", b"master", b"module-A", 32);
        let b = hkdf_sha256(b"", b"master", b"module-B", 32);
        assert_ne!(a, b);
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    #[should_panic(expected = "HKDF output too long")]
    fn hkdf_rejects_oversized_output() {
        let _ = hkdf_sha256(b"", b"x", b"", 255 * 32 + 1);
    }
}
