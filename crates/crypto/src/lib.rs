//! # swsec-crypto — self-contained primitives for the platform model
//!
//! The protected-module architecture of §IV needs exactly four
//! cryptographic capabilities, all implemented here from their
//! specifications (no external crates, so the platform model is fully
//! auditable in-tree):
//!
//! * [`sha256`] — module *measurement* (hash of a code segment);
//! * [`hmac`] — attestation MACs and HKDF key derivation
//!   (module-private keys derived from the platform master key and the
//!   measurement);
//! * [`stream`] — ChaCha20, the confidentiality half of sealing;
//! * [`seal`] — encrypt-then-MAC sealed storage for module state.
//!
//! All implementations are validated against published test vectors
//! (FIPS 180-4, RFC 4231, RFC 5869, RFC 8439) in their module tests.
//!
//! ```
//! use swsec_crypto::sha256::Sha256;
//! let measurement = Sha256::digest(b"module code bytes");
//! assert_eq!(measurement.len(), 32);
//! ```

#![warn(missing_docs)]

pub mod hmac;
pub mod seal;
pub mod sha256;
pub mod stream;

/// Renders bytes as lowercase hex, for test vectors and reports.
///
/// # Examples
///
/// ```
/// assert_eq!(swsec_crypto::to_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_hex_empty() {
        assert_eq!(to_hex(&[]), "");
    }

    #[test]
    fn to_hex_leading_zero() {
        assert_eq!(to_hex(&[0x00, 0x0f, 0xf0]), "000ff0");
    }
}
