//! The ChaCha20 stream cipher (RFC 8439), used as the confidentiality
//! half of sealed storage.
//!
//! # Examples
//!
//! ```
//! use swsec_crypto::stream::ChaCha20;
//!
//! let key = [7u8; 32];
//! let nonce = [1u8; 12];
//! let mut data = *b"protected module state";
//! ChaCha20::new(&key, &nonce, 0).apply(&mut data);
//! assert_ne!(&data, b"protected module state");
//! ChaCha20::new(&key, &nonce, 0).apply(&mut data);
//! assert_eq!(&data, b"protected module state");
//! ```

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;

/// A ChaCha20 keystream generator / XOR cipher.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher for the given key, nonce and initial block
    /// counter.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> ChaCha20 {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                key[i * 4],
                key[i * 4 + 1],
                key[i * 4 + 2],
                key[i * 4 + 3],
            ]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 { state }
    }

    /// Produces the next 64-byte keystream block and advances the
    /// counter.
    pub fn next_block(&mut self) -> [u8; 64] {
        let mut working = self.state;
        for _ in 0..10 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        out
    }

    /// XORs the keystream into `data` in place (encryption and
    /// decryption are the same operation).
    pub fn apply(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(64) {
            let block = self.next_block();
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.next_block();
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        ChaCha20::new(&key, &nonce, 1).apply(&mut data);
        assert_eq!(
            to_hex(&data[..16]),
            "6e2e359a2568f98041ba0728dd0d6981"
        );
        assert_eq!(to_hex(&data[112..]), "87 4d".replace(' ', ""));
    }

    #[test]
    fn apply_twice_is_identity() {
        let key = [0x42u8; 32];
        let nonce = [9u8; 12];
        let original: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        let mut data = original.clone();
        ChaCha20::new(&key, &nonce, 7).apply(&mut data);
        assert_ne!(data, original);
        ChaCha20::new(&key, &nonce, 7).apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = [1u8; 32];
        let mut a = ChaCha20::new(&key, &[0u8; 12], 0).next_block();
        let b = ChaCha20::new(&key, &[1u8; 12], 0).next_block();
        assert_ne!(a, b);
        // Counter advances between blocks.
        let mut c = ChaCha20::new(&key, &[0u8; 12], 0);
        a = c.next_block();
        assert_ne!(a, c.next_block());
    }
}
