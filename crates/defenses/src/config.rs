//! Whole-stack defense configurations.
//!
//! A [`DefenseConfig`] names one point in the countermeasure space of
//! §III-C1 — some combination of compiler hardening (canaries, bounds
//! checks), loader hardening (DEP, ASLR) and hardware support (shadow
//! stack). The defense-matrix experiment enumerates these points and
//! pits every attack technique against each.

use std::fmt;

use swsec_minc::HardenOptions;

use crate::aslr::AslrConfig;

/// One combination of deployed countermeasures.
///
/// `Hash` so a configuration can key warm-victim pools (the campaign
/// service shards `ForkServer`s on `(program, CompileOptions,
/// DefenseConfig)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DefenseConfig {
    /// Compiler-emitted stack canaries.
    pub canary: bool,
    /// Data Execution Prevention: page permissions enforced (W^X).
    pub dep: bool,
    /// ASLR entropy bits, if ASLR is on.
    pub aslr_bits: Option<u8>,
    /// Hardware shadow stack (return-address CFI).
    pub shadow_stack: bool,
    /// Compiler software bounds checks (test-time instrumentation).
    pub bounds_checks: bool,
}

impl DefenseConfig {
    /// No countermeasures: the early-1990s platform.
    pub fn none() -> DefenseConfig {
        DefenseConfig::default()
    }

    /// The "widely adopted" §III-C1 trio: canaries + DEP + ASLR.
    pub fn modern(aslr_bits: u8) -> DefenseConfig {
        DefenseConfig {
            canary: true,
            dep: true,
            aslr_bits: Some(aslr_bits),
            shadow_stack: false,
            bounds_checks: false,
        }
    }

    /// The compiler flags this configuration implies.
    pub fn harden_options(&self) -> HardenOptions {
        HardenOptions {
            stack_canary: self.canary,
            bounds_checks: self.bounds_checks,
            pma_fnptr_check: false,
            scrub_registers: false,
            strict_reentry: false,
            heap_quarantine: false,
        }
    }

    /// The ASLR model this configuration implies, if any.
    pub fn aslr(&self) -> Option<AslrConfig> {
        self.aslr_bits.map(AslrConfig::bits)
    }

    /// A short label for report tables, e.g. `"canary+DEP+ASLR(8)"`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.canary {
            parts.push("canary".to_string());
        }
        if self.dep {
            parts.push("DEP".to_string());
        }
        if let Some(bits) = self.aslr_bits {
            parts.push(format!("ASLR({bits})"));
        }
        if self.shadow_stack {
            parts.push("shadow-stack".to_string());
        }
        if self.bounds_checks {
            parts.push("bounds".to_string());
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

impl fmt::Display for DefenseConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_readable() {
        assert_eq!(DefenseConfig::none().label(), "none");
        assert_eq!(DefenseConfig::modern(8).label(), "canary+DEP+ASLR(8)");
        let mut c = DefenseConfig::none();
        c.shadow_stack = true;
        c.bounds_checks = true;
        assert_eq!(c.label(), "shadow-stack+bounds");
    }

    #[test]
    fn harden_options_reflect_flags() {
        let c = DefenseConfig::modern(8);
        let h = c.harden_options();
        assert!(h.stack_canary);
        assert!(!h.bounds_checks);
        assert!(!h.pma_fnptr_check);
    }

    #[test]
    fn aslr_model_tracks_bits() {
        assert!(DefenseConfig::none().aslr().is_none());
        assert_eq!(DefenseConfig::modern(12).aslr().unwrap().entropy_bits, 12);
    }
}
