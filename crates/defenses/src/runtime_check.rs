//! Test-time run-time checking (§III-C2).
//!
//! "Testing for the presence of memory safety vulnerabilities is made
//! significantly more effective with the use of run-time checks …
//! while such run-time checks often impose a performance overhead that
//! is unacceptable in production systems, this overhead can be
//! acceptable during testing."
//!
//! This module packages that workflow: compile a program twice — plain,
//! and with the software-bounds-check instrumentation — run both over a
//! test suite, and report (a) which tests the instrumented build flags
//! as memory-safety violations and (b) the instruction-count overhead
//! the instrumentation costs.

use swsec_minc::ast::Unit;
use swsec_minc::{compile, CompileError, CompileOptions};
use swsec_vm::cpu::{Fault, Machine, RunOutcome};
use swsec_vm::isa::trap;

/// Result of one instrumented test execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckedRun {
    /// The run completed without tripping a check.
    Clean {
        /// Exit code of the program.
        exit_code: u32,
    },
    /// A memory-safety check fired.
    Violation {
        /// The trap code ([`trap::BOUNDS`], [`trap::CANARY`], …).
        trap_code: u8,
    },
    /// The run faulted for another reason (wild pointer into unmapped
    /// memory — also a detection, at lower fidelity).
    Fault,
    /// The run exceeded its budget.
    Timeout,
}

/// Aggregate result of checking a program over a test suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Per-test outcomes, in input order.
    pub runs: Vec<CheckedRun>,
}

impl CheckReport {
    /// Whether any test detected a memory-safety violation.
    pub fn detected(&self) -> bool {
        self.runs
            .iter()
            .any(|r| matches!(r, CheckedRun::Violation { .. }))
    }

    /// Number of tests that flagged a violation.
    pub fn violations(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| matches!(r, CheckedRun::Violation { .. }))
            .count()
    }
}

fn run_one(unit: &Unit, opts: &CompileOptions, input: &[u8], fuel: u64) -> Result<(RunOutcome, u64), CompileError> {
    let prog = compile(unit, opts)?;
    let mut m = Machine::new();
    prog.load(&mut m)?;
    if prog.canary_addr.is_some() {
        prog.install_canary(&mut m, 0x5157_4b3d)?;
    }
    m.io_mut().feed_input(0, input);
    let outcome = m.run(fuel);
    Ok((outcome, m.stats().instructions))
}

/// Runs `unit` compiled with bounds checks and canaries over each test
/// input, classifying every run.
///
/// # Errors
///
/// Returns a [`CompileError`] if the program does not compile.
pub fn check_with_tests(
    unit: &Unit,
    tests: &[Vec<u8>],
    fuel: u64,
) -> Result<CheckReport, CompileError> {
    let mut opts = CompileOptions::default();
    opts.harden.bounds_checks = true;
    opts.harden.stack_canary = true;
    let mut runs = Vec::with_capacity(tests.len());
    let metrics = swsec_obs::metrics::global();
    for input in tests {
        let (outcome, _) = run_one(unit, &opts, input, fuel)?;
        let run = match outcome {
            RunOutcome::Halted(code) => CheckedRun::Clean { exit_code: code },
            RunOutcome::Fault(Fault::SoftwareTrap { code, .. })
                if code == trap::BOUNDS || code == trap::CANARY || code == trap::TEMPORAL =>
            {
                CheckedRun::Violation { trap_code: code }
            }
            RunOutcome::Fault(_) => CheckedRun::Fault,
            RunOutcome::OutOfFuel | RunOutcome::Blocked { .. } => CheckedRun::Timeout,
        };
        metrics.counter(
            match run {
                CheckedRun::Clean { .. } => "defenses.checked_runs.clean",
                CheckedRun::Violation { .. } => "defenses.checked_runs.violation",
                CheckedRun::Fault => "defenses.checked_runs.fault",
                CheckedRun::Timeout => "defenses.checked_runs.timeout",
            },
            1,
        );
        runs.push(run);
    }
    Ok(CheckReport { runs })
}

/// Instruction counts for the same run with and without memory-safety
/// instrumentation — the §III-C2 overhead, measured deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overhead {
    /// Instructions executed by the plain build.
    pub baseline: u64,
    /// Instructions executed by the instrumented build.
    pub instrumented: u64,
}

impl Overhead {
    /// Relative overhead, e.g. `0.35` for 35 % more instructions.
    pub fn relative(&self) -> f64 {
        if self.baseline == 0 {
            return 0.0;
        }
        self.instrumented as f64 / self.baseline as f64 - 1.0
    }
}

/// Measures the instruction-count overhead of a hardening configuration
/// on one (program, input) pair. Both builds must run to completion.
///
/// # Errors
///
/// Returns a [`CompileError`] when compilation fails or either build
/// does not halt cleanly.
pub fn measure_overhead(
    unit: &Unit,
    harden: swsec_minc::HardenOptions,
    input: &[u8],
    fuel: u64,
) -> Result<Overhead, CompileError> {
    let plain_opts = CompileOptions::default();
    let hard_opts = CompileOptions {
        harden,
        ..CompileOptions::default()
    };
    let (plain_outcome, baseline) = run_one(unit, &plain_opts, input, fuel)?;
    let (hard_outcome, instrumented) = run_one(unit, &hard_opts, input, fuel)?;
    if !plain_outcome.is_halted() || !hard_outcome.is_halted() {
        return Err(CompileError {
            message: format!(
                "overhead measurement needs clean runs (plain: {plain_outcome}, hardened: {hard_outcome})"
            ),
        });
    }
    let overhead = Overhead {
        baseline,
        instrumented,
    };
    // Per-mille keeps sub-2x overheads in distinct histogram buckets.
    swsec_obs::metrics::global().observe(
        "defenses.overhead_permille",
        (overhead.relative() * 1000.0).max(0.0) as u64,
    );
    Ok(overhead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_minc::{parse, HardenOptions};

    #[test]
    fn detects_triggered_overflow() {
        let unit = parse(
            "void main() { char buf[8]; read(0, buf, 64); }",
        )
        .unwrap();
        let report = check_with_tests(
            &unit,
            &[b"short".to_vec(), vec![b'A'; 64]],
            1_000_000,
        )
        .unwrap();
        // The oversized read is flagged regardless of input length —
        // the requested length already exceeds the buffer.
        assert!(report.detected());
        assert!(report.violations() >= 1);
    }

    #[test]
    fn clean_program_stays_clean() {
        let unit = parse(
            "void main() { char buf[8]; int n = read(0, buf, 8); write(1, buf, n); }",
        )
        .unwrap();
        let report =
            check_with_tests(&unit, &[b"hello".to_vec(), b"".to_vec()], 1_000_000).unwrap();
        assert!(!report.detected());
        assert_eq!(report.runs.len(), 2);
        assert!(matches!(report.runs[0], CheckedRun::Clean { exit_code: 0 }));
    }

    #[test]
    fn untriggered_bug_is_not_detected() {
        // The §III-C2 caveat: run-time checking only sees violations the
        // tests actually *trigger*. Here the overflow happens only when
        // the first input byte is 'X', and no test provides it.
        let unit = parse(
            "void main() { char flag[1]; read(0, flag, 1); \
             if (flag[0] == 'X') { char buf[4]; read(0, buf, 64); } }",
        )
        .unwrap();
        let miss = check_with_tests(&unit, &[b"a".to_vec(), b"b".to_vec()], 1_000_000).unwrap();
        assert!(!miss.detected());
        let hit = check_with_tests(&unit, &[b"Xpayload".to_vec()], 1_000_000).unwrap();
        assert!(hit.detected());
    }

    #[test]
    fn overhead_is_positive_for_checked_array_loops() {
        let unit = parse(
            "int main() { int a[64]; int s = 0; \
             for (int i = 0; i < 64; i++) a[i] = i; \
             for (int i = 0; i < 64; i++) s = s + a[i]; \
             return s & 0xff; }",
        )
        .unwrap();
        let mut harden = HardenOptions::none();
        harden.bounds_checks = true;
        let overhead = measure_overhead(&unit, harden, &[], 10_000_000).unwrap();
        assert!(overhead.instrumented > overhead.baseline);
        assert!(overhead.relative() > 0.05, "got {}", overhead.relative());
    }

    #[test]
    fn canary_overhead_is_small() {
        // Canaries cost a constant few instructions per call — cheap,
        // as the paper says.
        let unit = parse(
            "int work(int x) { int a[32]; \
               for (int i = 0; i < 32; i++) a[i] = x + i; \
               int s = 0; for (int i = 0; i < 32; i++) s = s + a[i]; return s; }\n\
             int main() { int s = 0; for (int i = 0; i < 20; i++) s = s + work(i); return s & 0xff; }",
        )
        .unwrap();
        let mut canary = HardenOptions::none();
        canary.stack_canary = true;
        let mut bounds = HardenOptions::none();
        bounds.bounds_checks = true;
        let canary_oh = measure_overhead(&unit, canary, &[], 10_000_000).unwrap();
        let bounds_oh = measure_overhead(&unit, bounds, &[], 10_000_000).unwrap();
        assert!(
            canary_oh.relative() < bounds_oh.relative(),
            "canary {} vs bounds {}",
            canary_oh.relative(),
            bounds_oh.relative()
        );
    }

    #[test]
    fn overhead_requires_clean_runs() {
        let unit = parse("void main() { char b[4]; read(0, b, 8); }").unwrap();
        let mut harden = HardenOptions::none();
        harden.bounds_checks = true;
        // The hardened build traps -> measurement refuses.
        assert!(measure_overhead(&unit, harden, &[b'A'; 8], 1_000_000).is_err());
    }
}
