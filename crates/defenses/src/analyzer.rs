//! Static source-code analysis for memory-safety vulnerabilities
//! (§III-C2: "source code analysis tools can help during code review").
//!
//! The analyzer walks the MinC AST looking for the two vulnerability
//! classes of §III-A:
//!
//! * **spatial** — `read(fd, buf, n)` with a constant `n` larger than
//!   the buffer; constant out-of-bounds indices; and (in paranoid mode)
//!   any buffer fill whose length the analyzer cannot bound;
//! * **temporal** — returning the address of a local variable.
//!
//! Like the industrial tools the paper cites, it has two operating
//! points: [`Precision::Precise`] reports only findings it can prove
//! (few false positives, misses data-dependent bugs) and
//! [`Precision::Paranoid`] additionally flags everything it cannot
//! rule out (catches more, at a false-positive cost). The E6 experiment
//! measures exactly this trade-off on a seeded-bug corpus.

use std::fmt;

use swsec_minc::ast::{Expr, Function, Stmt, Type, UnaryOp, Unit};

/// How aggressive the analysis is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Report only provable violations.
    Precise,
    /// Also report potential violations that cannot be ruled out.
    Paranoid,
}

/// The vulnerability class of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Out-of-bounds access (buffer overflow).
    Spatial,
    /// Use of deallocated storage (dangling pointer).
    Temporal,
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The vulnerability class.
    pub kind: FindingKind,
    /// Function the finding is in.
    pub function: String,
    /// Human-readable description.
    pub message: String,
    /// `true` when the analyzer proved the violation; `false` for
    /// paranoid-mode "cannot rule out" reports.
    pub definite: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}] {}: {}",
            match self.kind {
                FindingKind::Spatial => "spatial",
                FindingKind::Temporal => "temporal",
            },
            if self.definite { "" } else { "?" },
            self.function,
            self.message
        )
    }
}

struct Analyzer<'a> {
    unit: &'a Unit,
    precision: Precision,
    findings: Vec<Finding>,
    current_fn: String,
    // (name, element count) of in-scope fixed-size arrays; a stack of
    // scopes so shadowing behaves.
    arrays: Vec<Vec<(String, usize)>>,
    locals: Vec<Vec<String>>,
}

impl Analyzer<'_> {
    fn report(&mut self, kind: FindingKind, definite: bool, message: String) {
        self.findings.push(Finding {
            kind,
            function: self.current_fn.clone(),
            message,
            definite,
        });
    }

    fn array_len(&self, name: &str) -> Option<usize> {
        for scope in self.arrays.iter().rev() {
            for (n, len) in scope.iter().rev() {
                if n == name {
                    return Some(*len);
                }
            }
        }
        self.unit.global(name).and_then(|g| match &g.ty {
            Type::Array(_, n) => Some(*n),
            _ => None,
        })
    }

    fn is_local(&self, name: &str) -> bool {
        self.locals
            .iter()
            .any(|scope| scope.iter().any(|n| n == name))
    }

    fn const_value(e: &Expr) -> Option<i64> {
        match e {
            Expr::IntLit(v) => Some(*v),
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => Self::const_value(expr).map(|v| -v),
            _ => None,
        }
    }

    fn check_expr(&mut self, e: &Expr) {
        match e {
            Expr::Call { callee, args } => {
                if let Expr::Var(name) = callee.as_ref() {
                    if name == "read" && args.len() == 3 {
                        self.check_fill(&args[1], &args[2]);
                    }
                }
                for a in args {
                    self.check_expr(a);
                }
            }
            Expr::Index { base, index } => {
                if let (Expr::Var(name), Some(len)) =
                    (base.as_ref(), base_array(base).and_then(|n| self.array_len(n)))
                {
                    let _ = name;
                    if let Some(idx) = Self::const_value(index) {
                        if idx < 0 || idx as usize >= len {
                            self.report(
                                FindingKind::Spatial,
                                true,
                                format!("index {idx} out of bounds for array of {len}"),
                            );
                        }
                    }
                }
                self.check_expr(base);
                self.check_expr(index);
            }
            Expr::Assign { target, value } => {
                self.check_expr(target);
                self.check_expr(value);
            }
            Expr::Unary { expr, .. } => self.check_expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.check_expr(lhs);
                self.check_expr(rhs);
            }
            Expr::PostIncDec { target, .. } => self.check_expr(target),
            Expr::IntLit(_) | Expr::StrLit(_) | Expr::Var(_) => {}
        }
    }

    /// Checks `read(fd, buf, n)`-style fills of a known array.
    fn check_fill(&mut self, buf: &Expr, len: &Expr) {
        let Some(name) = base_array(buf) else { return };
        let Some(size) = self.array_len(name) else {
            return;
        };
        match Self::const_value(len) {
            Some(n) if n > size as i64 => {
                self.report(
                    FindingKind::Spatial,
                    true,
                    format!("read of {n} bytes into `{name}[{size}]`"),
                );
            }
            Some(_) => {}
            None => {
                if self.precision == Precision::Paranoid {
                    self.report(
                        FindingKind::Spatial,
                        false,
                        format!("read of unbounded length into `{name}[{size}]`"),
                    );
                }
            }
        }
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { name, ty, init } => {
                if let Type::Array(_, n) = ty {
                    self.arrays
                        .last_mut()
                        .expect("scope stack non-empty")
                        .push((name.clone(), *n));
                }
                self.locals
                    .last_mut()
                    .expect("scope stack non-empty")
                    .push(name.clone());
                if let Some(init) = init {
                    self.check_expr(init);
                }
            }
            Stmt::Expr(e) => self.check_expr(e),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_expr(cond);
                self.check_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.check_stmt(e);
                }
            }
            Stmt::While { cond, body } => {
                self.check_expr(cond);
                self.check_stmt(body);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_scope();
                if let Some(init) = init {
                    self.check_stmt(init);
                }
                if let Some(cond) = cond {
                    self.check_expr(cond);
                }
                if let Some(step) = step {
                    self.check_expr(step);
                }
                self.check_stmt(body);
                self.pop_scope();
            }
            Stmt::Return(Some(e)) => {
                // Returning &local (or a local array) escapes the frame.
                let escapee = match e {
                    Expr::Unary {
                        op: UnaryOp::Addr,
                        expr,
                    } => base_array(expr).or(match expr.as_ref() {
                        Expr::Var(n) => Some(n.as_str()),
                        _ => None,
                    }),
                    Expr::Var(name) if self.array_len(name).is_some() => Some(name.as_str()),
                    _ => None,
                };
                if let Some(name) = escapee {
                    if self.is_local(name) {
                        self.report(
                            FindingKind::Temporal,
                            true,
                            format!("returns the address of local `{name}`"),
                        );
                    }
                }
                self.check_expr(e);
            }
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
            Stmt::Block(stmts) => {
                self.push_scope();
                for s in stmts {
                    self.check_stmt(s);
                }
                self.pop_scope();
            }
        }
    }

    fn push_scope(&mut self) {
        self.arrays.push(Vec::new());
        self.locals.push(Vec::new());
    }

    fn pop_scope(&mut self) {
        self.arrays.pop();
        self.locals.pop();
    }

    fn check_function(&mut self, f: &Function) {
        let Some(body) = &f.body else { return };
        self.current_fn = f.name.clone();
        self.push_scope();
        for s in body {
            self.check_stmt(s);
        }
        self.pop_scope();
    }
}

fn base_array(e: &Expr) -> Option<&str> {
    match e {
        Expr::Var(name) => Some(name),
        _ => None,
    }
}

/// Analyzes a translation unit, returning all findings.
///
/// # Examples
///
/// ```
/// use swsec_defenses::analyzer::{analyze, Precision};
/// use swsec_minc::parse;
///
/// let unit = parse("void f(int fd) { char buf[16]; read(fd, buf, 32); }")?;
/// let findings = analyze(&unit, Precision::Precise);
/// assert_eq!(findings.len(), 1);
/// # Ok::<(), swsec_minc::ParseError>(())
/// ```
pub fn analyze(unit: &Unit, precision: Precision) -> Vec<Finding> {
    let mut analyzer = Analyzer {
        unit,
        precision,
        findings: Vec::new(),
        current_fn: String::new(),
        arrays: Vec::new(),
        locals: Vec::new(),
    };
    for f in &unit.functions {
        analyzer.check_function(f);
    }
    analyzer.findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_minc::parse;

    fn findings(src: &str, p: Precision) -> Vec<Finding> {
        analyze(&parse(src).unwrap(), p)
    }

    #[test]
    fn detects_constant_oversized_read() {
        let f = findings(
            "void f(int fd) { char buf[16]; read(fd, buf, 32); }",
            Precision::Precise,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::Spatial);
        assert!(f[0].definite);
    }

    #[test]
    fn exact_size_read_is_clean() {
        let f = findings(
            "void f(int fd) { char buf[16]; read(fd, buf, 16); }",
            Precision::Precise,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn detects_constant_oob_index() {
        let f = findings(
            "int f() { int a[4]; return a[4]; }",
            Precision::Precise,
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("out of bounds"));
    }

    #[test]
    fn detects_negative_index() {
        let f = findings("int f() { int a[4]; return a[-1]; }", Precision::Precise);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn in_bounds_index_is_clean() {
        assert!(findings("int f() { int a[4]; return a[3]; }", Precision::Precise).is_empty());
    }

    #[test]
    fn detects_returned_local_address() {
        let f = findings(
            "int *f() { int local = 1; return &local; }",
            Precision::Precise,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::Temporal);
    }

    #[test]
    fn detects_returned_local_array() {
        let f = findings(
            "char *f() { char buf[8]; return buf; }",
            Precision::Precise,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::Temporal);
    }

    #[test]
    fn returning_global_address_is_clean() {
        let f = findings(
            "int g;\nint *f() { return &g; }",
            Precision::Precise,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn precise_mode_misses_data_dependent_overflow() {
        // The length comes from input: a real bug the precise analyzer
        // cannot prove — the false-negative case of §III-C2.
        let src = "void f(int fd) { char buf[8]; char lenb[4]; read(fd, lenb, 4); \
                   read(fd, buf, lenb[0]); }";
        assert!(findings(src, Precision::Precise).is_empty());
        // Paranoid mode flags it (as indefinite).
        let paranoid = findings(src, Precision::Paranoid);
        assert_eq!(paranoid.len(), 1);
        assert!(!paranoid[0].definite);
    }

    #[test]
    fn paranoid_mode_has_false_positives() {
        // The length is dynamic but provably bounded by the programmer's
        // check — the analyzer cannot see that: a false positive.
        let src = "void f(int fd, int n) { char buf[64]; \
                   if (n > 64) { n = 64; } read(fd, buf, n); }";
        assert!(findings(src, Precision::Precise).is_empty());
        assert_eq!(findings(src, Precision::Paranoid).len(), 1);
    }

    #[test]
    fn figure1_vulnerable_server_is_flagged() {
        let src = "void get_request(int fd, char buf[]) { read(fd, buf, 32); }\n\
                   void process(int fd) { char buf[16]; get_request(fd, buf); }\n\
                   void main() { process(1); }";
        // The overflow is *inter-procedural* (buf[16] flows into a read
        // of 32 in the callee); the intra-procedural precise analyzer
        // misses it — exactly the false-negative class the paper warns
        // about — while paranoid mode flags the unbounded-looking fill.
        assert!(findings(src, Precision::Precise).is_empty());
        let same_function = "void process(int fd) { char buf[16]; read(fd, buf, 32); }";
        assert_eq!(findings(same_function, Precision::Precise).len(), 1);
    }

    #[test]
    fn scopes_do_not_leak_array_sizes() {
        let src = "void f(int fd) { { char buf[4]; read(fd, buf, 4); } \
                   { char buf[16]; read(fd, buf, 16); } }";
        assert!(findings(src, Precision::Precise).is_empty());
    }
}
