//! # swsec-defenses — the countermeasure toolbox of §III-C
//!
//! Two families, exactly as the paper divides them:
//!
//! * **countering exploitation** — [`config`] describes deployable
//!   stacks of stack canaries, DEP, ASLR ([`aslr`]) and hardware shadow
//!   stacks, applied by the loader in the `swsec` core crate;
//! * **countering introduction** — [`analyzer`] is a static
//!   source-code analyzer with the precision/recall trade-off of real
//!   tools, and [`runtime_check`] packages test-time run-time checking
//!   (detects every *triggered* violation, costs instruction overhead).
//!
//! ```
//! use swsec_defenses::analyzer::{analyze, Precision};
//! use swsec_minc::parse;
//!
//! let unit = parse("void f(int fd) { char b[8]; read(fd, b, 16); }")?;
//! assert_eq!(analyze(&unit, Precision::Precise).len(), 1);
//! # Ok::<(), swsec_minc::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod analyzer;
pub mod aslr;
pub mod config;
pub mod runtime_check;

pub use analyzer::{analyze, Finding, FindingKind, Precision};
pub use aslr::AslrConfig;
pub use config::DefenseConfig;
pub use runtime_check::{check_with_tests, measure_overhead, CheckReport, CheckedRun, Overhead};
