//! Address Space Layout Randomization (§III-C1).
//!
//! ASLR makes exploitation probabilistic: the attacker must guess where
//! things live. This module models the randomization itself (a page-
//! granular slide of each segment, with a configurable entropy) and the
//! arithmetic of defeating it by brute force, which experiment E4
//! validates empirically against the real loader.

use swsec_rng::Rng;

use swsec_minc::LayoutConfig;

/// ASLR configuration: how many bits of entropy each segment slide has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AslrConfig {
    /// Entropy of each slide, in bits (the slide is a uniform multiple
    /// of the page size in `0 .. 2^entropy_bits`).
    pub entropy_bits: u8,
    /// Randomize the stack placement.
    pub stack: bool,
    /// Randomize text and data placement.
    pub code: bool,
}

impl AslrConfig {
    /// Classic 32-bit Linux-like configuration: ~8 bits of stack and
    /// code entropy (the paper-era reality that made brute force
    /// practical on 32-bit systems).
    pub fn bits(entropy_bits: u8) -> AslrConfig {
        AslrConfig {
            entropy_bits,
            stack: true,
            code: true,
        }
    }

    /// Number of equally likely layouts per randomized segment.
    pub fn layouts(&self) -> u64 {
        1u64 << self.entropy_bits
    }

    /// Probability that one fixed guess of a single randomized address
    /// is correct.
    pub fn hit_probability(&self) -> f64 {
        1.0 / self.layouts() as f64
    }

    /// Expected number of independent attempts until a fixed guess hits
    /// (geometric distribution): `2^bits`.
    pub fn expected_attempts(&self) -> f64 {
        self.layouts() as f64
    }

    /// Applies a random slide to a layout, returning the randomized
    /// layout. Slides are page-aligned (4 KiB), independent per
    /// segment, and drawn from the configured entropy.
    pub fn randomize<R: Rng>(&self, base: LayoutConfig, rng: &mut R) -> LayoutConfig {
        let page = 4096u32;
        let mask = (self.layouts() - 1) as u32;
        let mut out = base;
        if self.code && self.entropy_bits > 0 {
            // Text and data slide independently (attacks that only need
            // *relative* offsets would survive a single image slide).
            // The data window starts past the text window's end so the
            // segments can never collide.
            let text_slide = (rng.next_u32() & mask) * page;
            out.text_base = base.text_base.wrapping_add(text_slide);
            let gap = (self.layouts() as u32) * page;
            let data_slide = (rng.next_u32() & mask) * page;
            out.data_base = base
                .data_base
                .wrapping_add(gap)
                .wrapping_add(data_slide);
            // The heap keeps its distance from the data segment (it is
            // part of the same randomized image half).
            out.heap_base = base
                .heap_base
                .wrapping_add(gap)
                .wrapping_add(data_slide);
        }
        if self.stack {
            // Slide the stack *down* so it cannot collide with the data
            // segment above.
            let slide = (rng.next_u32() & mask) * page;
            out.stack_top = base.stack_top.wrapping_sub(slide);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_rng::Xoshiro256pp;

    #[test]
    fn entropy_arithmetic() {
        let aslr = AslrConfig::bits(8);
        assert_eq!(aslr.layouts(), 256);
        assert!((aslr.hit_probability() - 1.0 / 256.0).abs() < 1e-12);
        assert!((aslr.expected_attempts() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn randomize_slides_are_page_aligned_and_bounded() {
        let aslr = AslrConfig::bits(8);
        let base = LayoutConfig::default();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            let l = aslr.randomize(base, &mut rng);
            let slide = l.text_base.wrapping_sub(base.text_base);
            assert_eq!(slide % 4096, 0);
            assert!(slide / 4096 < 256);
            let stack_slide = base.stack_top.wrapping_sub(l.stack_top);
            assert!(stack_slide / 4096 < 256);
        }
    }

    #[test]
    fn zero_bits_means_no_randomization() {
        let aslr = AslrConfig::bits(0);
        let base = LayoutConfig::default();
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let l = aslr.randomize(base, &mut rng);
        assert_eq!(l, base);
    }

    #[test]
    fn layouts_vary_across_draws() {
        let aslr = AslrConfig::bits(12);
        let base = LayoutConfig::default();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let a = aslr.randomize(base, &mut rng);
        let b = aslr.randomize(base, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn partial_randomization_respects_flags() {
        let aslr = AslrConfig {
            entropy_bits: 8,
            stack: true,
            code: false,
        };
        let base = LayoutConfig::default();
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let l = aslr.randomize(base, &mut rng);
        assert_eq!(l.text_base, base.text_base);
        assert_eq!(l.data_base, base.data_base);
        assert_ne!(l.stack_top, base.stack_top);
    }
}
