//! The typed security-event vocabulary.
//!
//! Every event the platform can observe about an attacker's execution
//! is one [`SecurityEvent`] — a small `Copy` value carrying raw
//! addresses and codes, never owned data, so emitting one allocates
//! nothing. The taxonomy follows the paper's structure: control-flow
//! observations (the raw material of control-flow-integrity defenses,
//! §III-C/§IV), platform faults (DEP, paging), defensive-check trips
//! (canaries, bounds, temporal checks) and protected-module
//! access-control denials (§IV-A).

use std::fmt;

/// How a control transfer was performed, for [`SecurityEvent::ControlTransfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlKind {
    /// A direct `call`.
    Call,
    /// An indirect `callr` through a register — the interesting kind
    /// for control-flow hijacks.
    CallIndirect,
    /// A `ret` through the (attackable) data stack.
    Ret,
    /// An indirect `jmpr` through a register.
    JmpIndirect,
}

impl ControlKind {
    /// Stable wire name used by the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            ControlKind::Call => "call",
            ControlKind::CallIndirect => "call_indirect",
            ControlKind::Ret => "ret",
            ControlKind::JmpIndirect => "jmp_indirect",
        }
    }

    /// Parses a wire name back into the kind.
    pub fn from_name(name: &str) -> Option<ControlKind> {
        Some(match name {
            "call" => ControlKind::Call,
            "call_indirect" => ControlKind::CallIndirect,
            "ret" => ControlKind::Ret,
            "jmp_indirect" => ControlKind::JmpIndirect,
            _ => return None,
        })
    }
}

/// Why execution faulted, for [`SecurityEvent::Fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Access to an unmapped page.
    Unmapped,
    /// A data access denied by page permissions.
    Perm,
    /// An instruction fetch denied by page permissions — how Data
    /// Execution Prevention manifests.
    Dep,
    /// A multi-byte access that faulted mid-word after crossing a page
    /// boundary (earlier bytes were already written).
    Straddle,
    /// Bytes that do not decode to an instruction.
    Decode,
    /// Division or remainder by zero.
    DivZero,
    /// The hardware shadow stack refused a return.
    ShadowStack,
    /// A `sys` instruction with an unknown call number.
    UnknownSyscall,
}

impl FaultKind {
    /// Stable wire name used by the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Unmapped => "unmapped",
            FaultKind::Perm => "perm",
            FaultKind::Dep => "dep",
            FaultKind::Straddle => "straddle",
            FaultKind::Decode => "decode",
            FaultKind::DivZero => "div_zero",
            FaultKind::ShadowStack => "shadow_stack",
            FaultKind::UnknownSyscall => "unknown_syscall",
        }
    }

    /// Parses a wire name back into the kind.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        Some(match name {
            "unmapped" => FaultKind::Unmapped,
            "perm" => FaultKind::Perm,
            "dep" => FaultKind::Dep,
            "straddle" => FaultKind::Straddle,
            "decode" => FaultKind::Decode,
            "div_zero" => FaultKind::DivZero,
            "shadow_stack" => FaultKind::ShadowStack,
            "unknown_syscall" => FaultKind::UnknownSyscall,
            _ => return None,
        })
    }
}

/// Which protected-module access rule was violated, for
/// [`SecurityEvent::PmaViolation`]. Numbering follows the paper's
/// §IV-A statement of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PmaRule {
    /// Rule 1: code outside a module read or wrote module memory.
    OutsideDataAccess,
    /// Rule 2: control entered module code somewhere other than an
    /// entry point.
    BadEntry,
}

impl PmaRule {
    /// The rule number as stated in the paper (1 or 2).
    pub fn number(self) -> u8 {
        match self {
            PmaRule::OutsideDataAccess => 1,
            PmaRule::BadEntry => 2,
        }
    }

    /// The rule for a given paper rule number.
    pub fn from_number(n: u8) -> Option<PmaRule> {
        Some(match n {
            1 => PmaRule::OutsideDataAccess,
            2 => PmaRule::BadEntry,
            _ => return None,
        })
    }
}

/// One observed security event.
///
/// Events are raw platform observations: addresses and codes, exactly
/// what a hardware monitor would see. Interpretation (which experiment,
/// which attack technique) happens downstream in whatever consumed the
/// stream — the events themselves stay small, `Copy` and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityEvent {
    /// A non-sequential control transfer retired: `call`, `callr`,
    /// `ret` or `jmpr`. Direct jumps are deliberately excluded — they
    /// are static control flow, invisible to an I/O attacker.
    ControlTransfer {
        /// How the transfer was performed.
        kind: ControlKind,
        /// Address of the transferring instruction.
        from: u32,
        /// The transfer target.
        to: u32,
    },
    /// Execution stopped on a platform fault.
    Fault {
        /// Why.
        kind: FaultKind,
        /// Address of the faulting instruction.
        ip: u32,
        /// The address whose access faulted (= `ip` for fetch faults).
        addr: u32,
    },
    /// A stack canary was found corrupted before function return.
    CanaryTrip {
        /// Address of the checking instruction.
        ip: u32,
    },
    /// A protected-module access-control rule fired.
    PmaViolation {
        /// Which rule.
        rule: PmaRule,
        /// The instruction pointer at the time of the access.
        from: u32,
        /// The refused address (data address or fetch target).
        to: u32,
    },
    /// A system call retired.
    Syscall {
        /// The syscall number.
        number: u8,
        /// Address of the `sys` instruction.
        ip: u32,
    },
    /// A compiler-inserted defensive check other than a canary fired
    /// (bounds, function-pointer, assertion, temporal).
    GuardCheck {
        /// The trap code.
        code: u8,
        /// Address of the trap instruction.
        ip: u32,
    },
    /// One instruction retired. Emitted only to sinks that opt in via
    /// [`EventMask::STEP`] — the raw material of the hot-address
    /// profile; far too hot for general-purpose sinks.
    Step {
        /// Address of the retired instruction.
        ip: u32,
    },
    /// A campaign cell failed terminally (panicked past its retry
    /// budget, or exceeded its wall-clock deadline). Emitted by the
    /// campaign runner, not the VM: the harness observing its *own*
    /// failure model, so a fleet dashboard sees misbehaving cells the
    /// same way it sees misbehaving attacker code.
    CellFailed {
        /// The experiment number (e.g. 16 for E16).
        experiment: u8,
        /// The cell index within that experiment.
        cell: u32,
    },
    /// The campaign service dropped a job under load: either shed from
    /// a full queue to admit higher-priority work, or rejected at
    /// submission (queue full, tenant over quota). Emitted by the
    /// service's admission control, not the VM — graceful degradation
    /// made observable, so a dashboard can see *whose* work was
    /// sacrificed and when.
    JobShed {
        /// The shedding tenant's index within its service.
        tenant: u32,
        /// The tenant-local job index that was dropped.
        job: u32,
    },
}

impl SecurityEvent {
    /// Stable wire name of this event's kind, used by the JSONL schema.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SecurityEvent::ControlTransfer { .. } => "control_transfer",
            SecurityEvent::Fault { .. } => "fault",
            SecurityEvent::CanaryTrip { .. } => "canary_trip",
            SecurityEvent::PmaViolation { .. } => "pma_violation",
            SecurityEvent::Syscall { .. } => "syscall",
            SecurityEvent::GuardCheck { .. } => "guard_check",
            SecurityEvent::Step { .. } => "step",
            SecurityEvent::CellFailed { .. } => "cell_failed",
            SecurityEvent::JobShed { .. } => "job_shed",
        }
    }

    /// The bit this event's kind occupies in an [`EventMask`].
    pub fn mask_bit(&self) -> EventMask {
        match self {
            SecurityEvent::ControlTransfer { .. } => EventMask::CONTROL,
            SecurityEvent::Fault { .. } => EventMask::FAULT,
            SecurityEvent::CanaryTrip { .. } => EventMask::CANARY,
            SecurityEvent::PmaViolation { .. } => EventMask::PMA,
            SecurityEvent::Syscall { .. } => EventMask::SYSCALL,
            SecurityEvent::GuardCheck { .. } => EventMask::GUARD,
            SecurityEvent::Step { .. } => EventMask::STEP,
            SecurityEvent::CellFailed { .. } => EventMask::CELL,
            SecurityEvent::JobShed { .. } => EventMask::SHED,
        }
    }
}

impl fmt::Display for SecurityEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityEvent::ControlTransfer { kind, from, to } => {
                write!(f, "{} {from:#010x} -> {to:#010x}", kind.name())
            }
            SecurityEvent::Fault { kind, ip, addr } => {
                write!(f, "fault[{}] at {ip:#010x} (addr {addr:#010x})", kind.name())
            }
            SecurityEvent::CanaryTrip { ip } => write!(f, "canary trip at {ip:#010x}"),
            SecurityEvent::PmaViolation { rule, from, to } => write!(
                f,
                "pma rule {} violation {from:#010x} -> {to:#010x}",
                rule.number()
            ),
            SecurityEvent::Syscall { number, ip } => {
                write!(f, "syscall {number} at {ip:#010x}")
            }
            SecurityEvent::GuardCheck { code, ip } => {
                write!(f, "guard check {code} tripped at {ip:#010x}")
            }
            SecurityEvent::Step { ip } => write!(f, "step {ip:#010x}"),
            SecurityEvent::CellFailed { experiment, cell } => {
                write!(f, "campaign cell E{experiment}/{cell} failed")
            }
            SecurityEvent::JobShed { tenant, job } => {
                write!(f, "serve job {tenant}/{job} shed")
            }
        }
    }
}

/// A bitmask of event kinds a sink wants to receive.
///
/// The emitter queries a sink's interests once, when the sink is
/// attached, and skips the construction *and* delivery of unwanted
/// kinds — so a counting sink that ignores [`SecurityEvent::Step`]
/// costs nothing per retired instruction.
///
/// `u16`-backed: the first eight bits are taken by the original
/// taxonomy and the harness self-observation kinds keep growing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMask(pub u16);

impl EventMask {
    /// No events at all.
    pub const NONE: EventMask = EventMask(0);
    /// Control transfers (calls, rets, indirect jumps).
    pub const CONTROL: EventMask = EventMask(1);
    /// Platform faults.
    pub const FAULT: EventMask = EventMask(1 << 1);
    /// Canary trips.
    pub const CANARY: EventMask = EventMask(1 << 2);
    /// Protected-module violations.
    pub const PMA: EventMask = EventMask(1 << 3);
    /// System calls.
    pub const SYSCALL: EventMask = EventMask(1 << 4);
    /// Non-canary defensive checks.
    pub const GUARD: EventMask = EventMask(1 << 5);
    /// Per-instruction steps (hot; opt-in only).
    pub const STEP: EventMask = EventMask(1 << 6);
    /// Campaign cell failures (harness self-observation).
    pub const CELL: EventMask = EventMask(1 << 7);
    /// Service jobs shed or rejected under load (harness
    /// self-observation).
    pub const SHED: EventMask = EventMask(1 << 8);
    /// Everything except [`EventMask::STEP`] — the default interest set.
    pub const DEFAULT: EventMask = EventMask(
        EventMask::CONTROL.0
            | EventMask::FAULT.0
            | EventMask::CANARY.0
            | EventMask::PMA.0
            | EventMask::SYSCALL.0
            | EventMask::GUARD.0
            | EventMask::CELL.0
            | EventMask::SHED.0,
    );
    /// Every kind, including per-instruction steps.
    pub const ALL: EventMask = EventMask(EventMask::DEFAULT.0 | EventMask::STEP.0);

    /// Whether every bit of `other` is set in `self`.
    #[inline]
    pub fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// The union of two masks.
    pub fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_roundtrip() {
        for k in [
            ControlKind::Call,
            ControlKind::CallIndirect,
            ControlKind::Ret,
            ControlKind::JmpIndirect,
        ] {
            assert_eq!(ControlKind::from_name(k.name()), Some(k));
        }
        for k in [
            FaultKind::Unmapped,
            FaultKind::Perm,
            FaultKind::Dep,
            FaultKind::Straddle,
            FaultKind::Decode,
            FaultKind::DivZero,
            FaultKind::ShadowStack,
            FaultKind::UnknownSyscall,
        ] {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        for r in [PmaRule::OutsideDataAccess, PmaRule::BadEntry] {
            assert_eq!(PmaRule::from_number(r.number()), Some(r));
        }
        assert_eq!(ControlKind::from_name("nope"), None);
        assert_eq!(FaultKind::from_name("nope"), None);
        assert_eq!(PmaRule::from_number(9), None);
    }

    #[test]
    fn masks_compose() {
        assert!(EventMask::ALL.contains(EventMask::STEP));
        assert!(!EventMask::DEFAULT.contains(EventMask::STEP));
        assert!(EventMask::DEFAULT.contains(EventMask::CANARY.union(EventMask::PMA)));
        let ev = SecurityEvent::CanaryTrip { ip: 0x1000 };
        assert!(EventMask::DEFAULT.contains(ev.mask_bit()));
        assert_eq!(ev.kind_name(), "canary_trip");
        let shed = SecurityEvent::JobShed { tenant: 0, job: 3 };
        assert!(EventMask::DEFAULT.contains(shed.mask_bit()));
        assert_eq!(shed.kind_name(), "job_shed");
    }

    #[test]
    fn display_is_informative() {
        let ev = SecurityEvent::PmaViolation {
            rule: PmaRule::BadEntry,
            from: 0x1000,
            to: 0x2004,
        };
        let s = ev.to_string();
        assert!(s.contains("rule 2"));
        assert!(s.contains("0x00002004"));
    }
}
