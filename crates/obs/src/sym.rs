//! Guest symbolization: label → address-range tables for profiles.
//!
//! The assembler and the MinC code generator both know where every
//! function starts; a [`SymbolTable`] turns those point labels into
//! half-open address ranges (each symbol ends where the next begins,
//! the last at the caller-supplied text end) so a sampled guest PC —
//! or a return address inside a caller — resolves to a function name.
//!
//! The table lives here, at the bottom of the workspace dependency
//! stack, so the VM's profiler can render `.folded` flamegraph lines
//! against it without depending on the assembler or compiler.

/// A sorted label → address-range table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    // (start, end, name), sorted by start, non-overlapping.
    syms: Vec<(u32, u32, String)>,
}

impl SymbolTable {
    /// An empty table: every address resolves to `None` (renderers fall
    /// back to hex).
    #[must_use]
    pub fn empty() -> SymbolTable {
        SymbolTable::default()
    }

    /// Builds a table from point labels. Each label's range runs to the
    /// next label's address (ties keep the first name in iteration
    /// order), the last to `end`. Labels at or past `end` — e.g. an
    /// `__text_end` marker — produce empty ranges and are dropped.
    #[must_use]
    pub fn from_labels<N: Into<String>>(
        labels: impl IntoIterator<Item = (N, u32)>,
        end: u32,
    ) -> SymbolTable {
        let mut points: Vec<(u32, String)> = labels
            .into_iter()
            .map(|(name, addr)| (addr, name.into()))
            .collect();
        points.sort_by_key(|a| a.0);
        points.dedup_by_key(|p| p.0);
        let mut syms = Vec::with_capacity(points.len());
        for (n, (start, name)) in points.iter().enumerate() {
            let range_end = points.get(n + 1).map_or(end, |next| next.0);
            if *start < range_end {
                syms.push((*start, range_end, name.clone()));
            }
        }
        SymbolTable { syms }
    }

    /// Number of symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether the table has no symbols.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// The name whose range contains `addr`.
    #[must_use]
    pub fn resolve(&self, addr: u32) -> Option<&str> {
        let n = self.syms.partition_point(|(start, _, _)| *start <= addr);
        let (start, end, name) = self.syms.get(n.checked_sub(1)?)?;
        debug_assert!(*start <= addr);
        (addr < *end).then_some(name.as_str())
    }

    /// Renders `addr` as its symbol name, or `0x{addr:x}` when
    /// unresolved — the exact frame spelling `.folded` output uses.
    #[must_use]
    pub fn frame(&self, addr: u32) -> String {
        match self.resolve(addr) {
            Some(name) => name.to_string(),
            None => format!("0x{addr:x}"),
        }
    }

    /// Iterates `(start, end, name)` ranges in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &str)> {
        self.syms.iter().map(|(s, e, n)| (*s, *e, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::from_labels(
            vec![("main", 0x1000u32), ("handle", 0x1040), ("__text_end", 0x1080)],
            0x1080,
        )
    }

    #[test]
    fn resolves_interior_and_boundary_addresses() {
        let t = table();
        assert_eq!(t.resolve(0x1000), Some("main"));
        assert_eq!(t.resolve(0x103f), Some("main"));
        assert_eq!(t.resolve(0x1040), Some("handle"));
        assert_eq!(t.resolve(0x107f), Some("handle"));
    }

    #[test]
    fn out_of_range_addresses_miss() {
        let t = table();
        assert_eq!(t.resolve(0x0fff), None);
        assert_eq!(t.resolve(0x1080), None);
        assert_eq!(t.resolve(0xffff_ffff), None);
    }

    #[test]
    fn end_markers_are_dropped() {
        // __text_end sits exactly at `end`: zero-length, not a symbol.
        assert_eq!(table().len(), 2);
    }

    #[test]
    fn frame_falls_back_to_hex() {
        let t = table();
        assert_eq!(t.frame(0x1041), "handle");
        assert_eq!(t.frame(0x9000), "0x9000");
        assert_eq!(SymbolTable::empty().frame(0x1000), "0x1000");
    }

    #[test]
    fn unsorted_input_sorts() {
        let t = SymbolTable::from_labels(vec![("b", 0x20u32), ("a", 0x10)], 0x30);
        assert_eq!(t.resolve(0x10), Some("a"));
        assert_eq!(t.resolve(0x2f), Some("b"));
    }
}
