//! AFL-style edge/event coverage over the security-event stream.
//!
//! The fuzzer in `swsec-fuzz` needs a cheap novelty signal: "did this
//! input drive the victim somewhere no earlier input did?". The event
//! stream already carries exactly the right raw material — control
//! transfers (edges), classified faults, canary trips, PMA violations
//! and guard checks — so coverage is just another [`EventSink`]:
//!
//! * every control-transfer edge `(kind, from, to)` hashes into a slot
//!   of a fixed-size byte map whose cells count hits (saturating);
//! * "rare events" — fault classes, canary trips, PMA rules, guard
//!   checks — get *reserved* slots at the top of the map, so a run
//!   that triggers a new event class always looks novel regardless of
//!   how its edges hash, plus a hashed slot keyed by the event site so
//!   distinct trip locations stay distinguishable;
//! * hit counts are compared through the classic AFL bucket curve
//!   (1, 2, 3, 4–7, 8–15, 16–31, 32–127, 128+), so "loop ran 5 times"
//!   and "loop ran 6 times" are the same behaviour but "ran once" and
//!   "ran a hundred times" are not.
//!
//! Everything here is deterministic: the same event sequence yields
//! the same [`CoverageMap`], the same fingerprint and the same
//! [`CoverageGain`] against the same accumulated [`GlobalCoverage`].

use std::sync::atomic::{AtomicU8, Ordering};

use crate::event::{EventMask, SecurityEvent};
use crate::sink::EventSink;

/// Number of slots in the coverage map. Small enough that a map copy
/// is trivially cheap per fuzz attempt, large enough that the edge
/// population of a MinC victim (hundreds of edges) rarely collides.
pub const MAP_SIZE: usize = 1 << 12;

/// Slots reserved at the top of the map for rare-event *classes*.
const RARE_SLOTS: usize = 16;
/// First reserved slot; hashed edges stay below this.
const RARE_BASE: usize = MAP_SIZE - RARE_SLOTS;

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The map slot for an edge, keyed by a per-event-family tag and two
/// addresses. Always lands below [`RARE_BASE`].
///
/// Public so an execution engine can pre-resolve the slot of an edge
/// whose endpoints are known ahead of time (a compiled static call)
/// and later bump it via [`CoverageSink::bump_slot`] without
/// constructing a [`SecurityEvent`].
pub fn edge_slot(tag: u8, from: u32, to: u32) -> usize {
    let key = (u64::from(tag) << 56) ^ (u64::from(from) << 24) ^ u64::from(to);
    (mix(key) as usize) % RARE_BASE
}

/// The reserved class slot for a rare event, by stable class index
/// (0–7 fault kinds, 8 canary, 9–10 PMA rules, 11 guard checks).
fn rare_slot(class: usize) -> usize {
    RARE_BASE + (class % RARE_SLOTS)
}

/// An [`EventSink`] accumulating a hit-count coverage map over one run.
///
/// Attach it to the machine (or a [`ForkServer`]-style harness) before
/// an attempt, [`take_map`](CoverageSink::take_map) after: the sink is
/// interior-mutable and cheap enough to leave attached across
/// millions of snapshot-served attempts.
///
/// [`ForkServer`]: ../../swsec/harness/struct.ForkServer.html
pub struct CoverageSink {
    map: Box<[AtomicU8]>,
}

impl CoverageSink {
    /// An empty coverage map.
    pub fn new() -> CoverageSink {
        let map: Vec<AtomicU8> = (0..MAP_SIZE).map(|_| AtomicU8::new(0)).collect();
        CoverageSink {
            map: map.into_boxed_slice(),
        }
    }

    fn bump(&self, slot: usize) {
        // Saturating increment: a slot stuck at 255 stays there rather
        // than wrapping back to "never hit".
        let _ = self.map[slot].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            v.checked_add(1)
        });
    }

    /// Bumps a pre-resolved map slot directly — the devirtualized
    /// equivalent of [`record`](EventSink::record) for an edge whose
    /// slot was computed ahead of time with [`edge_slot`]. Updating the
    /// same slot through either path yields byte-identical maps.
    #[inline]
    pub fn bump_slot(&self, slot: usize) {
        self.bump(slot);
    }

    /// Bumps the slot of the control-transfer edge `(tag, from, to)`
    /// without constructing the event, where `tag` is the
    /// [`ControlKind`](crate::event::ControlKind) discriminant — the
    /// exact key [`record`](EventSink::record) uses for
    /// `ControlTransfer`, so the resulting map is byte-identical to
    /// the event path.
    #[inline]
    pub fn bump_edge(&self, tag: u8, from: u32, to: u32) {
        self.bump(edge_slot(tag, from, to));
    }

    /// Copies the current hit counts out and clears the map, ready for
    /// the next attempt. Slots are probed with a plain load and only
    /// swapped when non-zero: a short run touches a handful of slots,
    /// and relaxed loads cost a fraction of an atomic exchange, so this
    /// keeps the per-attempt sweep off a fuzzing loop's critical path.
    pub fn take_map(&self) -> CoverageMap {
        let mut counts = vec![0u8; MAP_SIZE];
        for (slot, cell) in self.map.iter().enumerate() {
            if cell.load(Ordering::Relaxed) != 0 {
                counts[slot] = cell.swap(0, Ordering::Relaxed);
            }
        }
        CoverageMap { counts }
    }

    /// Clears the map without reading it. Load-before-store for the
    /// same reason as [`take_map`](CoverageSink::take_map).
    pub fn reset(&self) {
        for cell in self.map.iter() {
            if cell.load(Ordering::Relaxed) != 0 {
                cell.store(0, Ordering::Relaxed);
            }
        }
    }
}

impl Default for CoverageSink {
    fn default() -> CoverageSink {
        CoverageSink::new()
    }
}

impl EventSink for CoverageSink {
    fn record(&self, event: &SecurityEvent) {
        match *event {
            SecurityEvent::ControlTransfer { kind, from, to } => {
                self.bump(edge_slot(kind as u8, from, to));
            }
            SecurityEvent::Fault { kind, ip, addr } => {
                self.bump(rare_slot(kind as usize & 7));
                self.bump(edge_slot(0x10 | (kind as u8), ip, addr));
            }
            SecurityEvent::CanaryTrip { ip } => {
                self.bump(rare_slot(8));
                self.bump(edge_slot(0x20, ip, 0));
            }
            SecurityEvent::PmaViolation { rule, from, to } => {
                self.bump(rare_slot(8 + rule.number() as usize));
                self.bump(edge_slot(0x30, from, to));
            }
            SecurityEvent::GuardCheck { code, ip } => {
                self.bump(rare_slot(11));
                self.bump(edge_slot(0x40, ip, u32::from(code)));
            }
            _ => {}
        }
    }

    fn interests(&self) -> EventMask {
        EventMask::CONTROL
            .union(EventMask::FAULT)
            .union(EventMask::CANARY)
            .union(EventMask::PMA)
            .union(EventMask::GUARD)
    }
}

/// One run's coverage: raw hit counts per slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageMap {
    counts: Vec<u8>,
}

/// The AFL bucket curve: maps a raw hit count to a one-bit behaviour
/// class (1, 2, 3, 4–7, 8–15, 16–31, 32–127, 128+).
fn bucket(count: u8) -> u8 {
    match count {
        0 => 0,
        1 => 1 << 0,
        2 => 1 << 1,
        3 => 1 << 2,
        4..=7 => 1 << 3,
        8..=15 => 1 << 4,
        16..=31 => 1 << 5,
        32..=127 => 1 << 6,
        _ => 1 << 7,
    }
}

impl CoverageMap {
    /// Number of slots hit at least once.
    pub fn covered(&self) -> usize {
        self.counts.iter().filter(|&&c| c != 0).count()
    }

    /// A stable 64-bit digest of the *bucketized* map: two runs with
    /// the same behaviour classes fingerprint identically even when
    /// raw counts wobble within a bucket.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for (slot, &count) in self.counts.iter().enumerate() {
            if count != 0 {
                h ^= mix((slot as u64) << 8 | u64::from(bucket(count)));
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

/// What a run contributed beyond everything already seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageGain {
    /// Slots never hit before this run.
    pub new_slots: usize,
    /// Previously-hit slots reaching a new hit-count bucket.
    pub new_buckets: usize,
    /// New slots among the reserved rare-event class slots.
    pub new_rare: usize,
}

impl CoverageGain {
    /// Whether the run added anything at all.
    pub fn novel(&self) -> bool {
        self.new_slots > 0 || self.new_buckets > 0
    }
}

/// The accumulated coverage of a whole fuzzing session: per slot, the
/// union of every bucket bit any run reached.
#[derive(Debug, Clone)]
pub struct GlobalCoverage {
    seen: Vec<u8>,
}

impl GlobalCoverage {
    /// Nothing seen yet.
    pub fn new() -> GlobalCoverage {
        GlobalCoverage {
            seen: vec![0u8; MAP_SIZE],
        }
    }

    /// Folds one run's map in, returning what was new.
    pub fn observe(&mut self, run: &CoverageMap) -> CoverageGain {
        let mut gain = CoverageGain {
            new_slots: 0,
            new_buckets: 0,
            new_rare: 0,
        };
        for (slot, &count) in run.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let bit = bucket(count);
            let prior = self.seen[slot];
            if prior == 0 {
                gain.new_slots += 1;
                if slot >= RARE_BASE {
                    gain.new_rare += 1;
                }
            } else if prior & bit == 0 {
                gain.new_buckets += 1;
            }
            self.seen[slot] = prior | bit;
        }
        gain
    }

    /// Slots hit by any run so far.
    pub fn covered(&self) -> usize {
        self.seen.iter().filter(|&&b| b != 0).count()
    }
}

impl Default for GlobalCoverage {
    fn default() -> GlobalCoverage {
        GlobalCoverage::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ControlKind, FaultKind, PmaRule};

    fn edge(from: u32, to: u32) -> SecurityEvent {
        SecurityEvent::ControlTransfer {
            kind: ControlKind::Call,
            from,
            to,
        }
    }

    #[test]
    fn identical_event_sequences_cover_identically() {
        let a = CoverageSink::new();
        let b = CoverageSink::new();
        for s in [&a, &b] {
            s.record(&edge(0x1000, 0x2000));
            s.record(&edge(0x1000, 0x2000));
            s.record(&edge(0x2000, 0x3000));
        }
        let (ma, mb) = (a.take_map(), b.take_map());
        assert_eq!(ma, mb);
        assert_eq!(ma.fingerprint(), mb.fingerprint());
        assert_eq!(ma.covered(), 2);
    }

    #[test]
    fn direct_bumps_match_the_event_path_byte_for_byte() {
        let by_event = CoverageSink::new();
        let by_slot = CoverageSink::new();
        for (from, to) in [(0x1000, 0x2000), (0x1000, 0x2000), (0x2000, 0x3000)] {
            by_event.record(&edge(from, to));
            by_slot.bump_edge(ControlKind::Call as u8, from, to);
        }
        by_event.record(&SecurityEvent::ControlTransfer {
            kind: ControlKind::Ret,
            from: 5,
            to: 6,
        });
        by_slot.bump_slot(edge_slot(ControlKind::Ret as u8, 5, 6));
        let (a, b) = (by_event.take_map(), by_slot.take_map());
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn take_map_resets_for_the_next_attempt() {
        let sink = CoverageSink::new();
        sink.record(&edge(1, 2));
        assert_eq!(sink.take_map().covered(), 1);
        assert_eq!(sink.take_map().covered(), 0);
    }

    #[test]
    fn rare_events_always_claim_reserved_slots() {
        let sink = CoverageSink::new();
        sink.record(&SecurityEvent::Fault {
            kind: FaultKind::Dep,
            ip: 0x1234,
            addr: 0x1234,
        });
        sink.record(&SecurityEvent::CanaryTrip { ip: 0x4321 });
        sink.record(&SecurityEvent::PmaViolation {
            rule: PmaRule::BadEntry,
            from: 1,
            to: 2,
        });
        let mut global = GlobalCoverage::new();
        let gain = global.observe(&sink.take_map());
        assert_eq!(gain.new_rare, 3, "three distinct event classes");
        assert!(gain.novel());
    }

    #[test]
    fn bucket_curve_separates_orders_of_magnitude_not_noise() {
        // 5 vs 6 hits: same bucket. 1 vs 100: different.
        assert_eq!(bucket(5), bucket(6));
        assert_ne!(bucket(1), bucket(100));
        let sink = CoverageSink::new();
        let mut global = GlobalCoverage::new();
        for _ in 0..5 {
            sink.record(&edge(7, 8));
        }
        assert!(global.observe(&sink.take_map()).novel());
        for _ in 0..6 {
            sink.record(&edge(7, 8));
        }
        // 6 hits is the same 4–7 bucket as 5: nothing new.
        assert!(!global.observe(&sink.take_map()).novel());
        for _ in 0..100 {
            sink.record(&edge(7, 8));
        }
        // 100 hits reaches the 32–127 bucket: a new behaviour class.
        let gain = global.observe(&sink.take_map());
        assert_eq!(gain.new_buckets, 1);
        assert!(gain.novel());
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        let sink = CoverageSink::new();
        for _ in 0..1000 {
            sink.record(&edge(9, 10));
        }
        let map = sink.take_map();
        assert_eq!(map.covered(), 1, "saturated slot still counts as hit");
    }

    #[test]
    fn interests_exclude_the_hot_step_stream() {
        let sink = CoverageSink::new();
        assert!(sink.interests().contains(EventMask::CONTROL));
        assert!(sink.interests().contains(EventMask::FAULT));
        assert!(!sink.interests().contains(EventMask::STEP));
        assert!(!sink.interests().contains(EventMask::SYSCALL));
    }
}
