//! `swsec-obs` — structured observability for the swsec laboratory.
//!
//! The paper's subject is what an attacker's *execution does*:
//! control-flow redirection, canary trips, DEP faults, protected-module
//! access denials. This crate turns those moments into data:
//!
//! - [`event`] — the typed, allocation-free [`SecurityEvent`]
//!   vocabulary and the [`EventMask`] interest bitmask.
//! - [`sink`] — the pluggable [`EventSink`] trait plus stock sinks
//!   (bounded ring buffer, per-kind counters, hot-address profile,
//!   fanout) and the process-wide default sink the VM attaches to new
//!   machines.
//! - [`coverage`] — an AFL-style edge/event coverage map over the
//!   event stream: the novelty signal behind the `swsec-fuzz`
//!   coverage-guided fuzzer.
//! - [`jsonl`] — the versioned, round-trippable JSONL wire schema and
//!   a streaming export sink.
//! - [`metrics`] — a registry of named counters and fixed-bucket
//!   histograms with a deterministic render.
//! - [`span`] — hierarchical spans over the campaign → cell → attempt
//!   lifecycle, with a deterministic sequence clock in every render
//!   path and Chrome `trace_event` export for Perfetto timelines.
//! - [`sym`] — label → address-range symbol tables, so sampled guest
//!   PCs resolve to guest function names in `.folded` profiles.
//! - [`json`] — the self-contained JSON support underneath [`jsonl`]
//!   (the workspace builds offline, with no registry dependencies).
//!
//! The crate depends on nothing but `std`, so every other crate in the
//! workspace — including the VM — can emit into it without dependency
//! cycles.
//!
//! # Determinism contract
//!
//! Nothing in this crate reads the wall clock or other ambient state on
//! a render path. [`MetricsRegistry::render`], ring-buffer drains and
//! hot-address tables are pure functions of what was recorded, so the
//! workspace invariant from earlier PRs — experiment reports are
//! byte-identical however telemetry is configured — extends to the
//! telemetry itself: a deterministic run yields a deterministic dump.

#![warn(missing_docs)]

pub mod coverage;
pub mod event;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod sym;

pub use coverage::{CoverageGain, CoverageMap, CoverageSink, GlobalCoverage};
pub use event::{ControlKind, EventMask, FaultKind, PmaRule, SecurityEvent};
pub use jsonl::{JsonlSink, LineError, Record, SCHEMA_VERSION};
pub use metrics::{Histogram, MetricsRegistry};
pub use span::{ChromeInstant, Span, SpanCollector, SpanKind, SpanMask, SpanRecord, SpanRecorder};
pub use sym::SymbolTable;
pub use sink::{
    clear_default_sink, default_sink, set_default_sink, CountingSink, EventCounts, EventSink,
    FanoutSink, HotAddressSink, RingBufferSink,
};
