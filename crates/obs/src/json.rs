//! A minimal JSON value model, serializer and parser.
//!
//! The workspace builds with zero registry dependencies, so the
//! telemetry schema carries its own JSON implementation: enough of
//! RFC 8259 for the flat, machine-generated records the JSONL layer
//! emits (objects, arrays, strings, integer/float numbers, booleans,
//! null), with deterministic serialization — object keys render in
//! insertion order, and no wall-clock or locale state is consulted
//! anywhere on the render path.

use std::collections::BTreeMap;
use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is an exact unsigned integer.
    UInt(u64),
    /// A number that is an exact negative integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), which the serializer for
    /// [`Obj`] avoids by keeping insertion order — parsed objects
    /// compare by content, not key order.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Writes `s` as a JSON string literal (quotes + escapes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // Always keep a decimal point or exponent so the
                    // value parses back as a float.
                    let s = format!("{x}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null.
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// An insertion-ordered JSON object builder: what the JSONL layer uses
/// so every record renders its fields in a stable, human-legible order
/// (`v`, `type`, `kind`, …) rather than alphabetically.
#[derive(Debug, Default)]
pub struct Obj {
    fields: Vec<(&'static str, Json)>,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    /// Appends a field.
    pub fn push(mut self, key: &'static str, value: Json) -> Obj {
        self.fields.push((key, value));
        self
    }

    /// Appends a string field.
    pub fn str(self, key: &'static str, value: &str) -> Obj {
        self.push(key, Json::Str(value.to_string()))
    }

    /// Appends an unsigned-integer field.
    pub fn u64(self, key: &'static str, value: u64) -> Obj {
        self.push(key, Json::UInt(value))
    }

    /// Renders the object as one compact JSON line (no trailing
    /// newline).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push('}');
        out
    }
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value from `input`; trailing whitespace is
/// allowed, any other trailing content is an error.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // schema; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| ParseError {
                at: start,
                message: format!("bad number {text:?}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_record() {
        let v = parse(r#"{"v":1,"type":"event","kind":"canary_trip","ip":4096}"#).unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("canary_trip"));
        assert_eq!(v.get("ip").and_then(Json::as_u64), Some(4096));
    }

    #[test]
    fn parses_nested_arrays_numbers_strings() {
        let v = parse(r#"{"a":[1,-2,3.5],"b":{"c":true,"d":null},"s":"x\ny\"z\""}"#).unwrap();
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.0));
        assert_eq!(a[2].as_f64(), Some(3.5));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x\ny\"z\""));
    }

    #[test]
    fn serialization_roundtrips() {
        let src = r#"{"arr":[1,2,{"x":"a b"}],"f":1.25,"n":null,"neg":-7,"t":true}"#;
        let v = parse(src).unwrap();
        let rendered = v.to_string();
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn obj_preserves_insertion_order() {
        let line = Obj::new().u64("v", 1).str("type", "event").u64("ip", 7).render();
        assert_eq!(line, r#"{"v":1,"type":"event","ip":7}"#);
        // And parses back to the same content.
        let parsed = parse(&line).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("event"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn float_render_keeps_float_shape() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }
}
