//! Hierarchical spans over the campaign → cell → attempt lifecycle.
//!
//! Flat events (the [`crate::event`] vocabulary) say *what* happened;
//! spans say *inside what*. A span is a named, nested interval —
//! `campaign`, `cell`, `attempt`, `compile`, `boot`, `restore`,
//! `execute` — opened and closed RAII-style via [`Span`] guards.
//!
//! # Determinism contract
//!
//! Every span carries **two clocks**:
//!
//! * a **sequence clock** — a per-track counter that ticks once at every
//!   open and every close. Sequence numbers are a pure function of the
//!   recorded work, so any render built from them ([`render_tree`]) is
//!   byte-identical at any worker count;
//! * a **wall clock** (microseconds since the collector's epoch) — used
//!   *only* in exported telemetry ([`chrome_trace`], the JSONL `span`
//!   records), never in a render path.
//!
//! Tracks keep concurrent recorders independent: the campaign runner
//! gives every cell slot its own track, so interleaving across worker
//! threads cannot perturb any track's sequence numbering.
//!
//! # Cost model
//!
//! Spans are interest-masked ([`SpanMask`]) and routed through a
//! thread-local current recorder ([`with_recorder`]). When no recorder
//! is installed — or the span's kind is masked off — [`enter`] returns
//! a disabled guard without allocating; instrumented code in the
//! loader and harness costs one thread-local read on the cold setup
//! paths it annotates and nothing on the instruction hot path.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{escape_into, Json, Obj};

/// Interest bitmask over [`SpanKind`]s, mirroring
/// [`EventMask`](crate::event::EventMask) for events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanMask(u16);

impl SpanMask {
    /// No spans.
    pub const NONE: SpanMask = SpanMask(0);
    /// The whole campaign run.
    pub const CAMPAIGN: SpanMask = SpanMask(1);
    /// One experiment cell.
    pub const CELL: SpanMask = SpanMask(1 << 1);
    /// One attack attempt (fork-server `execute`). High volume.
    pub const ATTEMPT: SpanMask = SpanMask(1 << 2);
    /// A MinC compile (cache miss).
    pub const COMPILE: SpanMask = SpanMask(1 << 3);
    /// Loading + arming a machine.
    pub const BOOT: SpanMask = SpanMask(1 << 4);
    /// A snapshot restore. High volume.
    pub const RESTORE: SpanMask = SpanMask(1 << 5);
    /// A guest `run` window. High volume.
    pub const EXECUTE: SpanMask = SpanMask(1 << 6);
    /// One service job ([`SpanKind::Job`]).
    pub const JOB: SpanMask = SpanMask(1 << 7);
    /// Every kind.
    pub const ALL: SpanMask = SpanMask(0xff);
    /// The default interest set: lifecycle structure without the
    /// per-attempt flood (`ATTEMPT`/`RESTORE`/`EXECUTE` are opt-in —
    /// at ~10⁶ attempts/s they dominate the recording, not the story).
    pub const DEFAULT: SpanMask = SpanMask(
        SpanMask::CAMPAIGN.0 | SpanMask::CELL.0 | SpanMask::COMPILE.0 | SpanMask::BOOT.0,
    );

    /// Union of two masks.
    #[must_use]
    pub const fn union(self, other: SpanMask) -> SpanMask {
        SpanMask(self.0 | other.0)
    }

    /// Whether `kind` is of interest.
    #[must_use]
    pub const fn contains(self, kind: SpanKind) -> bool {
        self.0 & kind.bit().0 != 0
    }
}

/// The fixed span vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// The whole campaign run.
    Campaign,
    /// One experiment cell.
    Cell,
    /// One attack attempt.
    Attempt,
    /// A MinC compile.
    Compile,
    /// Loading + arming a machine.
    Boot,
    /// A snapshot restore.
    Restore,
    /// A guest `run` window.
    Execute,
    /// One campaign-service job: every attempt, restore and execute a
    /// leased fork server performs for one tenant request.
    Job,
}

impl SpanKind {
    /// Stable wire/render name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::Campaign => "campaign",
            SpanKind::Cell => "cell",
            SpanKind::Attempt => "attempt",
            SpanKind::Compile => "compile",
            SpanKind::Boot => "boot",
            SpanKind::Restore => "restore",
            SpanKind::Execute => "execute",
            SpanKind::Job => "job",
        }
    }

    /// The mask bit for this kind.
    #[must_use]
    pub const fn bit(self) -> SpanMask {
        match self {
            SpanKind::Campaign => SpanMask::CAMPAIGN,
            SpanKind::Cell => SpanMask::CELL,
            SpanKind::Attempt => SpanMask::ATTEMPT,
            SpanKind::Compile => SpanMask::COMPILE,
            SpanKind::Boot => SpanMask::BOOT,
            SpanKind::Restore => SpanMask::RESTORE,
            SpanKind::Execute => SpanMask::EXECUTE,
            SpanKind::Job => SpanMask::JOB,
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// What lifecycle phase this was.
    pub kind: SpanKind,
    /// Free-form detail (experiment id, cell index, …).
    pub detail: String,
    /// The track (recorder) it was recorded on.
    pub track: u32,
    /// Nesting depth at open (0 = track root).
    pub depth: u32,
    /// Sequence-clock tick at open.
    pub seq_open: u64,
    /// Sequence-clock tick at close (`> seq_open`; every tick between
    /// the two belongs to a child span).
    pub seq_close: u64,
    /// Wall-clock open, microseconds since the collector's epoch.
    /// **Telemetry only** — never consulted by a render path.
    pub wall_start_us: u64,
    /// Wall-clock duration in microseconds. Telemetry only.
    pub wall_dur_us: u64,
}

/// Collects completed spans from any number of per-track recorders.
#[derive(Debug)]
pub struct SpanCollector {
    mask: SpanMask,
    epoch: Instant,
    tracks: Mutex<BTreeMap<u32, Vec<SpanRecord>>>,
}

impl SpanCollector {
    /// A new collector interested in `mask`.
    #[must_use]
    pub fn new(mask: SpanMask) -> SpanCollector {
        SpanCollector {
            mask,
            epoch: Instant::now(),
            tracks: Mutex::new(BTreeMap::new()),
        }
    }

    /// The interest mask.
    #[must_use]
    pub fn mask(&self) -> SpanMask {
        self.mask
    }

    /// A recorder for `track`. Tracks are caller-assigned (the campaign
    /// runner uses slot indices), so the same logical work always lands
    /// on the same track whatever thread runs it.
    #[must_use]
    pub fn recorder(self: &Arc<Self>, track: u32) -> Arc<SpanRecorder> {
        Arc::new(SpanRecorder {
            collector: Arc::clone(self),
            track,
            state: Mutex::new(RecorderState { seq: 0, depth: 0 }),
        })
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn commit(&self, record: SpanRecord) {
        let mut tracks = self.tracks.lock().unwrap_or_else(|p| p.into_inner());
        tracks.entry(record.track).or_default().push(record);
    }

    /// Drains every completed span, grouped by track (ascending) and
    /// ordered by `seq_open` within each track — the canonical order
    /// every deterministic consumer uses.
    #[must_use]
    pub fn take(&self) -> Vec<(u32, Vec<SpanRecord>)> {
        let mut tracks = self.tracks.lock().unwrap_or_else(|p| p.into_inner());
        let mut out: Vec<(u32, Vec<SpanRecord>)> = std::mem::take(&mut *tracks).into_iter().collect();
        for (_, records) in &mut out {
            records.sort_by_key(|r| r.seq_open);
        }
        out
    }
}

#[derive(Debug)]
struct RecorderState {
    seq: u64,
    depth: u32,
}

/// A per-track span recorder with its own sequence clock (starting at
/// 0, so a track's numbering is independent of every other track).
#[derive(Debug)]
pub struct SpanRecorder {
    collector: Arc<SpanCollector>,
    track: u32,
    state: Mutex<RecorderState>,
}

impl SpanRecorder {
    /// Opens a span; the returned guard closes it on drop. Disabled
    /// (free) when `kind` is masked off.
    #[must_use]
    pub fn enter(self: &Arc<Self>, kind: SpanKind, detail: &str) -> Span {
        self.enter_with(kind, || detail.to_string())
    }

    /// [`SpanRecorder::enter`] with lazily built detail: `detail()` is
    /// only called (and only allocates) when the span is recorded.
    #[must_use]
    pub fn enter_with(self: &Arc<Self>, kind: SpanKind, detail: impl FnOnce() -> String) -> Span {
        if !self.collector.mask.contains(kind) {
            return Span { inner: None };
        }
        let (seq_open, depth) = {
            let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
            let seq_open = state.seq;
            state.seq += 1;
            let depth = state.depth;
            state.depth += 1;
            (seq_open, depth)
        };
        Span {
            inner: Some(SpanInner {
                recorder: Arc::clone(self),
                kind,
                detail: detail(),
                seq_open,
                depth,
                wall_start_us: self.collector.now_us(),
            }),
        }
    }

    fn close(&self, inner: SpanInner) {
        let seq_close = {
            let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
            let seq_close = state.seq;
            state.seq += 1;
            state.depth = state.depth.saturating_sub(1);
            seq_close
        };
        let now = self.collector.now_us();
        self.collector.commit(SpanRecord {
            kind: inner.kind,
            detail: inner.detail,
            track: self.track,
            depth: inner.depth,
            seq_open: inner.seq_open,
            seq_close,
            wall_start_us: inner.wall_start_us,
            wall_dur_us: now.saturating_sub(inner.wall_start_us),
        });
    }
}

#[derive(Debug)]
struct SpanInner {
    recorder: Arc<SpanRecorder>,
    kind: SpanKind,
    detail: String,
    seq_open: u64,
    depth: u32,
    wall_start_us: u64,
}

/// An open span; dropping it records the completed [`SpanRecord`].
/// A disabled guard (masked kind, or no recorder installed) is inert.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// An inert guard.
    #[must_use]
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Whether this guard will record on drop.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let recorder = Arc::clone(&inner.recorder);
            recorder.close(inner);
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<SpanRecorder>>> = const { RefCell::new(None) };
}

/// Runs `f` with `recorder` installed as the thread's current recorder
/// (restored — including across panics — when `f` returns), so code
/// deep in the loader or harness can open spans via [`enter`] without
/// any API threading.
pub fn with_recorder<R>(recorder: Arc<SpanRecorder>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<SpanRecorder>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CURRENT.with(|c| c.borrow_mut().replace(recorder)));
    f()
}

/// Opens a span on the thread's current recorder; a no-op (disabled
/// guard, no allocation) when none is installed or `kind` is masked.
#[must_use]
pub fn enter(kind: SpanKind, detail: &str) -> Span {
    match CURRENT.with(|c| c.borrow().clone()) {
        Some(recorder) => recorder.enter(kind, detail),
        None => Span::disabled(),
    }
}

/// [`enter`] with lazily built detail.
#[must_use]
pub fn enter_with(kind: SpanKind, detail: impl FnOnce() -> String) -> Span {
    match CURRENT.with(|c| c.borrow().clone()) {
        Some(recorder) => recorder.enter_with(kind, detail),
        None => Span::disabled(),
    }
}

/// Deterministic text rendering of a span forest (the output of
/// [`SpanCollector::take`]): sequence clock and structure only, no
/// wall-clock anywhere.
#[must_use]
pub fn render_tree(tracks: &[(u32, Vec<SpanRecord>)]) -> String {
    let mut out = String::new();
    for (track, records) in tracks {
        let _ = writeln!(out, "track {track}:");
        for r in records {
            let indent = "  ".repeat(r.depth as usize + 1);
            let _ = writeln!(
                out,
                "{indent}{} {} [seq {}..{}]",
                r.kind.name(),
                r.detail,
                r.seq_open,
                r.seq_close,
            );
        }
    }
    out
}

/// An instant (zero-duration) marker on the exported timeline — the
/// bridge type [`TraceRing`](../../swsec_vm/trace) entries convert
/// into, but usable for any point event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeInstant {
    /// Event label.
    pub name: String,
    /// Timeline row (`tid`), matching a span track.
    pub track: u32,
    /// Microseconds since the collector epoch.
    pub ts_us: u64,
}

/// Exports spans (plus optional instants) as Chrome `trace_event` JSON
/// — an object with a `traceEvents` array of complete (`"ph":"X"`) and
/// instant (`"ph":"i"`) events — loadable in Perfetto or
/// `chrome://tracing`. All events share `pid` 1; `tid` is the track.
#[must_use]
pub fn chrome_trace(tracks: &[(u32, Vec<SpanRecord>)], instants: &[ChromeInstant]) -> String {
    let mut events = Vec::new();
    for (track, records) in tracks {
        for r in records {
            events.push(
                Obj::new()
                    .str("name", r.kind.name())
                    .str("cat", "span")
                    .str("ph", "X")
                    .u64("pid", 1)
                    .u64("tid", u64::from(*track))
                    .u64("ts", r.wall_start_us)
                    .u64("dur", r.wall_dur_us)
                    .push(
                        "args",
                        Json::Object(
                            [
                                ("detail".to_string(), Json::Str(r.detail.clone())),
                                ("seq".to_string(), Json::UInt(r.seq_open)),
                            ]
                            .into_iter()
                            .collect(),
                        ),
                    )
                    .render(),
            );
        }
    }
    for i in instants {
        events.push(
            Obj::new()
                .str("name", &i.name)
                .str("cat", "trace")
                .str("ph", "i")
                .str("s", "t")
                .u64("pid", 1)
                .u64("tid", u64::from(i.track))
                .u64("ts", i.ts_us)
                .render(),
        );
    }
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (n, event) in events.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(event);
    }
    out.push_str("],\"displayTimeUnit\":");
    escape_into(&mut out, "ms");
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_gates_kinds() {
        assert!(SpanMask::DEFAULT.contains(SpanKind::Cell));
        assert!(!SpanMask::DEFAULT.contains(SpanKind::Attempt));
        assert!(SpanMask::ALL.contains(SpanKind::Execute));
        assert!(!SpanMask::NONE.contains(SpanKind::Campaign));
    }

    #[test]
    fn spans_nest_with_sequence_clock() {
        let collector = Arc::new(SpanCollector::new(SpanMask::ALL));
        let rec = collector.recorder(3);
        {
            let _cell = rec.enter(SpanKind::Cell, "E2 cell 0");
            {
                let _boot = rec.enter(SpanKind::Boot, "victim");
            }
            {
                let _attempt = rec.enter(SpanKind::Attempt, "attempt 0");
            }
        }
        let tracks = collector.take();
        assert_eq!(tracks.len(), 1);
        let (track, records) = &tracks[0];
        assert_eq!(*track, 3);
        // Canonical order is by seq_open: cell(0..5), boot(1..2), attempt(3..4).
        let shape: Vec<_> = records
            .iter()
            .map(|r| (r.kind, r.depth, r.seq_open, r.seq_close))
            .collect();
        assert_eq!(
            shape,
            vec![
                (SpanKind::Cell, 0, 0, 5),
                (SpanKind::Boot, 1, 1, 2),
                (SpanKind::Attempt, 1, 3, 4),
            ]
        );
    }

    #[test]
    fn masked_kinds_record_nothing() {
        let collector = Arc::new(SpanCollector::new(SpanMask::CELL));
        let rec = collector.recorder(0);
        {
            let _cell = rec.enter(SpanKind::Cell, "c");
            let restore = rec.enter(SpanKind::Restore, "r");
            assert!(!restore.is_recording());
        }
        let tracks = collector.take();
        assert_eq!(tracks[0].1.len(), 1);
        assert_eq!(tracks[0].1[0].kind, SpanKind::Cell);
        // The masked span consumed no sequence ticks.
        assert_eq!((tracks[0].1[0].seq_open, tracks[0].1[0].seq_close), (0, 1));
    }

    #[test]
    fn thread_local_enter_is_inert_without_recorder() {
        let span = enter(SpanKind::Cell, "nobody listening");
        assert!(!span.is_recording());
    }

    #[test]
    fn with_recorder_installs_and_restores() {
        let collector = Arc::new(SpanCollector::new(SpanMask::ALL));
        let rec = collector.recorder(7);
        with_recorder(rec, || {
            let span = enter(SpanKind::Compile, "victim.c");
            assert!(span.is_recording());
        });
        assert!(!enter(SpanKind::Compile, "after").is_recording());
        assert_eq!(collector.take()[0].1.len(), 1);
    }

    #[test]
    fn render_tree_is_wall_clock_free_and_stable() {
        let collector = Arc::new(SpanCollector::new(SpanMask::ALL));
        let rec = collector.recorder(1);
        {
            let _cell = rec.enter(SpanKind::Cell, "E4 cell 2");
            let _boot = rec.enter(SpanKind::Boot, "victim");
        }
        let rendered = render_tree(&collector.take());
        assert_eq!(
            rendered,
            "track 1:\n  cell E4 cell 2 [seq 0..3]\n    boot victim [seq 1..2]\n"
        );
    }

    #[test]
    fn chrome_trace_is_valid_and_nested() {
        let collector = Arc::new(SpanCollector::new(SpanMask::ALL));
        let rec = collector.recorder(2);
        {
            let _cell = rec.enter(SpanKind::Cell, "c");
            let _boot = rec.enter(SpanKind::Boot, "b");
        }
        let instants = vec![ChromeInstant {
            name: "0x1000: halt".into(),
            track: 2,
            ts_us: 1,
        }];
        let json = chrome_trace(&collector.take(), &instants);
        let parsed = crate::json::parse(&json).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        for event in events {
            assert_eq!(event.get("pid").and_then(Json::as_u64), Some(1));
            assert_eq!(event.get("tid").and_then(Json::as_u64), Some(2));
            let ph = event.get("ph").and_then(Json::as_str).unwrap();
            assert!(ph == "X" || ph == "i");
            if ph == "X" {
                assert!(event.get("dur").and_then(Json::as_u64).is_some());
            }
        }
    }
}
