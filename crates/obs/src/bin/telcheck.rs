//! telcheck — validates a schema-v1 JSONL telemetry dump.
//!
//! ```sh
//! telcheck out.jsonl [--require KIND]... [--chrome trace.json]
//! ```
//!
//! Parses every line against the versioned schema and exits non-zero
//! on the first malformed line. Each `--require KIND` demands at least
//! one event of that kind (`canary_trip`, `pma_violation`, `fault`,
//! `control_transfer`, `syscall`, `guard_check`, `step`, `cell_failed`)
//! in the dump;
//! `--require metric` and `--require meta` demand record families
//! instead, `--require metric:NAME` demands a specific metric by
//! its dotted name (a trailing `*` matches a prefix, e.g.
//! `metric:vm.snapshot.*`), and `--require span:NAME` demands a span
//! record of that kind (`span:cell`, `span:boot`, …). A summary of
//! record counts per kind goes to stdout.
//!
//! `--chrome FILE` additionally validates an exported Chrome
//! `trace_event` JSON file structurally: it must parse, carry a
//! `traceEvents` array of phase `X`/`B`/`E`/`i`/`I`/`M` events with
//! `name`/`ph`/`pid`/`tid`/`ts` fields, balance `B`/`E` per `(pid,tid)`
//! lane, and nest `X` intervals properly within each lane.

use std::collections::BTreeMap;
use std::process::ExitCode;

use swsec_obs::json::{self, Json};
use swsec_obs::jsonl::parse_line;
use swsec_obs::Record;

/// Structural validation of a Chrome trace_event export; returns the
/// event count, or an error description.
fn check_chrome(text: &str) -> Result<usize, String> {
    let root = json::parse(text).map_err(|e| e.to_string())?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;
    // Per-(pid,tid) lane state: open X interval ends (a stack, since
    // intervals must nest) and B/E balance.
    let mut open_x: BTreeMap<(u64, u64), Vec<u64>> = BTreeMap::new();
    let mut be_depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    for (n, event) in events.iter().enumerate() {
        let field = |key: &str| {
            event
                .get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("event {n}: missing or non-integer {key:?}"))
        };
        event
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {n}: missing name"))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {n}: missing ph"))?;
        let lane = (field("pid")?, field("tid")?);
        let ts = field("ts")?;
        match ph {
            "X" => {
                let dur = field("dur")?;
                let end = ts + dur;
                let stack = open_x.entry(lane).or_default();
                // Chrome export orders a lane by ts; an X event either
                // starts after every open interval ends (pop them) or
                // must finish inside the innermost one (nesting).
                while stack.last().is_some_and(|open_end| *open_end <= ts) {
                    stack.pop();
                }
                if let Some(open_end) = stack.last() {
                    if end > *open_end {
                        return Err(format!(
                            "event {n}: X interval [{ts},{end}) straddles an open \
                             interval ending at {open_end} in lane {lane:?}"
                        ));
                    }
                }
                stack.push(end);
            }
            "B" => *be_depth.entry(lane).or_insert(0) += 1,
            "E" => {
                let depth = be_depth.entry(lane).or_insert(0);
                *depth -= 1;
                if *depth < 0 {
                    return Err(format!("event {n}: E without matching B in lane {lane:?}"));
                }
            }
            "i" | "I" | "M" => {}
            other => return Err(format!("event {n}: unsupported phase {other:?}")),
        }
    }
    if let Some((lane, depth)) = be_depth.iter().find(|(_, depth)| **depth != 0) {
        return Err(format!("lane {lane:?}: {depth} unclosed B event(s)"));
    }
    Ok(events.len())
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut chrome: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--require" => required.push(argv.next().expect("--require needs an event kind")),
            "--chrome" => chrome = Some(argv.next().expect("--chrome needs a file")),
            "--help" | "-h" => {
                println!(
                    "usage: telcheck FILE.jsonl [--require KIND]... [--chrome trace.json]"
                );
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("telcheck: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("telcheck: missing input file");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("telcheck: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut metric_names: BTreeMap<String, u64> = BTreeMap::new();
    let mut span_names: BTreeMap<String, u64> = BTreeMap::new();
    let mut lines = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let key = match parse_line(line) {
            Ok(Record::Event(ev)) => ev.kind_name().to_string(),
            Ok(Record::Metric { name, .. }) => {
                *metric_names.entry(name).or_insert(0) += 1;
                "metric".to_string()
            }
            Ok(Record::Meta { .. }) => "meta".to_string(),
            Ok(Record::Span { name, .. }) => {
                *span_names.entry(name).or_insert(0) += 1;
                "span".to_string()
            }
            Err(e) => {
                eprintln!("telcheck: {path}:{}: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        };
        *counts.entry(key).or_insert(0) += 1;
    }

    println!("telcheck: {path}: {lines} valid lines");
    for (kind, n) in &counts {
        println!("  {kind}: {n}");
    }

    let mut ok = true;
    for kind in &required {
        let named = |names: &BTreeMap<String, u64>, name: &str| match name.strip_suffix('*') {
            Some(prefix) => names.keys().any(|n| n.starts_with(prefix)),
            None => names.contains_key(name),
        };
        let present = if let Some(name) = kind.strip_prefix("metric:") {
            named(&metric_names, name)
        } else if let Some(name) = kind.strip_prefix("span:") {
            named(&span_names, name)
        } else {
            counts.get(kind).copied().unwrap_or(0) != 0
        };
        if !present {
            eprintln!("telcheck: required kind {kind:?} absent from {path}");
            ok = false;
        }
    }

    if let Some(chrome_path) = &chrome {
        match std::fs::read_to_string(chrome_path) {
            Ok(trace) => match check_chrome(&trace) {
                Ok(n) => println!("telcheck: {chrome_path}: valid chrome trace, {n} events"),
                Err(e) => {
                    eprintln!("telcheck: {chrome_path}: {e}");
                    ok = false;
                }
            },
            Err(e) => {
                eprintln!("telcheck: cannot read {chrome_path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
