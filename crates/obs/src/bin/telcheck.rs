//! telcheck — validates a schema-v1 JSONL telemetry dump.
//!
//! ```sh
//! telcheck out.jsonl [--require KIND]...
//! ```
//!
//! Parses every line against the versioned schema and exits non-zero
//! on the first malformed line. Each `--require KIND` demands at least
//! one event of that kind (`canary_trip`, `pma_violation`, `fault`,
//! `control_transfer`, `syscall`, `guard_check`, `step`, `cell_failed`)
//! in the dump;
//! `--require metric` and `--require meta` demand record families
//! instead, and `--require metric:NAME` demands a specific metric by
//! its dotted name (a trailing `*` matches a prefix, e.g.
//! `metric:vm.snapshot.*`). A summary of record counts per kind goes
//! to stdout.

use std::collections::BTreeMap;
use std::process::ExitCode;

use swsec_obs::jsonl::parse_line;
use swsec_obs::Record;

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--require" => required.push(argv.next().expect("--require needs an event kind")),
            "--help" | "-h" => {
                println!("usage: telcheck FILE.jsonl [--require KIND]...");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("telcheck: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("telcheck: missing input file");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("telcheck: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut metric_names: BTreeMap<String, u64> = BTreeMap::new();
    let mut lines = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let key = match parse_line(line) {
            Ok(Record::Event(ev)) => ev.kind_name().to_string(),
            Ok(Record::Metric { name, .. }) => {
                *metric_names.entry(name).or_insert(0) += 1;
                "metric".to_string()
            }
            Ok(Record::Meta { .. }) => "meta".to_string(),
            Err(e) => {
                eprintln!("telcheck: {path}:{}: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        };
        *counts.entry(key).or_insert(0) += 1;
    }

    println!("telcheck: {path}: {lines} valid lines");
    for (kind, n) in &counts {
        println!("  {kind}: {n}");
    }

    let mut ok = true;
    for kind in &required {
        let present = match kind.strip_prefix("metric:") {
            Some(name) => match name.strip_suffix('*') {
                Some(prefix) => metric_names.keys().any(|n| n.starts_with(prefix)),
                None => metric_names.contains_key(name),
            },
            None => counts.get(kind).copied().unwrap_or(0) != 0,
        };
        if !present {
            eprintln!("telcheck: required kind {kind:?} absent from {path}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
