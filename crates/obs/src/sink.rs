//! Pluggable event sinks and the process-wide default sink.
//!
//! A sink is any `Send + Sync` object implementing [`EventSink`]; the
//! emitter (the VM) holds an `Arc<dyn EventSink>` and calls
//! [`EventSink::record`] through a shared reference, so sinks use
//! interior mutability and the caller can keep a clone to inspect after
//! the run. A sink declares which event kinds it wants via
//! [`EventSink::interests`]; the emitter caches that mask at attach
//! time and never constructs an unwanted event.
//!
//! Machines are frequently created deep inside experiment code that has
//! no telemetry parameters. For those, a process-wide *default* sink
//! can be installed with [`set_default_sink`]; every machine created
//! afterwards attaches it automatically (mirroring the VM's
//! `set_default_fast_path` switch).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::event::{EventMask, SecurityEvent};

/// A consumer of [`SecurityEvent`]s.
///
/// Implementations must be cheap and non-blocking in [`record`]
/// (`EventSink::record`): the VM calls it synchronously from the
/// interpreter loop.
pub trait EventSink: Send + Sync {
    /// Receives one event. Called only for kinds covered by
    /// [`interests`](EventSink::interests).
    fn record(&self, event: &SecurityEvent);

    /// Which event kinds this sink wants. Queried once when the sink is
    /// attached; defaults to everything except per-instruction steps.
    fn interests(&self) -> EventMask {
        EventMask::DEFAULT
    }
}

/// A sink that fans events out to several others.
///
/// Its interest mask is the union of the children's, and each child
/// still only sees the kinds it asked for.
pub struct FanoutSink {
    children: Vec<(Arc<dyn EventSink>, EventMask)>,
    interests: EventMask,
}

impl FanoutSink {
    /// Builds a fanout over `children`. Interest masks are captured
    /// here, once.
    pub fn new(children: Vec<Arc<dyn EventSink>>) -> FanoutSink {
        let children: Vec<_> = children
            .into_iter()
            .map(|c| {
                let mask = c.interests();
                (c, mask)
            })
            .collect();
        let interests = children
            .iter()
            .fold(EventMask::NONE, |acc, (_, m)| acc.union(*m));
        FanoutSink {
            children,
            interests,
        }
    }
}

impl EventSink for FanoutSink {
    fn record(&self, event: &SecurityEvent) {
        let bit = event.mask_bit();
        for (child, mask) in &self.children {
            if mask.contains(bit) {
                child.record(event);
            }
        }
    }

    fn interests(&self) -> EventMask {
        self.interests
    }
}

/// A bounded ring buffer of the most recent events.
///
/// When full, the oldest event is overwritten; [`drain`]
/// (`RingBufferSink::drain`) returns the survivors oldest-first along
/// with the number overwritten, so consumers can tell a complete stream
/// from a truncated one.
pub struct RingBufferSink {
    inner: Mutex<RingInner>,
    capacity: usize,
    interests: EventMask,
}

struct RingInner {
    buf: Vec<SecurityEvent>,
    /// Next write position once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (min 1), interested in
    /// the default mask.
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink::with_interests(capacity, EventMask::DEFAULT)
    }

    /// A ring with an explicit interest mask (e.g. including
    /// [`EventMask::STEP`]).
    pub fn with_interests(capacity: usize, interests: EventMask) -> RingBufferSink {
        RingBufferSink {
            inner: Mutex::new(RingInner {
                buf: Vec::new(),
                head: 0,
                dropped: 0,
            }),
            capacity: capacity.max(1),
            interests,
        }
    }

    /// Removes and returns all buffered events oldest-first, plus how
    /// many older events were overwritten to make room.
    pub fn drain(&self) -> (Vec<SecurityEvent>, u64) {
        let mut inner = self.inner.lock().expect("ring sink poisoned");
        let head = inner.head;
        let dropped = inner.dropped;
        let mut buf = std::mem::take(&mut inner.buf);
        inner.head = 0;
        inner.dropped = 0;
        drop(inner);
        if dropped > 0 {
            // Buffer wrapped: oldest surviving event sits at `head`.
            buf.rotate_left(head);
        }
        (buf, dropped)
    }

    /// How many events are currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring sink poisoned").buf.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for RingBufferSink {
    fn record(&self, event: &SecurityEvent) {
        let mut inner = self.inner.lock().expect("ring sink poisoned");
        if inner.buf.len() < self.capacity {
            inner.buf.push(*event);
        } else {
            let head = inner.head;
            inner.buf[head] = *event;
            inner.head = (head + 1) % self.capacity;
            inner.dropped += 1;
        }
    }

    fn interests(&self) -> EventMask {
        self.interests
    }
}

/// Lock-free per-kind event counters.
///
/// The cheapest possible sink: one relaxed atomic increment per event.
/// Used both for assertions in tests and as the sink the overhead guard
/// attaches when measuring emission cost.
#[derive(Default)]
pub struct CountingSink {
    control: AtomicU64,
    fault: AtomicU64,
    canary: AtomicU64,
    pma: AtomicU64,
    syscall: AtomicU64,
    guard: AtomicU64,
    step: AtomicU64,
    cell_failed: AtomicU64,
    job_shed: AtomicU64,
}

/// A point-in-time copy of a [`CountingSink`]'s totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Control transfers seen.
    pub control: u64,
    /// Faults seen.
    pub fault: u64,
    /// Canary trips seen.
    pub canary: u64,
    /// PMA violations seen.
    pub pma: u64,
    /// Syscalls seen.
    pub syscall: u64,
    /// Guard checks seen.
    pub guard: u64,
    /// Steps seen (zero unless attached with a step-interested mask).
    pub step: u64,
    /// Campaign cell failures seen.
    pub cell_failed: u64,
    /// Service jobs shed or rejected seen.
    pub job_shed: u64,
}

impl EventCounts {
    /// Sum over every kind.
    pub fn total(&self) -> u64 {
        self.control
            + self.fault
            + self.canary
            + self.pma
            + self.syscall
            + self.guard
            + self.step
            + self.cell_failed
            + self.job_shed
    }
}

impl CountingSink {
    /// A zeroed counter sink with default interests.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Reads the current totals.
    pub fn counts(&self) -> EventCounts {
        EventCounts {
            control: self.control.load(Ordering::Relaxed),
            fault: self.fault.load(Ordering::Relaxed),
            canary: self.canary.load(Ordering::Relaxed),
            pma: self.pma.load(Ordering::Relaxed),
            syscall: self.syscall.load(Ordering::Relaxed),
            guard: self.guard.load(Ordering::Relaxed),
            step: self.step.load(Ordering::Relaxed),
            cell_failed: self.cell_failed.load(Ordering::Relaxed),
            job_shed: self.job_shed.load(Ordering::Relaxed),
        }
    }
}

impl EventSink for CountingSink {
    fn record(&self, event: &SecurityEvent) {
        let cell = match event {
            SecurityEvent::ControlTransfer { .. } => &self.control,
            SecurityEvent::Fault { .. } => &self.fault,
            SecurityEvent::CanaryTrip { .. } => &self.canary,
            SecurityEvent::PmaViolation { .. } => &self.pma,
            SecurityEvent::Syscall { .. } => &self.syscall,
            SecurityEvent::GuardCheck { .. } => &self.guard,
            SecurityEvent::Step { .. } => &self.step,
            SecurityEvent::CellFailed { .. } => &self.cell_failed,
            SecurityEvent::JobShed { .. } => &self.job_shed,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }
}

/// An address → instruction-count profile.
///
/// Opts into [`EventMask::STEP`], so every retired instruction lands
/// here; after a run, [`top`](HotAddressSink::top) answers *where did
/// execution actually go* — e.g. did the hijacked return really reach
/// the injected shellcode page, and how long did it spin there.
pub struct HotAddressSink {
    counts: Mutex<HashMap<u32, u64>>,
}

impl Default for HotAddressSink {
    fn default() -> Self {
        HotAddressSink::new()
    }
}

impl HotAddressSink {
    /// An empty profile.
    pub fn new() -> HotAddressSink {
        HotAddressSink {
            counts: Mutex::new(HashMap::new()),
        }
    }

    /// The `n` hottest addresses, by descending count then ascending
    /// address (deterministic for equal counts).
    pub fn top(&self, n: usize) -> Vec<(u32, u64)> {
        let counts = self.counts.lock().expect("hot-address sink poisoned");
        let mut entries: Vec<(u32, u64)> = counts.iter().map(|(a, c)| (*a, *c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(n);
        entries
    }

    /// Total instructions profiled.
    pub fn total(&self) -> u64 {
        self.counts
            .lock()
            .expect("hot-address sink poisoned")
            .values()
            .sum()
    }

    /// Renders the top-`n` table, one `addr  count  share` row per
    /// line. Deterministic for a deterministic run.
    pub fn render_top(&self, n: usize) -> String {
        let total = self.total().max(1);
        let mut out = String::from("hot addresses (top by instruction count):\n");
        for (addr, count) in self.top(n) {
            let share = count as f64 * 100.0 / total as f64;
            out.push_str(&format!("  {addr:#010x}  {count:>10}  {share:5.1}%\n"));
        }
        out
    }
}

impl EventSink for HotAddressSink {
    fn record(&self, event: &SecurityEvent) {
        if let SecurityEvent::Step { ip } = event {
            *self
                .counts
                .lock()
                .expect("hot-address sink poisoned")
                .entry(*ip)
                .or_insert(0) += 1;
        }
    }

    fn interests(&self) -> EventMask {
        EventMask::STEP
    }
}

fn default_sink_slot() -> &'static RwLock<Option<Arc<dyn EventSink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn EventSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs `sink` as the process-wide default event sink. Machines
/// created *after* this call attach it automatically; machines already
/// running are unaffected. Returns the previously installed sink.
pub fn set_default_sink(sink: Arc<dyn EventSink>) -> Option<Arc<dyn EventSink>> {
    default_sink_slot()
        .write()
        .expect("default sink lock poisoned")
        .replace(sink)
}

/// Removes the process-wide default sink, returning it if one was set.
pub fn clear_default_sink() -> Option<Arc<dyn EventSink>> {
    default_sink_slot()
        .write()
        .expect("default sink lock poisoned")
        .take()
}

/// The current process-wide default sink, if any.
pub fn default_sink() -> Option<Arc<dyn EventSink>> {
    default_sink_slot()
        .read()
        .expect("default sink lock poisoned")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ControlKind, PmaRule};

    fn control(from: u32) -> SecurityEvent {
        SecurityEvent::ControlTransfer {
            kind: ControlKind::Call,
            from,
            to: from + 4,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let ring = RingBufferSink::new(3);
        for i in 0..5u32 {
            ring.record(&control(i));
        }
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 2);
        let froms: Vec<u32> = events
            .iter()
            .map(|e| match e {
                SecurityEvent::ControlTransfer { from, .. } => *from,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(froms, vec![2, 3, 4]);
        // Drain resets the ring completely.
        assert!(ring.is_empty());
        ring.record(&control(9));
        let (events, dropped) = ring.drain();
        assert_eq!((events.len(), dropped), (1, 0));
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let sink = CountingSink::new();
        sink.record(&control(0));
        sink.record(&control(4));
        sink.record(&SecurityEvent::CanaryTrip { ip: 8 });
        sink.record(&SecurityEvent::PmaViolation {
            rule: PmaRule::BadEntry,
            from: 0,
            to: 4,
        });
        let c = sink.counts();
        assert_eq!((c.control, c.canary, c.pma, c.total()), (2, 1, 1, 4));
    }

    #[test]
    fn hot_address_profile_ranks_deterministically() {
        let sink = HotAddressSink::new();
        assert!(sink.interests().contains(EventMask::STEP));
        for _ in 0..3 {
            sink.record(&SecurityEvent::Step { ip: 0x2000 });
        }
        sink.record(&SecurityEvent::Step { ip: 0x1000 });
        sink.record(&SecurityEvent::Step { ip: 0x3000 });
        // Non-step events are ignored even if delivered.
        sink.record(&control(0));
        assert_eq!(sink.total(), 5);
        let top = sink.top(2);
        assert_eq!(top[0], (0x2000, 3));
        // Equal counts tie-break by address.
        assert_eq!(top[1], (0x1000, 1));
        let rendered = sink.render_top(3);
        assert!(rendered.contains("0x00002000"));
        assert!(rendered.contains("60.0%"));
    }

    #[test]
    fn fanout_respects_child_interests() {
        let counter = Arc::new(CountingSink::new());
        let hot = Arc::new(HotAddressSink::new());
        let fan = FanoutSink::new(vec![counter.clone(), hot.clone()]);
        // Union of DEFAULT and STEP is ALL.
        assert_eq!(fan.interests(), EventMask::ALL);
        fan.record(&SecurityEvent::Step { ip: 4 });
        fan.record(&control(0));
        // The counter did not see the step; the profile did not see the
        // control transfer.
        assert_eq!(counter.counts().step, 0);
        assert_eq!(counter.counts().control, 1);
        assert_eq!(hot.total(), 1);
    }
}
