//! The versioned JSONL telemetry schema (v1) and the export sink.
//!
//! Every line of a telemetry dump is one self-contained JSON object
//! with two fixed discriminators:
//!
//! ```json
//! {"v":1,"type":"event","kind":"pma_violation","rule":1,"from":4096,"to":8196}
//! {"v":1,"type":"event","kind":"canary_trip","ip":4242}
//! {"v":1,"type":"metric","name":"campaign.cells","value":96}
//! {"v":1,"type":"meta","name":"source","text":"examples/campaign"}
//! ```
//!
//! `v` is the schema version (currently [`SCHEMA_VERSION`]); `type`
//! selects the record family. Event lines carry the stable kind names
//! from [`crate::event`]; metric lines carry a dotted metric name and
//! an integer value. The schema is round-trippable: [`parse_line`]
//! turns any line this module emits back into the typed [`Record`] it
//! came from, and unknown versions or types are explicit errors rather
//! than silent skips.

use std::fmt;
use std::io::Write;
use std::sync::Mutex;

use crate::event::{ControlKind, EventMask, FaultKind, PmaRule, SecurityEvent};
use crate::json::{self, Json, Obj};
use crate::sink::EventSink;
use crate::span::SpanRecord;

/// Version stamped into (and required of) every telemetry line.
pub const SCHEMA_VERSION: u64 = 1;

/// One parsed telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A security event.
    Event(SecurityEvent),
    /// A named integer metric sample.
    Metric {
        /// Dotted metric name, e.g. `"vm.instructions"`.
        name: String,
        /// The sampled value.
        value: u64,
    },
    /// Free-form run metadata (source, configuration notes).
    Meta {
        /// Metadata key.
        name: String,
        /// Metadata value.
        text: String,
    },
    /// One completed span (see [`crate::span`]). `seq`/`end` carry the
    /// deterministic sequence clock; `ts_us`/`dur_us` are wall-clock
    /// telemetry and never feed a render path.
    Span {
        /// Span kind name (`"campaign"`, `"cell"`, …).
        name: String,
        /// Free-form detail.
        detail: String,
        /// Recorder track.
        track: u32,
        /// Nesting depth at open.
        depth: u32,
        /// Sequence tick at open.
        seq: u64,
        /// Sequence tick at close.
        end: u64,
        /// Wall-clock open, µs since the collector epoch.
        ts_us: u64,
        /// Wall-clock duration, µs.
        dur_us: u64,
    },
}

/// Renders an event as one schema-v1 line (no trailing newline).
pub fn event_line(event: &SecurityEvent) -> String {
    let obj = Obj::new()
        .u64("v", SCHEMA_VERSION)
        .str("type", "event")
        .str("kind", event.kind_name());
    let obj = match *event {
        SecurityEvent::ControlTransfer { kind, from, to } => obj
            .str("ctl", kind.name())
            .u64("from", u64::from(from))
            .u64("to", u64::from(to)),
        SecurityEvent::Fault { kind, ip, addr } => obj
            .str("fault", kind.name())
            .u64("ip", u64::from(ip))
            .u64("addr", u64::from(addr)),
        SecurityEvent::CanaryTrip { ip } => obj.u64("ip", u64::from(ip)),
        SecurityEvent::PmaViolation { rule, from, to } => obj
            .u64("rule", u64::from(rule.number()))
            .u64("from", u64::from(from))
            .u64("to", u64::from(to)),
        SecurityEvent::Syscall { number, ip } => {
            obj.u64("number", u64::from(number)).u64("ip", u64::from(ip))
        }
        SecurityEvent::GuardCheck { code, ip } => {
            obj.u64("code", u64::from(code)).u64("ip", u64::from(ip))
        }
        SecurityEvent::Step { ip } => obj.u64("ip", u64::from(ip)),
        SecurityEvent::CellFailed { experiment, cell } => obj
            .u64("experiment", u64::from(experiment))
            .u64("cell", u64::from(cell)),
        SecurityEvent::JobShed { tenant, job } => obj
            .u64("tenant", u64::from(tenant))
            .u64("job", u64::from(job)),
    };
    obj.render()
}

/// Renders a metric sample as one schema-v1 line.
pub fn metric_line(name: &str, value: u64) -> String {
    Obj::new()
        .u64("v", SCHEMA_VERSION)
        .str("type", "metric")
        .str("name", name)
        .u64("value", value)
        .render()
}

/// Renders a metadata record as one schema-v1 line.
pub fn meta_line(name: &str, text: &str) -> String {
    Obj::new()
        .u64("v", SCHEMA_VERSION)
        .str("type", "meta")
        .str("name", name)
        .str("text", text)
        .render()
}

/// Renders a completed span as one schema-v1 line.
pub fn span_line(span: &SpanRecord) -> String {
    Obj::new()
        .u64("v", SCHEMA_VERSION)
        .str("type", "span")
        .str("name", span.kind.name())
        .str("detail", &span.detail)
        .u64("track", u64::from(span.track))
        .u64("depth", u64::from(span.depth))
        .u64("seq", span.seq_open)
        .u64("end", span.seq_close)
        .u64("ts_us", span.wall_start_us)
        .u64("dur_us", span.wall_dur_us)
        .render()
}

/// Why a telemetry line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum LineError {
    /// The line is not valid JSON.
    Json(json::ParseError),
    /// The line is JSON but not a valid schema record; the string says
    /// what is wrong (missing field, unknown kind, bad version…).
    Schema(String),
}

impl fmt::Display for LineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineError::Json(e) => write!(f, "{e}"),
            LineError::Schema(msg) => write!(f, "schema error: {msg}"),
        }
    }
}

impl std::error::Error for LineError {}

fn field_u64(v: &Json, key: &str) -> Result<u64, LineError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| LineError::Schema(format!("missing or non-integer field {key:?}")))
}

fn field_u32(v: &Json, key: &str) -> Result<u32, LineError> {
    u32::try_from(field_u64(v, key)?)
        .map_err(|_| LineError::Schema(format!("field {key:?} exceeds u32")))
}

fn field_u8(v: &Json, key: &str) -> Result<u8, LineError> {
    u8::try_from(field_u64(v, key)?)
        .map_err(|_| LineError::Schema(format!("field {key:?} exceeds u8")))
}

fn field_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, LineError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| LineError::Schema(format!("missing or non-string field {key:?}")))
}

/// Parses one telemetry line back into its typed [`Record`].
///
/// # Errors
///
/// Returns [`LineError`] if the line is not JSON, carries an unknown
/// schema version, or does not match the v1 record shapes.
pub fn parse_line(line: &str) -> Result<Record, LineError> {
    let v = json::parse(line).map_err(LineError::Json)?;
    let version = field_u64(&v, "v")?;
    if version != SCHEMA_VERSION {
        return Err(LineError::Schema(format!(
            "unsupported schema version {version} (expected {SCHEMA_VERSION})"
        )));
    }
    match field_str(&v, "type")? {
        "event" => parse_event(&v).map(Record::Event),
        "metric" => Ok(Record::Metric {
            name: field_str(&v, "name")?.to_string(),
            value: field_u64(&v, "value")?,
        }),
        "meta" => Ok(Record::Meta {
            name: field_str(&v, "name")?.to_string(),
            text: field_str(&v, "text")?.to_string(),
        }),
        "span" => Ok(Record::Span {
            name: field_str(&v, "name")?.to_string(),
            detail: field_str(&v, "detail")?.to_string(),
            track: field_u32(&v, "track")?,
            depth: field_u32(&v, "depth")?,
            seq: field_u64(&v, "seq")?,
            end: field_u64(&v, "end")?,
            ts_us: field_u64(&v, "ts_us")?,
            dur_us: field_u64(&v, "dur_us")?,
        }),
        other => Err(LineError::Schema(format!("unknown record type {other:?}"))),
    }
}

fn parse_event(v: &Json) -> Result<SecurityEvent, LineError> {
    match field_str(v, "kind")? {
        "control_transfer" => {
            let ctl = field_str(v, "ctl")?;
            let kind = ControlKind::from_name(ctl)
                .ok_or_else(|| LineError::Schema(format!("unknown control kind {ctl:?}")))?;
            Ok(SecurityEvent::ControlTransfer {
                kind,
                from: field_u32(v, "from")?,
                to: field_u32(v, "to")?,
            })
        }
        "fault" => {
            let name = field_str(v, "fault")?;
            let kind = FaultKind::from_name(name)
                .ok_or_else(|| LineError::Schema(format!("unknown fault kind {name:?}")))?;
            Ok(SecurityEvent::Fault {
                kind,
                ip: field_u32(v, "ip")?,
                addr: field_u32(v, "addr")?,
            })
        }
        "canary_trip" => Ok(SecurityEvent::CanaryTrip {
            ip: field_u32(v, "ip")?,
        }),
        "pma_violation" => {
            let n = field_u8(v, "rule")?;
            let rule = PmaRule::from_number(n)
                .ok_or_else(|| LineError::Schema(format!("unknown PMA rule {n}")))?;
            Ok(SecurityEvent::PmaViolation {
                rule,
                from: field_u32(v, "from")?,
                to: field_u32(v, "to")?,
            })
        }
        "syscall" => Ok(SecurityEvent::Syscall {
            number: field_u8(v, "number")?,
            ip: field_u32(v, "ip")?,
        }),
        "guard_check" => Ok(SecurityEvent::GuardCheck {
            code: field_u8(v, "code")?,
            ip: field_u32(v, "ip")?,
        }),
        "step" => Ok(SecurityEvent::Step {
            ip: field_u32(v, "ip")?,
        }),
        "cell_failed" => Ok(SecurityEvent::CellFailed {
            experiment: field_u8(v, "experiment")?,
            cell: field_u32(v, "cell")?,
        }),
        "job_shed" => Ok(SecurityEvent::JobShed {
            tenant: field_u32(v, "tenant")?,
            job: field_u32(v, "job")?,
        }),
        other => Err(LineError::Schema(format!("unknown event kind {other:?}"))),
    }
}

/// A sink that streams every received event as one JSONL line to a
/// writer (file, pipe, `Vec<u8>`…).
///
/// Lines are written under a mutex, so concurrent machines interleave
/// whole lines, never partial ones. Call [`JsonlSink::flush`] (or drop
/// the sink) before reading the output.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
    interests: EventMask,
}

impl JsonlSink {
    /// Wraps `writer`, subscribing to the default event kinds.
    pub fn new(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink::with_interests(writer, EventMask::DEFAULT)
    }

    /// Wraps `writer` with an explicit interest mask. Subscribing to
    /// [`EventMask::STEP`] dumps one line per retired instruction —
    /// enormous; reserve it for short runs.
    pub fn with_interests(writer: Box<dyn Write + Send>, interests: EventMask) -> JsonlSink {
        JsonlSink {
            writer: Mutex::new(writer),
            interests,
        }
    }

    /// Writes an already-rendered schema line (metric, meta, or a
    /// pre-built event line) followed by a newline.
    ///
    /// Poison-tolerant: if a previous writer panicked while holding the
    /// lock, the sink keeps accepting lines instead of cascading the
    /// panic into every machine that emits afterwards (the writer's own
    /// internal state stays whatever the panicking write left behind —
    /// at worst a torn line, never a dead process).
    pub fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Telemetry is best-effort: a full disk should not abort the
        // experiment the telemetry is describing.
        let _ = writeln!(w, "{line}");
    }

    /// Flushes the underlying writer. Poison-tolerant like
    /// [`write_line`](JsonlSink::write_line).
    pub fn flush(&self) {
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &SecurityEvent) {
        self.write_line(&event_line(event));
    }

    fn interests(&self) -> EventMask {
        self.interests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn all_events() -> Vec<SecurityEvent> {
        vec![
            SecurityEvent::ControlTransfer {
                kind: ControlKind::Ret,
                from: 0x1040,
                to: 0x2000,
            },
            SecurityEvent::Fault {
                kind: FaultKind::Dep,
                ip: 0x2000,
                addr: 0x2000,
            },
            SecurityEvent::CanaryTrip { ip: 0x1084 },
            SecurityEvent::PmaViolation {
                rule: PmaRule::OutsideDataAccess,
                from: 0x1000,
                to: 0x8004,
            },
            SecurityEvent::Syscall { number: 2, ip: 0x10f0 },
            SecurityEvent::GuardCheck { code: 3, ip: 0x1100 },
            SecurityEvent::Step { ip: 0x1004 },
            SecurityEvent::CellFailed {
                experiment: 16,
                cell: 7,
            },
            SecurityEvent::JobShed { tenant: 1, job: 42 },
        ]
    }

    #[test]
    fn every_event_kind_roundtrips() {
        for ev in all_events() {
            let line = event_line(&ev);
            assert_eq!(
                parse_line(&line),
                Ok(Record::Event(ev)),
                "round-trip failed for {line}"
            );
        }
    }

    #[test]
    fn metric_and_meta_lines_roundtrip() {
        let m = metric_line("vm.instructions", 123456);
        assert_eq!(
            parse_line(&m),
            Ok(Record::Metric {
                name: "vm.instructions".to_string(),
                value: 123456
            })
        );
        let meta = meta_line("source", "vmbench \"quoted\"");
        assert_eq!(
            parse_line(&meta),
            Ok(Record::Meta {
                name: "source".to_string(),
                text: "vmbench \"quoted\"".to_string()
            })
        );
    }

    #[test]
    fn span_lines_roundtrip() {
        let span = SpanRecord {
            kind: crate::span::SpanKind::Cell,
            detail: "E4 cell 3".to_string(),
            track: 4,
            depth: 1,
            seq_open: 2,
            seq_close: 9,
            wall_start_us: 1234,
            wall_dur_us: 56,
        };
        let line = span_line(&span);
        assert_eq!(
            parse_line(&line),
            Ok(Record::Span {
                name: "cell".to_string(),
                detail: "E4 cell 3".to_string(),
                track: 4,
                depth: 1,
                seq: 2,
                end: 9,
                ts_us: 1234,
                dur_us: 56,
            })
        );
    }

    #[test]
    fn bad_lines_are_explicit_errors() {
        assert!(matches!(parse_line("not json"), Err(LineError::Json(_))));
        assert!(matches!(
            parse_line(r#"{"v":9,"type":"event","kind":"step","ip":0}"#),
            Err(LineError::Schema(_))
        ));
        assert!(matches!(
            parse_line(r#"{"v":1,"type":"event","kind":"wat"}"#),
            Err(LineError::Schema(_))
        ));
        assert!(matches!(
            parse_line(r#"{"v":1,"type":"event","kind":"canary_trip"}"#),
            Err(LineError::Schema(_))
        ));
        assert!(matches!(
            parse_line(r#"{"v":1,"type":"event","kind":"canary_trip","ip":4294967296}"#),
            Err(LineError::Schema(_))
        ));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = JsonlSink::new(Box::new(Shared(buf.clone())));
        for ev in all_events() {
            sink.record(&ev);
        }
        sink.write_line(&metric_line("x.y", 7));
        sink.flush();
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), all_events().len() + 1);
        for line in lines {
            parse_line(line).unwrap();
        }
    }

    #[test]
    fn poisoned_writer_does_not_cascade() {
        // A writer that panics on its first write (simulating a bug in
        // one emitting thread), then behaves. The panic poisons the
        // writer mutex; every later emit — typically from *other*
        // threads — must keep working rather than panicking process-wide.
        struct ExplodesOnce {
            armed: bool,
            out: Arc<Mutex<Vec<u8>>>,
        }
        impl Write for ExplodesOnce {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                if self.armed {
                    self.armed = false;
                    panic!("injected writer panic");
                }
                self.out.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::new(JsonlSink::new(Box::new(ExplodesOnce {
            armed: true,
            out: out.clone(),
        })));

        // First write panics inside the lock, poisoning it.
        let trip = {
            let sink = sink.clone();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                sink.write_line(r#"{"v":1,"type":"meta","name":"a","text":"b"}"#);
            }))
        };
        assert!(trip.is_err(), "the injected panic must fire");

        // Subsequent writes and flushes recover from the poison.
        let line = metric_line("campaign.cells_failed", 1);
        sink.write_line(&line);
        sink.flush();
        let written = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        assert!(
            written.contains("campaign.cells_failed"),
            "post-poison line was lost: {written:?}"
        );
    }
}
