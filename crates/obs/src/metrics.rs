//! A process-wide metrics registry: named counters and fixed-bucket
//! histograms.
//!
//! The registry is deliberately boring: integer counters and
//! power-of-two-bucket histograms behind one mutex, with a
//! deterministic text render — names sort lexicographically and no
//! wall-clock is consulted anywhere on the render path, so two runs
//! that did the same work render the same report. Components record
//! into it opportunistically ([`MetricsRegistry::counter`] is a single
//! lock + add); campaign and benchmark frontends snapshot or export it
//! at the end of a run.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

use crate::jsonl;

/// Number of buckets in a [`Histogram`]: bucket `i` counts values in
/// `[2^(i-1), 2^i)` (bucket 0 counts zero), with the last bucket
/// absorbing everything larger.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket histogram of non-negative integer samples
/// (latencies in nanoseconds, sizes in bytes…).
///
/// Buckets are powers of two, so the layout never depends on the data
/// and merging two histograms is element-wise addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            let idx = 64 - value.leading_zeros() as usize;
            idx.min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (0.0..=1.0): the upper edge
    /// of the bucket containing that rank. Coarse by design — the
    /// answer depends only on bucket counts, never on sample order.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Element-wise merge of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (if i == 0 { 0 } else { 1u64 << i }, *n))
            .collect()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of counters and histograms.
///
/// Construct locally for an isolated scope, or use the process-wide
/// [`global`] registry. Dotted names (`"vm.instructions"`,
/// `"campaign.cell_nanos"`) keep the render grouped.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero first.
    pub fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records `value` into histogram `name`, creating it first.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// A copy of histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .histograms
            .get(name)
            .cloned()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Resets every counter and histogram. Tests use this to isolate
    /// assertions against the [`global`] registry.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.clear();
        inner.histograms.clear();
    }

    /// Renders the registry as deterministic, diff-friendly text:
    /// counters first, then histogram summaries, both sorted by name.
    /// No timestamps, no wall-clock reads.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        if !inner.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &inner.counters {
                let _ = writeln!(out, "  {name:<40} {value}");
            }
        }
        if !inner.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &inner.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<40} n={} sum={} max={} p50<={} p90<={} p99<={}",
                    h.count(),
                    h.sum(),
                    h.max(),
                    h.quantile_upper_bound(0.50),
                    h.quantile_upper_bound(0.90),
                    h.quantile_upper_bound(0.99),
                );
            }
        }
        out
    }

    /// Exports every counter and histogram bucket as schema-v1 metric
    /// lines (see [`crate::jsonl`]), sorted by name.
    pub fn export_jsonl(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut lines = Vec::new();
        for (name, value) in &inner.counters {
            lines.push(jsonl::metric_line(name, *value));
        }
        for (name, h) in &inner.histograms {
            lines.push(jsonl::metric_line(&format!("{name}.count"), h.count()));
            lines.push(jsonl::metric_line(&format!("{name}.sum"), h.sum()));
            lines.push(jsonl::metric_line(&format!("{name}.max"), h.max()));
            for (bound, n) in h.nonzero_buckets() {
                lines.push(jsonl::metric_line(&format!("{name}.le_{bound}"), n));
            }
        }
        lines
    }
}

/// The process-wide registry most instrumentation records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), u64::MAX);
        // Zero lands in bucket 0; 1 in (0,1]; 1000 in (512,1024].
        let buckets = h.nonzero_buckets();
        assert!(buckets.contains(&(0, 1)));
        assert!(buckets.contains(&(2, 1)));
        assert!(buckets.contains(&(1024, 1)));
        // The max-value sample saturates into the last bucket.
        assert!(buckets.iter().any(|(b, _)| *b == 1u64 << (HISTOGRAM_BUCKETS - 1)));
        assert!(h.quantile_upper_bound(0.5) <= 4);
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.observe(5);
        b.observe(5);
        b.observe(700);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 710);
        assert_eq!(a.max(), 700);
    }

    #[test]
    fn registry_renders_deterministically() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last", 1);
        reg.counter("a.first", 2);
        reg.counter("a.first", 3);
        reg.observe("lat.nanos", 100);
        reg.observe("lat.nanos", 200);
        assert_eq!(reg.counter_value("a.first"), 5);
        let r1 = reg.render();
        let r2 = reg.render();
        assert_eq!(r1, r2);
        // Sorted: a.first before z.last.
        let a = r1.find("a.first").unwrap();
        let z = r1.find("z.last").unwrap();
        assert!(a < z);
        assert!(r1.contains("n=2"));
    }

    #[test]
    fn export_lines_parse_back() {
        let reg = MetricsRegistry::new();
        reg.counter("vm.machines", 4);
        reg.observe("cell.nanos", 12345);
        for line in reg.export_jsonl() {
            match crate::jsonl::parse_line(&line) {
                Ok(crate::jsonl::Record::Metric { .. }) => {}
                other => panic!("expected metric record, got {other:?}"),
            }
        }
        reg.reset();
        assert!(reg.export_jsonl().is_empty());
    }
}
