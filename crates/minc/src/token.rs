//! Tokens of the MinC language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    // Literals and names.
    /// Integer literal (decimal, hex or character constant).
    Int(i64),
    /// String literal (escapes already processed).
    Str(String),
    /// An identifier.
    Ident(String),

    // Keywords.
    /// `int`
    KwInt,
    /// `char`
    KwChar,
    /// `void`
    KwVoid,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `static`
    KwStatic,
    /// `extern`
    KwExtern,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Ident(name) => write!(f, "{name}"),
            Token::KwInt => write!(f, "int"),
            Token::KwChar => write!(f, "char"),
            Token::KwVoid => write!(f, "void"),
            Token::KwIf => write!(f, "if"),
            Token::KwElse => write!(f, "else"),
            Token::KwWhile => write!(f, "while"),
            Token::KwFor => write!(f, "for"),
            Token::KwReturn => write!(f, "return"),
            Token::KwStatic => write!(f, "static"),
            Token::KwExtern => write!(f, "extern"),
            Token::KwBreak => write!(f, "break"),
            Token::KwContinue => write!(f, "continue"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Caret => write!(f, "^"),
            Token::Bang => write!(f, "!"),
            Token::Shl => write!(f, "<<"),
            Token::Shr => write!(f, ">>"),
            Token::Lt => write!(f, "<"),
            Token::Gt => write!(f, ">"),
            Token::Le => write!(f, "<="),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::PlusPlus => write!(f, "++"),
            Token::MinusMinus => write!(f, "--"),
        }
    }
}

/// A token together with its 1-based source line, for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}
