//! # swsec-minc — a miniature C compiler for the swsec VM
//!
//! MinC is a small C dialect rich enough to express every program in
//! Piessens & Verbauwhede (DATE 2016) — the Figure 1 network server,
//! the Figure 2/4 secret modules — together with the compiler and
//! *reference semantics* the paper's security objective is stated in
//! terms of:
//!
//! * [`parse`] / [`sema`] — front end (deliberately permissive, like C:
//!   an out-of-bounds `read` into a stack buffer is well-typed);
//! * [`compile`] — code generation with the paper's exact frame layout
//!   (saved return address above the saved base pointer above the
//!   locals), plus opt-in hardening passes: stack canaries, software
//!   bounds checks, defensive function-pointer checks and register
//!   scrubbing for protected modules ([`HardenOptions`]);
//! * [`interp`] — the reference interpreter giving *safe* source-level
//!   semantics where every spatial or temporal violation is a defined
//!   trap. "The compiled program behaves as specified in the source" is
//!   checked by comparing VM runs against this interpreter.
//!
//! ## Example
//!
//! ```
//! use swsec_minc::{compile, parse, CompileOptions};
//! use swsec_vm::prelude::*;
//!
//! let unit = parse(
//!     "void main() { char buf[8]; int n = read(0, buf, 8); write(1, buf, n); }",
//! )?;
//! let program = compile(&unit, &CompileOptions::default())?;
//! let mut m = Machine::new();
//! program.load(&mut m)?;
//! m.io_mut().feed_input(0, b"ping");
//! assert_eq!(m.run(100_000), RunOutcome::Halted(0));
//! assert_eq!(m.io().output(1), b"ping");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use ast::Unit as Program;
pub use codegen::{
    compile, CompileError, CompileOptions, CompiledProgram, FrameLayout, FrameSlot, GlobalSlot,
    HardenOptions, LayoutConfig,
};
pub use interp::{InterpOutcome, InterpResult, SafetyViolation};
pub use parser::{parse, ParseError};
pub use sema::SemaError;
