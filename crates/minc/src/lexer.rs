//! The MinC lexer.

use std::fmt;

use crate::token::{Spanned, Token};

/// A lexical error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start_line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(LexError {
                                    line: start_line,
                                    message: "unterminated block comment".into(),
                                })
                            }
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                Some(b'#') => {
                    // Preprocessor-style lines (e.g. `#include`) are
                    // accepted and ignored, so paper listings paste in.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn escape(&mut self) -> Result<u8, LexError> {
        match self.bump() {
            Some(b'n') => Ok(b'\n'),
            Some(b't') => Ok(b'\t'),
            Some(b'r') => Ok(b'\r'),
            Some(b'0') => Ok(0),
            Some(b'\\') => Ok(b'\\'),
            Some(b'\'') => Ok(b'\''),
            Some(b'"') => Ok(b'"'),
            Some(other) => Err(self.error(format!("unknown escape \\{}", other as char))),
            None => Err(self.error("unterminated escape")),
        }
    }

    fn next_token(&mut self) -> Result<Option<Spanned>, LexError> {
        self.skip_trivia()?;
        let line = self.line;
        let c = match self.bump() {
            None => return Ok(None),
            Some(c) => c,
        };
        let token = match c {
            b'(' => Token::LParen,
            b')' => Token::RParen,
            b'{' => Token::LBrace,
            b'}' => Token::RBrace,
            b'[' => Token::LBracket,
            b']' => Token::RBracket,
            b';' => Token::Semi,
            b',' => Token::Comma,
            b'^' => Token::Caret,
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    Token::PlusPlus
                } else {
                    Token::Plus
                }
            }
            b'-' => {
                if self.peek() == Some(b'-') {
                    self.bump();
                    Token::MinusMinus
                } else {
                    Token::Minus
                }
            }
            b'*' => Token::Star,
            b'/' => Token::Slash,
            b'%' => Token::Percent,
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    Token::AndAnd
                } else {
                    Token::Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Token::OrOr
                } else {
                    Token::Pipe
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::Ne
                } else {
                    Token::Bang
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::EqEq
                } else {
                    Token::Assign
                }
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Token::Le
                }
                Some(b'<') => {
                    self.bump();
                    Token::Shl
                }
                _ => Token::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Token::Ge
                }
                Some(b'>') => {
                    self.bump();
                    Token::Shr
                }
                _ => Token::Gt,
            },
            b'\'' => {
                let value = match self.bump() {
                    Some(b'\\') => self.escape()?,
                    Some(b'\'') => return Err(self.error("empty character constant")),
                    Some(c) => c,
                    None => return Err(self.error("unterminated character constant")),
                };
                if self.bump() != Some(b'\'') {
                    return Err(self.error("unterminated character constant"));
                }
                Token::Int(i64::from(value))
            }
            b'"' => {
                let mut s = Vec::new();
                loop {
                    match self.bump() {
                        None => return Err(self.error("unterminated string literal")),
                        Some(b'"') => break,
                        Some(b'\\') => s.push(self.escape()?),
                        Some(c) => s.push(c),
                    }
                }
                Token::Str(String::from_utf8_lossy(&s).into_owned())
            }
            b'0'..=b'9' => {
                let start = self.pos - 1;
                if c == b'0' && matches!(self.peek(), Some(b'x') | Some(b'X')) {
                    self.bump();
                    while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                        self.bump();
                    }
                    let text = std::str::from_utf8(&self.bytes[start + 2..self.pos])
                        .expect("hex digits are ascii");
                    let value = i64::from_str_radix(text, 16)
                        .map_err(|_| self.error("hex literal too large"))?;
                    Token::Int(value)
                } else {
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        self.bump();
                    }
                    let text = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("digits are ascii");
                    let value = text
                        .parse::<i64>()
                        .map_err(|_| self.error("integer literal too large"))?;
                    Token::Int(value)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos - 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    self.bump();
                }
                let name = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("identifier bytes are ascii")
                    .to_string();
                match name.as_str() {
                    "int" => Token::KwInt,
                    "char" => Token::KwChar,
                    "void" => Token::KwVoid,
                    "if" => Token::KwIf,
                    "else" => Token::KwElse,
                    "while" => Token::KwWhile,
                    "for" => Token::KwFor,
                    "return" => Token::KwReturn,
                    "static" => Token::KwStatic,
                    "extern" => Token::KwExtern,
                    "break" => Token::KwBreak,
                    "continue" => Token::KwContinue,
                    _ => Token::Ident(name),
                }
            }
            other => {
                return Err(self.error(format!("unexpected character `{}`", other as char)))
            }
        };
        Ok(Some(Spanned { token, line }))
    }
}

/// Tokenizes MinC source.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed literals, comments or characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    let mut lexer = Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        tokens.push(tok);
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int x; static char buf"),
            vec![
                Token::KwInt,
                Token::Ident("x".into()),
                Token::Semi,
                Token::KwStatic,
                Token::KwChar,
                Token::Ident("buf".into()),
            ]
        );
    }

    #[test]
    fn numbers_decimal_hex_char() {
        assert_eq!(
            toks("42 0x2a 'A' '\\n'"),
            vec![Token::Int(42), Token::Int(42), Token::Int(65), Token::Int(10)]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("<= >= == != && || << >> ++ -- < >"),
            vec![
                Token::Le,
                Token::Ge,
                Token::EqEq,
                Token::Ne,
                Token::AndAnd,
                Token::OrOr,
                Token::Shl,
                Token::Shr,
                Token::PlusPlus,
                Token::MinusMinus,
                Token::Lt,
                Token::Gt,
            ]
        );
    }

    #[test]
    fn string_with_escapes() {
        assert_eq!(
            toks(r#""hi\n\0""#),
            vec![Token::Str("hi\n\0".into())]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // line\n2 /* block\nover lines */ 3"),
            vec![Token::Int(1), Token::Int(2), Token::Int(3)]
        );
    }

    #[test]
    fn preprocessor_lines_ignored() {
        assert_eq!(
            toks("#include <stdio.h>\nint"),
            vec![Token::KwInt]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let spanned = lex("int\nx\n=\n1").unwrap();
        let lines: Vec<usize> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 4]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let err = lex("int $x;").unwrap_err();
        assert!(err.message.contains('$'));
    }
}
