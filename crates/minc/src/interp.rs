//! The reference interpreter: MinC's *source-level* semantics.
//!
//! The paper's security objective is that "the compiled system should
//! behave as specified in the source code it is compiled from". This
//! interpreter *is* that specification, made executable. It evaluates
//! the AST over an abstract memory of per-object allocations in which
//! pointers carry their provenance, so every spatial violation
//! (out-of-bounds access) and temporal violation (access to a
//! deallocated object) is a **defined trap** rather than undefined
//! behaviour.
//!
//! The observational-equivalence harness in the `swsec` crate runs a
//! program here and on the VM with the same input; an attack has
//! succeeded exactly when the VM exhibits observable behaviour this
//! interpreter cannot.
//!
//! # Examples
//!
//! ```
//! use swsec_minc::interp::{run, InterpOutcome};
//! use swsec_minc::parse;
//!
//! let unit = parse("void main() { char b[4]; read(0, b, 16); }")?;
//! let result = run(&unit, &[(0, b"AAAAAAAAAAAAAAAA".to_vec())], 10_000);
//! // Reading 16 bytes into a 4-byte buffer is a *defined trap* at the
//! // source level — not a stack smash.
//! assert!(matches!(result.outcome, InterpOutcome::Trap(_)));
//! # Ok::<(), swsec_minc::ParseError>(())
//! ```

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use crate::ast::{BinOp, Expr, Function, GlobalInit, Stmt, Type, UnaryOp, Unit};

/// A source-level safety violation: the defined trap MinC semantics
/// raise where C would have undefined behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyViolation {
    /// What went wrong (out-of-bounds, use-after-return, bad pointer…).
    pub message: String,
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SafetyViolation {}

fn violation(message: impl Into<String>) -> Interrupt {
    Interrupt::Violation(SafetyViolation {
        message: message.into(),
    })
}

/// How an interpreted run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpOutcome {
    /// `exit(code)` or `main` returned.
    Exit(i32),
    /// A safety violation trapped.
    Trap(SafetyViolation),
    /// The step budget ran out.
    OutOfFuel,
}

/// The result of an interpreted run: outcome plus observable I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpResult {
    /// How the run ended.
    pub outcome: InterpOutcome,
    /// Output per channel, in fd order — the observable behaviour.
    pub io: Vec<(u32, Vec<u8>)>,
    /// Evaluation steps consumed.
    pub steps: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Int(i32),
    Ptr { alloc: usize, index: i64 },
    Fn(String),
}

impl Value {
    fn as_int(&self) -> Result<i32, Interrupt> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Ptr { .. } => Err(violation("pointer used where an integer is required")),
            Value::Fn(_) => Err(violation("function used where an integer is required")),
        }
    }

    fn truthy(&self) -> Result<bool, Interrupt> {
        match self {
            Value::Int(v) => Ok(*v != 0),
            Value::Ptr { .. } => Ok(true),
            Value::Fn(_) => Ok(true),
        }
    }
}

#[derive(Debug)]
struct Alloc {
    elem: Type,
    cells: Vec<Value>,
    live: bool,
    name: String,
    /// Declared as an array (decays to a pointer when read), even when
    /// it has a single element.
    aggregate: bool,
    /// Allocated by the `alloc` builtin (only such objects may be
    /// passed to `free`).
    heap: bool,
}

enum Interrupt {
    Violation(SafetyViolation),
    Exit(i32),
    Fuel,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

struct Interp<'a> {
    unit: &'a Unit,
    allocs: Vec<Alloc>,
    globals: HashMap<String, usize>,
    strings: HashMap<String, usize>,
    scopes: Vec<Vec<HashMap<String, usize>>>,
    inputs: HashMap<u32, VecDeque<u8>>,
    outputs: BTreeMap<u32, Vec<u8>>,
    fuel: u64,
    steps: u64,
    rng_state: u64,
}

impl<'a> Interp<'a> {
    fn tick(&mut self) -> Result<(), Interrupt> {
        self.steps += 1;
        if self.steps > self.fuel {
            return Err(Interrupt::Fuel);
        }
        Ok(())
    }

    fn next_rand(&mut self) -> i32 {
        // The same xorshift64* generator as the VM's `sys rand`, so a
        // program calling rand() behaves identically on both sides when
        // the seeds match.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32 as i32
    }

    fn alloc_object(&mut self, name: &str, ty: &Type) -> usize {
        let (elem, count, aggregate) = match ty {
            Type::Array(e, n) => ((**e).clone(), *n, true),
            other => (other.clone(), 1, false),
        };
        self.allocs.push(Alloc {
            cells: vec![Value::Int(0); count.max(1)],
            elem,
            live: true,
            name: name.to_string(),
            aggregate,
            heap: false,
        });
        self.allocs.len() - 1
    }

    fn string_alloc(&mut self, s: &str) -> usize {
        if let Some(&id) = self.strings.get(s) {
            return id;
        }
        let mut cells: Vec<Value> = s.bytes().map(|b| Value::Int(i32::from(b))).collect();
        cells.push(Value::Int(0));
        self.allocs.push(Alloc {
            cells,
            elem: Type::Char,
            live: true,
            name: format!("\"{s}\""),
            aggregate: true,
            heap: false,
        });
        let id = self.allocs.len() - 1;
        self.strings.insert(s.to_string(), id);
        id
    }

    fn load_cell(&self, alloc: usize, index: i64) -> Result<Value, Interrupt> {
        let a = &self.allocs[alloc];
        if !a.live {
            return Err(violation(format!(
                "temporal violation: read of deallocated object `{}`",
                a.name
            )));
        }
        if index < 0 || index as usize >= a.cells.len() {
            return Err(violation(format!(
                "spatial violation: read of `{}` at index {index} (size {})",
                a.name,
                a.cells.len()
            )));
        }
        Ok(a.cells[index as usize].clone())
    }

    fn store_cell(&mut self, alloc: usize, index: i64, value: Value) -> Result<(), Interrupt> {
        let is_byte = self.allocs[alloc].elem.is_byte();
        let a = &self.allocs[alloc];
        if !a.live {
            return Err(violation(format!(
                "temporal violation: write to deallocated object `{}`",
                a.name
            )));
        }
        if index < 0 || index as usize >= a.cells.len() {
            return Err(violation(format!(
                "spatial violation: write to `{}` at index {index} (size {})",
                a.name,
                a.cells.len()
            )));
        }
        let value = if is_byte {
            Value::Int(value.as_int()? & 0xff)
        } else {
            value
        };
        self.allocs[alloc].cells[index as usize] = value;
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        if let Some(frames) = self.scopes.last() {
            for scope in frames.iter().rev() {
                if let Some(&id) = scope.get(name) {
                    return Some(id);
                }
            }
        }
        self.globals.get(name).copied()
    }

    fn lvalue(&mut self, e: &Expr) -> Result<(usize, i64), Interrupt> {
        match e {
            Expr::Var(name) => {
                let id = self
                    .lookup(name)
                    .ok_or_else(|| violation(format!("unknown variable `{name}`")))?;
                Ok((id, 0))
            }
            Expr::Index { base, index } => {
                let base_val = self.eval(base)?;
                let idx = self.eval(index)?.as_int()? as i64;
                match base_val {
                    Value::Ptr { alloc, index } => Ok((alloc, index + idx)),
                    _ => Err(violation("indexing a non-pointer value")),
                }
            }
            Expr::Unary {
                op: UnaryOp::Deref,
                expr,
            } => match self.eval(expr)? {
                Value::Ptr { alloc, index } => Ok((alloc, index)),
                Value::Int(_) => Err(violation(
                    "dereference of an integer (no pointer provenance)",
                )),
                Value::Fn(_) => Err(violation("dereference of a function pointer")),
            },
            other => Err(violation(format!("not an lvalue: {other:?}"))),
        }
    }

    /// Reads a variable, applying array-to-pointer decay.
    fn read_var(&mut self, name: &str) -> Result<Value, Interrupt> {
        if let Some(id) = self.lookup(name) {
            let a = &self.allocs[id];
            // Arrays decay to a pointer to their first element; scalars
            // load their single cell.
            if a.aggregate {
                return Ok(Value::Ptr {
                    alloc: id,
                    index: 0,
                });
            }
            return self.load_cell(id, 0);
        }
        if self.unit.function(name).is_some() {
            return Ok(Value::Fn(name.to_string()));
        }
        Err(violation(format!("unknown identifier `{name}`")))
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, Interrupt> {
        self.tick()?;
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v as i32)),
            Expr::StrLit(s) => {
                let id = self.string_alloc(s);
                Ok(Value::Ptr {
                    alloc: id,
                    index: 0,
                })
            }
            Expr::Var(name) => {
                // Arrays must decay: detect by declared type.
                if let Some(id) = self.lookup(name) {
                    if self.alloc_is_aggregate(id, name) {
                        return Ok(Value::Ptr {
                            alloc: id,
                            index: 0,
                        });
                    }
                    return self.load_cell(id, 0);
                }
                self.read_var(name)
            }
            Expr::Assign { target, value } => {
                let v = self.eval(value)?;
                let (alloc, index) = self.lvalue(target)?;
                self.store_cell(alloc, index, v.clone())?;
                Ok(v)
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => Ok(Value::Int(self.eval(expr)?.as_int()?.wrapping_neg())),
                UnaryOp::Not => Ok(Value::Int(i32::from(!self.eval(expr)?.truthy()?))),
                UnaryOp::Deref => {
                    let (alloc, index) = self.lvalue(e)?;
                    self.load_cell(alloc, index)
                }
                UnaryOp::Addr => {
                    let (alloc, index) = self.lvalue(expr)?;
                    Ok(Value::Ptr { alloc, index })
                }
            },
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            Expr::Call { callee, args } => self.eval_call(callee, args),
            Expr::Index { .. } => {
                let (alloc, index) = self.lvalue(e)?;
                self.load_cell(alloc, index)
            }
            Expr::PostIncDec { target, inc } => {
                let (alloc, index) = self.lvalue(target)?;
                let old = self.load_cell(alloc, index)?;
                let new = match &old {
                    Value::Int(v) => {
                        Value::Int(if *inc { v.wrapping_add(1) } else { v.wrapping_sub(1) })
                    }
                    Value::Ptr { alloc, index } => Value::Ptr {
                        alloc: *alloc,
                        index: if *inc { index + 1 } else { index - 1 },
                    },
                    Value::Fn(_) => return Err(violation("++/-- on a function pointer")),
                };
                self.store_cell(alloc, index, new)?;
                Ok(old)
            }
        }
    }

    fn alloc_is_aggregate(&self, id: usize, _name: &str) -> bool {
        self.allocs[id].aggregate
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value, Interrupt> {
        match op {
            BinOp::And => {
                if !self.eval(lhs)?.truthy()? {
                    return Ok(Value::Int(0));
                }
                return Ok(Value::Int(i32::from(self.eval(rhs)?.truthy()?)));
            }
            BinOp::Or => {
                if self.eval(lhs)?.truthy()? {
                    return Ok(Value::Int(1));
                }
                return Ok(Value::Int(i32::from(self.eval(rhs)?.truthy()?)));
            }
            _ => {}
        }
        let a = self.eval(lhs)?;
        let b = self.eval(rhs)?;
        // Pointer arithmetic and comparison.
        match (&a, &b) {
            (Value::Ptr { alloc, index }, Value::Int(n)) => {
                return match op {
                    BinOp::Add => Ok(Value::Ptr {
                        alloc: *alloc,
                        index: index + i64::from(*n),
                    }),
                    BinOp::Sub => Ok(Value::Ptr {
                        alloc: *alloc,
                        index: index - i64::from(*n),
                    }),
                    BinOp::Eq => Ok(Value::Int(0)),
                    BinOp::Ne => Ok(Value::Int(1)),
                    _ => Err(violation("unsupported pointer/integer operation")),
                };
            }
            (Value::Int(n), Value::Ptr { alloc, index }) if op == BinOp::Add => {
                return Ok(Value::Ptr {
                    alloc: *alloc,
                    index: index + i64::from(*n),
                });
            }
            (
                Value::Ptr {
                    alloc: a1,
                    index: i1,
                },
                Value::Ptr {
                    alloc: a2,
                    index: i2,
                },
            ) => {
                return match op {
                    BinOp::Sub if a1 == a2 => Ok(Value::Int((i1 - i2) as i32)),
                    BinOp::Sub => Err(violation(
                        "subtraction of pointers into different objects",
                    )),
                    BinOp::Eq => Ok(Value::Int(i32::from(a1 == a2 && i1 == i2))),
                    BinOp::Ne => Ok(Value::Int(i32::from(!(a1 == a2 && i1 == i2)))),
                    BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge if a1 == a2 => {
                        let r = match op {
                            BinOp::Lt => i1 < i2,
                            BinOp::Gt => i1 > i2,
                            BinOp::Le => i1 <= i2,
                            _ => i1 >= i2,
                        };
                        Ok(Value::Int(i32::from(r)))
                    }
                    _ => Err(violation(
                        "relational comparison of pointers into different objects",
                    )),
                };
            }
            _ => {}
        }
        let a = a.as_int()?;
        let b = b.as_int()?;
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(violation("division by zero"));
                }
                a.wrapping_div(b)
            }
            BinOp::Mod => {
                if b == 0 {
                    return Err(violation("remainder by zero"));
                }
                a.wrapping_rem(b)
            }
            BinOp::Shl => (a as u32).wrapping_shl(b as u32) as i32,
            BinOp::Shr => a.wrapping_shr(b as u32),
            BinOp::Lt => i32::from(a < b),
            BinOp::Gt => i32::from(a > b),
            BinOp::Le => i32::from(a <= b),
            BinOp::Ge => i32::from(a >= b),
            BinOp::Eq => i32::from(a == b),
            BinOp::Ne => i32::from(a != b),
            BinOp::BitAnd => a & b,
            BinOp::BitOr => a | b,
            BinOp::BitXor => a ^ b,
            BinOp::And | BinOp::Or => unreachable!("short-circuit handled above"),
        };
        Ok(Value::Int(v))
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr]) -> Result<Value, Interrupt> {
        if let Expr::Var(name) = callee {
            match name.as_str() {
                "read" => {
                    let fd = self.eval(&args[0])?.as_int()? as u32;
                    let buf = self.eval(&args[1])?;
                    let len = self.eval(&args[2])?.as_int()?;
                    let (alloc, base) = match buf {
                        Value::Ptr { alloc, index } => (alloc, index),
                        _ => return Err(violation("read() needs a pointer buffer")),
                    };
                    let mut count = 0i32;
                    for i in 0..len.max(0) {
                        let byte = match self.inputs.get_mut(&fd).and_then(|q| q.pop_front()) {
                            Some(b) => b,
                            None => break,
                        };
                        self.store_cell(alloc, base + i64::from(i), Value::Int(i32::from(byte)))?;
                        count += 1;
                    }
                    return Ok(Value::Int(count));
                }
                "write" => {
                    let fd = self.eval(&args[0])?.as_int()? as u32;
                    let buf = self.eval(&args[1])?;
                    let len = self.eval(&args[2])?.as_int()?;
                    let (alloc, base) = match buf {
                        Value::Ptr { alloc, index } => (alloc, index),
                        _ => return Err(violation("write() needs a pointer buffer")),
                    };
                    let mut bytes = Vec::new();
                    for i in 0..len.max(0) {
                        let v = self.load_cell(alloc, base + i64::from(i))?.as_int()?;
                        bytes.push(v as u8);
                    }
                    self.outputs.entry(fd).or_default().extend_from_slice(&bytes);
                    return Ok(Value::Int(len.max(0)));
                }
                "exit" => {
                    let code = self.eval(&args[0])?.as_int()?;
                    return Err(Interrupt::Exit(code));
                }
                "rand" => {
                    return Ok(Value::Int(self.next_rand()));
                }
                "alloc" => {
                    let n = self.eval(&args[0])?.as_int()?;
                    if n < 0 {
                        return Err(violation("alloc() with a negative size"));
                    }
                    let id = self.allocs.len();
                    self.allocs.push(Alloc {
                        cells: vec![Value::Int(0); (n.max(1)) as usize],
                        elem: Type::Char,
                        live: true,
                        name: format!("heap#{id}"),
                        aggregate: true,
                        heap: true,
                    });
                    return Ok(Value::Ptr { alloc: id, index: 0 });
                }
                "free" => {
                    let v = self.eval(&args[0])?;
                    match v {
                        Value::Int(0) => return Ok(Value::Int(0)), // free(NULL)
                        Value::Ptr { alloc, index } => {
                            if index != 0 {
                                return Err(violation(
                                    "free() of a pointer into the middle of an object",
                                ));
                            }
                            let a = &mut self.allocs[alloc];
                            if !a.heap {
                                return Err(violation(format!(
                                    "free() of non-heap object `{}`",
                                    a.name
                                )));
                            }
                            if !a.live {
                                return Err(violation(format!(
                                    "double free of `{}`",
                                    a.name
                                )));
                            }
                            a.live = false;
                            return Ok(Value::Int(0));
                        }
                        _ => return Err(violation("free() needs a heap pointer")),
                    }
                }
                _ => {}
            }
        }
        // Resolve the target function.
        let fname = match callee {
            Expr::Var(name) if self.unit.function(name).is_some() && self.lookup(name).is_none() => {
                name.clone()
            }
            other => match self.eval(other)? {
                Value::Fn(name) => name,
                Value::Int(_) => {
                    return Err(violation(
                        "call through an integer (no function provenance)",
                    ))
                }
                Value::Ptr { .. } => {
                    return Err(violation("call through a data pointer"))
                }
            },
        };
        let func = self
            .unit
            .function(&fname)
            .ok_or_else(|| violation(format!("call of unknown function `{fname}`")))?
            .clone();
        if func.body.is_none() {
            return Err(violation(format!(
                "call of extern function `{fname}` with no body in this unit"
            )));
        }
        let mut arg_values = Vec::with_capacity(args.len());
        for a in args {
            arg_values.push(self.eval(a)?);
        }
        self.call_function(&func, arg_values)
    }

    fn call_function(&mut self, func: &Function, args: Vec<Value>) -> Result<Value, Interrupt> {
        let body = func.body.as_ref().expect("checked by caller");
        let mut frame_allocs = Vec::new();
        let mut scope = HashMap::new();
        for (p, v) in func.params.iter().zip(args) {
            let id = self.alloc_object(&p.name, &p.ty.decayed());
            self.allocs[id].cells[0] = if p.ty.is_byte() {
                Value::Int(v.as_int()? & 0xff)
            } else {
                v
            };
            scope.insert(p.name.clone(), id);
            frame_allocs.push(id);
        }
        self.scopes.push(vec![scope]);
        let mut result = Value::Int(0);
        let mut flow_err = None;
        match self.exec_block(body, &mut frame_allocs) {
            Ok(Flow::Return(v)) => result = v,
            Ok(_) => {}
            Err(e) => flow_err = Some(e),
        }
        // Deallocate the frame: locals die on return (temporal
        // semantics — dangling pointers become detectable).
        for scope in self.scopes.pop().expect("frame pushed above") {
            for (_, id) in scope {
                self.allocs[id].live = false;
            }
        }
        for id in frame_allocs {
            self.allocs[id].live = false;
        }
        match flow_err {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], frame_allocs: &mut Vec<usize>) -> Result<Flow, Interrupt> {
        for s in stmts {
            match self.exec_stmt(s, frame_allocs)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt, frame_allocs: &mut Vec<usize>) -> Result<Flow, Interrupt> {
        self.tick()?;
        match s {
            Stmt::Decl { name, ty, init } => {
                let id = self.alloc_object(name, ty);
                frame_allocs.push(id);
                if let Some(init) = init {
                    let v = self.eval(init)?;
                    self.store_cell(id, 0, v)?;
                }
                self.scopes
                    .last_mut()
                    .expect("inside a frame")
                    .last_mut()
                    .expect("inside a scope")
                    .insert(name.clone(), id);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond)?.truthy()? {
                    self.exec_stmt(then_branch, frame_allocs)
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, frame_allocs)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.truthy()? {
                    match self.exec_stmt(body, frame_allocs)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes
                    .last_mut()
                    .expect("inside a frame")
                    .push(HashMap::new());
                if let Some(init) = init {
                    self.exec_stmt(init, frame_allocs)?;
                }
                let flow = loop {
                    let go = match cond {
                        Some(c) => self.eval(c)?.truthy()?,
                        None => true,
                    };
                    if !go {
                        break Flow::Normal;
                    }
                    match self.exec_stmt(body, frame_allocs)? {
                        Flow::Break => break Flow::Normal,
                        Flow::Return(v) => break Flow::Return(v),
                        _ => {}
                    }
                    if let Some(step) = step {
                        self.eval(step)?;
                    }
                };
                self.scopes.last_mut().expect("inside a frame").pop();
                Ok(flow)
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(e)?,
                    None => Value::Int(0),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Block(stmts) => {
                self.scopes
                    .last_mut()
                    .expect("inside a frame")
                    .push(HashMap::new());
                let flow = self.exec_block(stmts, frame_allocs);
                self.scopes.last_mut().expect("inside a frame").pop();
                flow
            }
        }
    }
}

/// Runs `main` of `unit` with the given per-channel inputs and a step
/// budget, under safe source-level semantics.
pub fn run(unit: &Unit, inputs: &[(u32, Vec<u8>)], fuel: u64) -> InterpResult {
    run_seeded(unit, inputs, fuel, 0x9E37_79B9_7F4A_7C15)
}

/// Like [`run`], with an explicit seed for the `rand()` builtin (pass
/// the same seed given to
/// [`Machine::seed_rng`](swsec_vm::cpu::Machine::seed_rng) to compare
/// runs that use randomness).
pub fn run_seeded(unit: &Unit, inputs: &[(u32, Vec<u8>)], fuel: u64, seed: u64) -> InterpResult {
    let mut interp = Interp {
        unit,
        allocs: Vec::new(),
        globals: HashMap::new(),
        strings: HashMap::new(),
        scopes: Vec::new(),
        inputs: inputs
            .iter()
            .map(|(fd, bytes)| (*fd, bytes.iter().copied().collect()))
            .collect(),
        outputs: BTreeMap::new(),
        fuel,
        steps: 0,
        rng_state: seed | 1,
    };
    // Globals.
    for g in &unit.globals {
        let id = interp.alloc_object(&g.name, &g.ty);
        match &g.init {
            Some(GlobalInit::Int(v)) => {
                let v = if g.ty.is_byte() {
                    *v as i32 & 0xff
                } else {
                    *v as i32
                };
                interp.allocs[id].cells[0] = Value::Int(v);
            }
            Some(GlobalInit::Str(s)) => {
                for (i, b) in s.bytes().enumerate() {
                    interp.allocs[id].cells[i] = Value::Int(i32::from(b));
                }
            }
            None => {}
        }
        interp.globals.insert(g.name.clone(), id);
    }
    let outcome = match unit.function("main") {
        None => InterpOutcome::Trap(SafetyViolation {
            message: "program has no main function".into(),
        }),
        Some(main) if main.body.is_none() => InterpOutcome::Trap(SafetyViolation {
            message: "main has no body".into(),
        }),
        Some(main) => {
            let main = main.clone();
            match interp.call_function(&main, Vec::new()) {
                Ok(v) => InterpOutcome::Exit(v.as_int().unwrap_or(0)),
                Err(Interrupt::Exit(code)) => InterpOutcome::Exit(code),
                Err(Interrupt::Violation(v)) => InterpOutcome::Trap(v),
                Err(Interrupt::Fuel) => InterpOutcome::OutOfFuel,
            }
        }
    };
    InterpResult {
        outcome,
        io: interp
            .outputs
            .into_iter()
            .filter(|(_, bytes)| !bytes.is_empty())
            .collect(),
        steps: interp.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn exec(src: &str, input: &[u8]) -> InterpResult {
        let unit = parse(src).unwrap();
        run(&unit, &[(0, input.to_vec())], 1_000_000)
    }

    #[test]
    fn exit_code_from_main() {
        assert_eq!(exec("int main() { return 42; }", &[]).outcome, InterpOutcome::Exit(42));
    }

    #[test]
    fn echo_server_behaviour() {
        let r = exec(
            "void main() { char buf[8]; int n = read(0, buf, 8); write(1, buf, n); }",
            b"ping",
        );
        assert_eq!(r.outcome, InterpOutcome::Exit(0));
        assert_eq!(r.io, vec![(1, b"ping".to_vec())]);
    }

    #[test]
    fn spatial_violation_on_oversized_read() {
        let r = exec(
            "void main() { char buf[4]; read(0, buf, 8); }",
            b"AAAAAAAA",
        );
        match r.outcome {
            InterpOutcome::Trap(v) => assert!(v.message.contains("spatial")),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn short_input_does_not_trap() {
        // read() only stores as many bytes as are available.
        let r = exec("void main() { char buf[4]; read(0, buf, 4); }", b"ab");
        assert_eq!(r.outcome, InterpOutcome::Exit(0));
    }

    #[test]
    fn spatial_violation_on_oob_index() {
        let r = exec("int main() { int a[4]; return a[4]; }", &[]);
        assert!(matches!(r.outcome, InterpOutcome::Trap(_)));
    }

    #[test]
    fn negative_index_traps() {
        let r = exec("int main() { int a[4]; int i = -1; return a[i]; }", &[]);
        assert!(matches!(r.outcome, InterpOutcome::Trap(_)));
    }

    #[test]
    fn temporal_violation_on_dangling_pointer() {
        // The §III-A temporal example: a pointer to a dead frame.
        let r = exec(
            "int *escape() { int local = 5; return &local; }\n\
             int main() { int *p = escape(); return *p; }",
            &[],
        );
        match r.outcome {
            InterpOutcome::Trap(v) => assert!(v.message.contains("temporal"), "{}", v.message),
            other => panic!("expected temporal trap, got {other:?}"),
        }
    }

    #[test]
    fn integer_to_pointer_has_no_provenance() {
        let r = exec("int main() { int x = 1234; int *p; p = &x; p = p + 10; return *p; }", &[]);
        assert!(matches!(r.outcome, InterpOutcome::Trap(_)));
    }

    #[test]
    fn pointer_arithmetic_within_object_is_fine() {
        let r = exec(
            "int main() { int a[4]; a[0] = 1; a[3] = 9; int *p = a; return *(p + 3); }",
            &[],
        );
        assert_eq!(r.outcome, InterpOutcome::Exit(9));
    }

    #[test]
    fn function_pointers_work() {
        let r = exec(
            "int f() { return 7; }\n\
             int call(int (*g)()) { return g(); }\n\
             int main() { return call(f); }",
            &[],
        );
        assert_eq!(r.outcome, InterpOutcome::Exit(7));
    }

    #[test]
    fn figure2_module_reference_semantics() {
        let src = r#"
            static int tries_left = 3;
            static int PIN = 1234;
            static int secret = 666;
            int get_secret(int provided_pin) {
                if (tries_left > 0) {
                    if (PIN == provided_pin) { tries_left = 3; return secret; }
                    else { tries_left--; return 0; }
                } else return 0;
            }
            int main() {
                int a = get_secret(1111);
                int b = get_secret(2222);
                int c = get_secret(3333);
                int d = get_secret(1234);
                return a + b + c + d;
            }
        "#;
        // Three wrong tries exhaust the counter: even the correct PIN
        // afterwards returns 0.
        assert_eq!(exec(src, &[]).outcome, InterpOutcome::Exit(0));
    }

    #[test]
    fn figure2_module_correct_pin_first() {
        let src = r#"
            static int tries_left = 3;
            static int PIN = 1234;
            static int secret = 666;
            int get_secret(int provided_pin) {
                if (tries_left > 0) {
                    if (PIN == provided_pin) { tries_left = 3; return secret; }
                    else { tries_left--; return 0; }
                } else return 0;
            }
            int main() { return get_secret(1234); }
        "#;
        assert_eq!(exec(src, &[]).outcome, InterpOutcome::Exit(666));
    }

    #[test]
    fn char_values_wrap_at_byte_width() {
        let r = exec("int main() { char c = 300; return c; }", &[]);
        assert_eq!(r.outcome, InterpOutcome::Exit(300 & 0xff));
    }

    #[test]
    fn division_by_zero_traps() {
        let r = exec("int main() { int z = 0; return 1 / z; }", &[]);
        assert!(matches!(r.outcome, InterpOutcome::Trap(_)));
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let unit = parse("void main() { while (1) { } }").unwrap();
        let r = run(&unit, &[], 1_000);
        assert_eq!(r.outcome, InterpOutcome::OutOfFuel);
    }

    #[test]
    fn exit_builtin_short_circuits() {
        let r = exec("void main() { exit(9); write(1, \"never\", 5); }", &[]);
        assert_eq!(r.outcome, InterpOutcome::Exit(9));
        assert!(r.io.is_empty());
    }

    #[test]
    fn globals_visible_across_calls() {
        let r = exec(
            "int total = 0;\n\
             void bump(int n) { total = total + n; }\n\
             int main() { bump(20); bump(22); return total; }",
            &[],
        );
        assert_eq!(r.outcome, InterpOutcome::Exit(42));
    }

    #[test]
    fn string_literals_are_readable() {
        let r = exec("void main() { write(1, \"hi\", 2); }", &[]);
        assert_eq!(r.io, vec![(1, b"hi".to_vec())]);
    }

    #[test]
    fn string_literal_overread_traps() {
        let r = exec("void main() { write(1, \"hi\", 10); }", &[]);
        assert!(matches!(r.outcome, InterpOutcome::Trap(_)));
    }

    #[test]
    fn rand_matches_vm_sequence_for_same_seed() {
        let unit = parse("int main() { return rand() & 0xff; }").unwrap();
        let a = run_seeded(&unit, &[], 10_000, 7);
        let b = run_seeded(&unit, &[], 10_000, 7);
        assert_eq!(a.outcome, b.outcome);
    }
}
