//! Abstract syntax of MinC.
//!
//! MinC is a miniature C: enough of the language to express every
//! program in the paper (the Figure 1 server, the Figure 2/4 secret
//! modules) and the benchmark workloads, while keeping C's dangerous
//! semantics — no implicit bounds checks, arrays decay to pointers,
//! out-of-bounds access is *undefined at the machine level* (it does
//! whatever compiled code happens to do).

use std::fmt;

/// A MinC type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 8-bit unsigned character.
    Char,
    /// No value (function returns only).
    Void,
    /// Pointer to `T`.
    Ptr(Box<Type>),
    /// Fixed-size array of `T` (only as variable types; decays to
    /// pointer in expressions and parameters).
    Array(Box<Type>, usize),
    /// Pointer to a function returning the given type and taking the
    /// given parameter types — e.g. `int (*get_pin)()` in the paper's
    /// Figure 4.
    FnPtr(Box<Type>, Vec<Type>),
}

impl Type {
    /// Size of a value of this type in bytes.
    pub fn size(&self) -> u32 {
        match self {
            Type::Int => 4,
            Type::Char => 1,
            Type::Void => 0,
            Type::Ptr(_) | Type::FnPtr(..) => 4,
            Type::Array(elem, n) => elem.size() * (*n as u32),
        }
    }

    /// The element type when this is an array or pointer.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Whether this type occupies one byte in memory (`char`).
    pub fn is_byte(&self) -> bool {
        matches!(self, Type::Char)
    }

    /// The type this type decays to in an expression (arrays become
    /// pointers; everything else is unchanged).
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Char => write!(f, "char"),
            Type::Void => write!(f, "void"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::FnPtr(ret, params) => {
                write!(f, "{ret} (*)(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e` (yields 0 or 1).
    Not,
    /// Bitwise not `~e` is spelled `e ^ -1` in MinC (no `~` token).
    /// Pointer dereference `*e`.
    Deref,
    /// Address-of `&e`.
    Addr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed)
    Div,
    /// `%` (signed)
    Mod,
    /// `<<`
    Shl,
    /// `>>` (arithmetic, operands are signed ints)
    Shr,
    /// `<` (signed)
    Lt,
    /// `>` (signed)
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// String literal; evaluates to the address of its data-segment copy.
    StrLit(String),
    /// Variable reference.
    Var(String),
    /// Assignment `target = value`; `target` must be an lvalue.
    Assign {
        /// The lvalue being assigned.
        target: Box<Expr>,
        /// The value stored.
        value: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call; the callee is a name or a function-pointer
    /// expression.
    Call {
        /// The callee expression.
        callee: Box<Expr>,
        /// Argument expressions, left to right.
        args: Vec<Expr>,
    },
    /// Array indexing `base[index]` (scaled by the element size).
    Index {
        /// The array or pointer expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// Postfix `target++` / `target--`; evaluates to the *old* value.
    PostIncDec {
        /// The lvalue updated.
        target: Box<Expr>,
        /// `true` for `++`, `false` for `--`.
        inc: bool,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration, optionally initialized.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `for` loop.
    For {
        /// Optional initializer statement (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Optional condition (absent means "true").
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `return`, optionally with a value.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// A `{ ... }` block with its own scope.
    Block(Vec<Stmt>),
}

/// Initializer of a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Scalar integer initializer.
    Int(i64),
    /// String initializer for a `char` array (NUL-padded to the array
    /// size).
    Str(String),
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Optional initializer (zero otherwise).
    pub init: Option<GlobalInit>,
    /// Declared `static` (module-private; meaningful to the PMA
    /// experiments, ignored by ordinary compilation).
    pub is_static: bool,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Type (arrays decay to pointers here).
    pub ty: Type,
}

/// A function definition or extern declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body; `None` for `extern` declarations resolved at link time.
    pub body: Option<Vec<Stmt>>,
    /// Declared `static` (not exported from a module).
    pub is_static: bool,
}

/// A complete translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// Global variables, in declaration order.
    pub globals: Vec<Global>,
    /// Functions, in declaration order.
    pub functions: Vec<Function>,
}

impl Unit {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::Int.size(), 4);
        assert_eq!(Type::Char.size(), 1);
        assert_eq!(Type::Ptr(Box::new(Type::Char)).size(), 4);
        assert_eq!(Type::Array(Box::new(Type::Char), 16).size(), 16);
        assert_eq!(Type::Array(Box::new(Type::Int), 4).size(), 16);
        assert_eq!(Type::FnPtr(Box::new(Type::Int), vec![]).size(), 4);
    }

    #[test]
    fn array_decay() {
        let arr = Type::Array(Box::new(Type::Char), 16);
        assert_eq!(arr.decayed(), Type::Ptr(Box::new(Type::Char)));
        assert_eq!(Type::Int.decayed(), Type::Int);
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Ptr(Box::new(Type::Char)).to_string(), "char*");
        assert_eq!(
            Type::FnPtr(Box::new(Type::Int), vec![Type::Int]).to_string(),
            "int (*)(int)"
        );
    }
}
