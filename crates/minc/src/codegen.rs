//! Code generation: MinC → swsec assembly → machine code.
//!
//! The generated code follows the frame layout of the paper's Figure 1
//! exactly:
//!
//! ```text
//!   higher addresses
//!   [bp + 8 + 4i]  parameter i            (pushed by the caller)
//!   [bp + 4]       saved return address   (pushed by `call`)
//!   [bp + 0]       saved base pointer     (pushed by `enter`)
//!   [bp - 4]       stack canary           (only when hardened)
//!   [bp - 4 - …]   locals, later declarations at lower addresses
//!   lower addresses        ← the stack grows this way
//! ```
//!
//! A buffer overflow in a local array therefore overwrites, in order:
//! later-declared locals, the canary, the saved base pointer, and the
//! saved return address — precisely the stack-smashing anatomy of
//! §III-B.
//!
//! Hardening passes (all off by default, as in unprotected C):
//!
//! * **stack canaries** — a per-load random value between the locals
//!   and the saved registers, checked before every return;
//! * **software bounds checks** — unsigned index checks on direct array
//!   accesses and a length check on `read` into a known array;
//! * **PMA defensive function-pointer checks** — an indirect call
//!   through a pointer must target memory *outside* the module's own
//!   code (the §IV-B countermeasure to the Figure 4 attack);
//! * **register scrubbing** — non-result registers are zeroed before
//!   return so module secrets cannot leak through registers.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use swsec_vm::cpu::Machine;
use swsec_vm::isa::trap;
use swsec_vm::mem::Perm;

use crate::ast::{BinOp, Expr, Function, GlobalInit, Stmt, Type, UnaryOp, Unit};
use crate::sema;

/// Where the program's segments are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayoutConfig {
    /// Base of the text (code) segment.
    pub text_base: u32,
    /// Base of the data segment.
    pub data_base: u32,
    /// Initial top of the stack (the stack grows down from here).
    pub stack_top: u32,
    /// Bytes of stack mapped below `stack_top`.
    pub stack_size: u32,
    /// Base of the heap segment served by `alloc`/`free`.
    pub heap_base: u32,
    /// Bytes of heap mapped at `heap_base`.
    pub heap_size: u32,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        // The classic 32-bit Linux layout of the paper's Figure 1.
        LayoutConfig {
            text_base: 0x0804_8000,
            data_base: 0x0805_0000,
            stack_top: 0xbfff_f000,
            stack_size: 0x1_0000,
            heap_base: 0x0806_0000,
            heap_size: 0x1_0000,
        }
    }
}

/// Compiler hardening switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HardenOptions {
    /// Emit stack canaries (StackGuard, §III-C1).
    pub stack_canary: bool,
    /// Emit software bounds checks on array accesses and `read`.
    pub bounds_checks: bool,
    /// Emit defensive checks on indirect calls: the target must lie
    /// outside this compilation unit's code (§IV-B secure compilation).
    pub pma_fnptr_check: bool,
    /// Zero non-result registers before returning (secure compilation:
    /// no secrets leak through registers to the caller).
    pub scrub_registers: bool,
    /// Route every out-call through an internal continuation stack and
    /// a designated return-entry stub, so the module runs under the
    /// strict `EntryPointsOnly` re-entry policy (the full §IV-B secure
    /// compilation scheme of the paper's reference \[30\]).
    pub strict_reentry: bool,
    /// Quarantine the heap: `free` never recycles chunks, so dangling
    /// pointers cannot alias attacker-controlled reallocations (the
    /// mitigation half of the use-after-free story; costs memory).
    pub heap_quarantine: bool,
}

impl HardenOptions {
    /// All hardening off: faithful unprotected C.
    pub fn none() -> HardenOptions {
        HardenOptions::default()
    }

    /// The §IV-B secure-compilation bundle for protected modules
    /// (defensive checks and scrubbing; re-entry stays relaxed).
    pub fn secure_module() -> HardenOptions {
        HardenOptions {
            stack_canary: false,
            bounds_checks: false,
            pma_fnptr_check: true,
            scrub_registers: true,
            strict_reentry: false,
            heap_quarantine: false,
        }
    }

    /// The full scheme: `secure_module` plus continuation-stack
    /// out-calls, compatible with the strict `EntryPointsOnly` policy.
    pub fn secure_module_strict() -> HardenOptions {
        HardenOptions {
            strict_reentry: true,
            ..HardenOptions::secure_module()
        }
    }
}

/// Options controlling one compilation.
///
/// Cheap to clone and hashable end to end, so compilation results can
/// be memoized keyed on `(source, options)` — see `swsec::cache`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CompileOptions {
    /// Segment placement.
    pub layout: LayoutOpt,
    /// Hardening switches.
    pub harden: HardenOptions,
    /// Pre-resolved addresses of `extern` functions (static linking
    /// against an already-loaded module).
    pub externs: BTreeMap<String, u32>,
    /// Emit a `_start` stub that calls `main` then exits (off for
    /// modules, which are entered through their exported functions).
    pub no_start: bool,
}

/// Wrapper so `CompileOptions::default()` gets the default layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(Default)]
pub struct LayoutOpt(pub LayoutConfig);


/// A compile-time error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<sema::SemaError> for CompileError {
    fn from(e: sema::SemaError) -> CompileError {
        CompileError { message: e.message }
    }
}

fn cerr(message: impl Into<String>) -> CompileError {
    CompileError {
        message: message.into(),
    }
}

/// Placement of one global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSlot {
    /// Absolute address in the data segment.
    pub addr: u32,
    /// Declared type.
    pub ty: Type,
}

/// Placement of one local variable within a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSlot {
    /// Offset from the base pointer (negative: below the saved bp).
    pub offset: i32,
    /// Declared type.
    pub ty: Type,
}

/// Frame layout of one compiled function, for experiments that need to
/// know exactly where a buffer sits relative to the saved return
/// address.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameLayout {
    /// Total bytes subtracted from `sp` by the prologue.
    pub frame_size: u32,
    /// Offset of the canary slot, when canaries are enabled.
    pub canary_offset: Option<i32>,
    /// Every local with its slot, in declaration order (shadowed names
    /// appear multiple times).
    pub locals: Vec<(String, FrameSlot)>,
    /// Every parameter with its positive bp-offset.
    pub params: Vec<(String, i32)>,
}

/// A fully compiled translation unit: loadable segments plus the
/// symbol and layout information the experiments interrogate.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Base address of the text segment.
    pub text_base: u32,
    /// Text segment bytes.
    pub text: Vec<u8>,
    /// Base address of the data segment.
    pub data_base: u32,
    /// Data segment bytes (globals, canary cell, string literals).
    pub data: Vec<u8>,
    /// Address of `_start`, when one was emitted.
    pub entry: Option<u32>,
    /// Address of every function.
    pub functions: BTreeMap<String, u32>,
    /// Names of exported (non-`static`) functions.
    pub exports: Vec<String>,
    /// Placement of every global.
    pub globals: BTreeMap<String, GlobalSlot>,
    /// Frame layout of every function with a body.
    pub frames: BTreeMap<String, FrameLayout>,
    /// Address of the canary cell, when canaries were compiled in.
    pub canary_addr: Option<u32>,
    /// Address of the strict-re-entry return stub, when compiled with
    /// [`HardenOptions::strict_reentry`]. Must be registered as a
    /// protected-module entry point.
    pub reentry_addr: Option<u32>,
    /// The generated assembly listing.
    pub listing: String,
    /// The layout this program was compiled for.
    pub layout: LayoutConfig,
}

impl CompiledProgram {
    /// End address (exclusive) of the text segment.
    pub fn text_end(&self) -> u32 {
        self.text_base + self.text.len() as u32
    }

    /// End address (exclusive) of the data segment.
    pub fn data_end(&self) -> u32 {
        self.data_base + self.data.len() as u32
    }

    /// The function map as a profiler symbol table: each function
    /// names the text range up to the next function (the last runs to
    /// [`text_end`](Self::text_end)), so sampled guest PCs and return
    /// addresses resolve to MinC function names in `.folded` output.
    #[must_use]
    pub fn symbol_table(&self) -> swsec_obs::SymbolTable {
        swsec_obs::SymbolTable::from_labels(
            self.functions.iter().map(|(name, addr)| (name.clone(), *addr)),
            self.text_end(),
        )
    }

    /// Address of a function.
    ///
    /// # Errors
    ///
    /// Returns an error naming the function if it does not exist.
    pub fn function_addr(&self, name: &str) -> Result<u32, CompileError> {
        self.functions
            .get(name)
            .copied()
            .ok_or_else(|| cerr(format!("no function `{name}` in compiled program")))
    }

    /// Maps and copies the program into a machine: text `r-x`, data
    /// `rw-`, stack `rw-`, `sp`/`bp` at the stack top, `ip` at the
    /// entry point (when one exists).
    ///
    /// DEP is a property of the machine's memory enforcement; callers
    /// model the pre-DEP platform with
    /// [`Memory::set_enforce(false)`](swsec_vm::mem::Memory::set_enforce).
    ///
    /// # Errors
    ///
    /// Returns an error if segments overlap already-mapped memory.
    pub fn load(&self, m: &mut Machine) -> Result<(), CompileError> {
        let map = |m: &mut Machine, base: u32, len: usize, perm: Perm| {
            m.mem_mut()
                .map(base, len.max(1) as u32, perm)
                .map_err(|e| cerr(format!("load failed: {e}")))
        };
        map(m, self.text_base, self.text.len(), Perm::RX)?;
        m.mem_mut()
            .poke_bytes(self.text_base, &self.text)
            .map_err(|e| cerr(format!("load failed: {e}")))?;
        map(m, self.data_base, self.data.len(), Perm::RW)?;
        m.mem_mut()
            .poke_bytes(self.data_base, &self.data)
            .map_err(|e| cerr(format!("load failed: {e}")))?;
        map(m, self.layout.heap_base, self.layout.heap_size as usize, Perm::RW)?;
        let stack_base = self.layout.stack_top - self.layout.stack_size;
        map(m, stack_base, self.layout.stack_size as usize, Perm::RW)?;
        // Leave headroom above the initial stack pointer so overflows
        // that run past the frame overwrite mapped memory (and are then
        // caught by canaries or verdicts) instead of faulting at the
        // stack ceiling.
        m.set_reg(swsec_vm::isa::Reg::Sp, self.layout.stack_top - STACK_HEADROOM);
        m.set_reg(swsec_vm::isa::Reg::Bp, self.layout.stack_top - STACK_HEADROOM);
        if let Some(entry) = self.entry {
            m.set_ip(entry);
        }
        Ok(())
    }

    /// Writes the canary value into the canary cell (done by the loader
    /// at program start, so each run can have a fresh unpredictable
    /// canary).
    ///
    /// # Errors
    ///
    /// Returns an error if the program was compiled without canaries.
    pub fn install_canary(&self, m: &mut Machine, value: u32) -> Result<(), CompileError> {
        let addr = self
            .canary_addr
            .ok_or_else(|| cerr("program compiled without stack canaries"))?;
        m.mem_mut()
            .poke_bytes(addr, &value.to_le_bytes())
            .map_err(|e| cerr(format!("canary install failed: {e}")))
    }
}

const WORD: u32 = 4;

/// Bytes of mapped stack left above the initial stack pointer.
pub const STACK_HEADROOM: u32 = 256;

fn align4(n: u32) -> u32 {
    (n + 3) & !3
}

#[derive(Debug, Clone)]
enum Place {
    Local(FrameSlot),
    Param { offset: i32, ty: Type },
    Global(GlobalSlot),
    Function(u32Holder),
}

/// Function addresses are not known until assembly, so code references
/// them by label; externs are absolute.
#[derive(Debug, Clone)]
#[allow(non_camel_case_types)]
enum u32Holder {
    Label(String),
    Absolute(u32),
}

struct DataBuilder {
    base: u32,
    bytes: Vec<u8>,
}

impl DataBuilder {
    fn alloc(&mut self, size: u32, align: u32) -> u32 {
        let mut len = self.bytes.len() as u32;
        let rem = len % align;
        if rem != 0 {
            len += align - rem;
            self.bytes.resize(len as usize, 0);
        }
        let addr = self.base + len;
        self.bytes.resize((len + size) as usize, 0);
        addr
    }

    fn write(&mut self, addr: u32, data: &[u8]) {
        let off = (addr - self.base) as usize;
        self.bytes[off..off + data.len()].copy_from_slice(data);
    }
}

struct Codegen<'a> {
    unit: &'a Unit,
    opts: &'a CompileOptions,
    asm: String,
    data: DataBuilder,
    globals: BTreeMap<String, GlobalSlot>,
    functions_sigs: HashMap<String, sema::FnSig>,
    frames: BTreeMap<String, FrameLayout>,
    canary_addr: Option<u32>,
    cont_sp_addr: Option<u32>,
    cont_stack_range: Option<(u32, u32)>,
    heap_next_cell: u32,
    free_list_cell: u32,
    strings: HashMap<String, u32>,
    label_counter: usize,
    // Per-function state.
    scopes: Vec<HashMap<String, FrameSlot>>,
    params: HashMap<String, (i32, Type)>,
    current_fn: String,
    epilogue: String,
    break_stack: Vec<String>,
    continue_stack: Vec<String>,
}

impl<'a> Codegen<'a> {
    fn emit(&mut self, line: &str) {
        self.asm.push_str("    ");
        self.asm.push_str(line);
        self.asm.push('\n');
    }

    fn emit_label(&mut self, label: &str) {
        self.asm.push_str(label);
        self.asm.push_str(":\n");
    }

    fn fresh_label(&mut self, hint: &str) -> String {
        self.label_counter += 1;
        format!(".L{}_{}_{}", self.current_fn, hint, self.label_counter)
    }

    fn string_addr(&mut self, s: &str) -> u32 {
        if let Some(&addr) = self.strings.get(s) {
            return addr;
        }
        let addr = self.data.alloc(s.len() as u32 + 1, 1);
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.data.write(addr, &bytes);
        self.strings.insert(s.to_string(), addr);
        addr
    }

    fn resolve(&self, name: &str) -> Result<Place, CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some(slot) = scope.get(name) {
                return Ok(Place::Local(slot.clone()));
            }
        }
        if let Some((offset, ty)) = self.params.get(name) {
            return Ok(Place::Param {
                offset: *offset,
                ty: ty.clone(),
            });
        }
        if let Some(slot) = self.globals.get(name) {
            return Ok(Place::Global(slot.clone()));
        }
        if self.unit.function(name).map(|f| f.body.is_some()) == Some(true)
            || self.unit.function(name).is_some() && !self.opts.externs.contains_key(name)
        {
            return Ok(Place::Function(u32Holder::Label(name.to_string())));
        }
        if let Some(&addr) = self.opts.externs.get(name) {
            return Ok(Place::Function(u32Holder::Absolute(addr)));
        }
        Err(cerr(format!("unresolved symbol `{name}`")))
    }

    fn type_of(&self, e: &Expr) -> Result<Type, CompileError> {
        Ok(match e {
            Expr::IntLit(_) => Type::Int,
            Expr::StrLit(_) => Type::Ptr(Box::new(Type::Char)),
            Expr::Var(name) => match self.resolve(name)? {
                Place::Local(slot) => slot.ty,
                Place::Param { ty, .. } => ty,
                Place::Global(slot) => slot.ty,
                Place::Function(_) => {
                    let sig = self
                        .functions_sigs
                        .get(name)
                        .ok_or_else(|| cerr(format!("unknown function `{name}`")))?;
                    Type::FnPtr(Box::new(sig.ret.clone()), sig.params.clone())
                }
            },
            Expr::Assign { target, .. } => self.type_of(target)?,
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg | UnaryOp::Not => Type::Int,
                UnaryOp::Deref => match self.type_of(expr)?.decayed() {
                    Type::Ptr(inner) => *inner,
                    other => return Err(cerr(format!("cannot dereference {other}"))),
                },
                UnaryOp::Addr => Type::Ptr(Box::new(self.type_of(expr)?.decayed())),
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::Add | BinOp::Sub => {
                    let lt = self.type_of(lhs)?.decayed();
                    let rt = self.type_of(rhs)?.decayed();
                    if matches!(lt, Type::Ptr(_)) {
                        lt
                    } else if matches!(rt, Type::Ptr(_)) {
                        rt
                    } else {
                        Type::Int
                    }
                }
                _ => Type::Int,
            },
            Expr::Call { callee, .. } => match callee.as_ref() {
                Expr::Var(name) if sema::builtins().contains_key(name.as_str()) => {
                    sema::builtins()[name.as_str()].0.clone()
                }
                Expr::Var(name) if self.functions_sigs.contains_key(name) => {
                    self.functions_sigs[name].ret.clone()
                }
                other => match self.type_of(other)?.decayed() {
                    Type::FnPtr(ret, _) => *ret,
                    t => return Err(cerr(format!("{t} is not callable"))),
                },
            },
            Expr::Index { base, .. } => match self.type_of(base)?.decayed() {
                Type::Ptr(inner) => *inner,
                other => return Err(cerr(format!("cannot index {other}"))),
            },
            Expr::PostIncDec { target, .. } => self.type_of(target)?,
        })
    }

    /// Emits code leaving the *address* of an lvalue in `r0`.
    fn gen_addr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Var(name) => match self.resolve(name)? {
                Place::Local(slot) => self.emit(&format!("lea r0, [bp{:+}]", slot.offset)),
                Place::Param { offset, .. } => self.emit(&format!("lea r0, [bp{offset:+}]")),
                Place::Global(slot) => self.emit(&format!("movi r0, {:#x}", slot.addr)),
                Place::Function(_) => {
                    return Err(cerr(format!("cannot take the address of function `{name}`")))
                }
            },
            Expr::Index { base, index } => {
                let elem = match self.type_of(base)?.decayed() {
                    Type::Ptr(inner) => *inner,
                    other => return Err(cerr(format!("cannot index {other}"))),
                };
                // Base address (the decayed pointer value).
                self.gen_expr(base)?;
                self.emit("push r0");
                self.gen_expr(index)?;
                if self.opts.harden.bounds_checks {
                    if let Some(n) = self.static_array_len(base) {
                        let ok = self.fresh_label("bounds_ok");
                        self.emit(&format!("cmpi r0, {n}"));
                        self.emit(&format!("jb {ok}"));
                        self.emit(&format!("trap {}", trap::BOUNDS));
                        self.emit_label(&ok);
                    }
                }
                let size = elem.size();
                if size > 1 {
                    self.emit(&format!("movi r1, {size}"));
                    self.emit("mul r0, r1");
                }
                self.emit("mov r1, r0");
                self.emit("pop r0");
                self.emit("add r0, r1");
            }
            Expr::Unary {
                op: UnaryOp::Deref,
                expr,
            } => {
                self.gen_expr(expr)?;
            }
            other => return Err(cerr(format!("not an lvalue: {other:?}"))),
        }
        Ok(())
    }

    /// The static element count of `e` when it names an array whose size
    /// is known at compile time (used by the bounds-check pass).
    fn static_array_len(&self, e: &Expr) -> Option<u32> {
        if let Expr::Var(name) = e {
            let ty = match self.resolve(name).ok()? {
                Place::Local(slot) => slot.ty,
                Place::Global(slot) => slot.ty,
                _ => return None,
            };
            if let Type::Array(_, n) = ty {
                return Some(n as u32);
            }
        }
        None
    }

    /// The static *byte* size of the array `e` names, if known.
    fn static_array_bytes(&self, e: &Expr) -> Option<u32> {
        if let Expr::Var(name) = e {
            let ty = match self.resolve(name).ok()? {
                Place::Local(slot) => slot.ty,
                Place::Global(slot) => slot.ty,
                _ => return None,
            };
            if let Type::Array(..) = ty {
                return Some(ty.size());
            }
        }
        None
    }

    fn load_from_addr_in_r0(&mut self, ty: &Type) {
        if ty.is_byte() {
            self.emit("mov r1, r0");
            self.emit("loadb r0, [r1]");
        } else {
            self.emit("mov r1, r0");
            self.emit("load r0, [r1]");
        }
    }

    /// Emits code leaving the expression's value in `r0`.
    fn gen_expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::IntLit(v) => {
                self.emit(&format!("movi r0, {:#x}", *v as u32));
            }
            Expr::StrLit(s) => {
                let addr = self.string_addr(s);
                self.emit(&format!("movi r0, {addr:#x}"));
            }
            Expr::Var(name) => match self.resolve(name)? {
                Place::Local(slot) => match &slot.ty {
                    Type::Array(..) => self.emit(&format!("lea r0, [bp{:+}]", slot.offset)),
                    Type::Char => self.emit(&format!("loadb r0, [bp{:+}]", slot.offset)),
                    _ => self.emit(&format!("load r0, [bp{:+}]", slot.offset)),
                },
                Place::Param { offset, ty } => {
                    if ty.is_byte() {
                        self.emit(&format!("loadb r0, [bp{offset:+}]"));
                    } else {
                        self.emit(&format!("load r0, [bp{offset:+}]"));
                    }
                }
                Place::Global(slot) => match &slot.ty {
                    Type::Array(..) => self.emit(&format!("movi r0, {:#x}", slot.addr)),
                    Type::Char => {
                        self.emit(&format!("movi r1, {:#x}", slot.addr));
                        self.emit("loadb r0, [r1]");
                    }
                    _ => {
                        self.emit(&format!("movi r1, {:#x}", slot.addr));
                        self.emit("load r0, [r1]");
                    }
                },
                Place::Function(holder) => match holder {
                    u32Holder::Label(l) => self.emit(&format!("movi r0, {l}")),
                    u32Holder::Absolute(a) => self.emit(&format!("movi r0, {a:#x}")),
                },
            },
            Expr::Assign { target, value } => {
                let ty = self.type_of(target)?;
                self.gen_expr(value)?;
                self.emit("push r0");
                self.gen_addr(target)?;
                self.emit("mov r1, r0");
                self.emit("pop r0");
                if ty.is_byte() {
                    self.emit("storeb [r1], r0");
                } else {
                    self.emit("store [r1], r0");
                }
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    self.gen_expr(expr)?;
                    self.emit("mov r1, r0");
                    self.emit("movi r0, 0");
                    self.emit("sub r0, r1");
                }
                UnaryOp::Not => {
                    self.gen_expr(expr)?;
                    let set = self.fresh_label("not");
                    self.emit("cmpi r0, 0");
                    self.emit("movi r0, 1");
                    self.emit(&format!("jz {set}"));
                    self.emit("movi r0, 0");
                    self.emit_label(&set);
                }
                UnaryOp::Deref => {
                    let ty = self.type_of(e)?;
                    self.gen_expr(expr)?;
                    self.load_from_addr_in_r0(&ty);
                }
                UnaryOp::Addr => {
                    self.gen_addr(expr)?;
                }
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    let falsy = self.fresh_label("and_false");
                    let end = self.fresh_label("and_end");
                    self.gen_expr(lhs)?;
                    self.emit("cmpi r0, 0");
                    self.emit(&format!("jz {falsy}"));
                    self.gen_expr(rhs)?;
                    self.emit("cmpi r0, 0");
                    self.emit(&format!("jz {falsy}"));
                    self.emit("movi r0, 1");
                    self.emit(&format!("jmp {end}"));
                    self.emit_label(&falsy);
                    self.emit("movi r0, 0");
                    self.emit_label(&end);
                }
                BinOp::Or => {
                    let truthy = self.fresh_label("or_true");
                    let end = self.fresh_label("or_end");
                    self.gen_expr(lhs)?;
                    self.emit("cmpi r0, 0");
                    self.emit(&format!("jnz {truthy}"));
                    self.gen_expr(rhs)?;
                    self.emit("cmpi r0, 0");
                    self.emit(&format!("jnz {truthy}"));
                    self.emit("movi r0, 0");
                    self.emit(&format!("jmp {end}"));
                    self.emit_label(&truthy);
                    self.emit("movi r0, 1");
                    self.emit_label(&end);
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
                    self.gen_expr(lhs)?;
                    self.emit("push r0");
                    self.gen_expr(rhs)?;
                    self.emit("mov r1, r0");
                    self.emit("pop r0");
                    self.emit("cmp r0, r1");
                    let jcc = match op {
                        BinOp::Eq => "jz",
                        BinOp::Ne => "jnz",
                        BinOp::Lt => "jlt",
                        BinOp::Gt => "jgt",
                        BinOp::Le => "jle",
                        BinOp::Ge => "jge",
                        _ => unreachable!("comparison ops only"),
                    };
                    let yes = self.fresh_label("cmp");
                    self.emit("movi r0, 1");
                    self.emit(&format!("{jcc} {yes}"));
                    self.emit("movi r0, 0");
                    self.emit_label(&yes);
                }
                BinOp::Add | BinOp::Sub => {
                    // C pointer arithmetic: the integer operand is scaled
                    // by the element size; pointer difference yields an
                    // element count.
                    let lt = self.type_of(lhs)?.decayed();
                    let rt = self.type_of(rhs)?.decayed();
                    let elem_size = |t: &Type| -> u32 {
                        match t {
                            Type::Ptr(e) => e.size().max(1),
                            _ => 1,
                        }
                    };
                    self.gen_expr(lhs)?;
                    self.emit("push r0");
                    self.gen_expr(rhs)?;
                    let l_ptr = matches!(lt, Type::Ptr(_));
                    let r_ptr = matches!(rt, Type::Ptr(_));
                    if l_ptr && !r_ptr && elem_size(&lt) > 1 {
                        self.emit(&format!("movi r1, {}", elem_size(&lt)));
                        self.emit("mul r0, r1");
                    }
                    self.emit("mov r1, r0");
                    self.emit("pop r0");
                    if r_ptr && !l_ptr {
                        if *op == BinOp::Sub {
                            return Err(cerr("cannot subtract a pointer from an integer"));
                        }
                        if elem_size(&rt) > 1 {
                            self.emit(&format!("movi r2, {}", elem_size(&rt)));
                            self.emit("mul r0, r2");
                        }
                    }
                    self.emit(if *op == BinOp::Add { "add r0, r1" } else { "sub r0, r1" });
                    if l_ptr && r_ptr && *op == BinOp::Sub && elem_size(&lt) > 1 {
                        self.emit(&format!("movi r1, {}", elem_size(&lt)));
                        self.emit("divs r0, r1");
                    }
                }
                _ => {
                    self.gen_expr(lhs)?;
                    self.emit("push r0");
                    self.gen_expr(rhs)?;
                    self.emit("mov r1, r0");
                    self.emit("pop r0");
                    let mnem = match op {
                        BinOp::Mul => "mul",
                        BinOp::Div => "divs",
                        BinOp::Mod => "mods",
                        BinOp::Shl => "shl",
                        BinOp::Shr => "sar",
                        BinOp::BitAnd => "and",
                        BinOp::BitOr => "or",
                        BinOp::BitXor => "xor",
                        _ => unreachable!("handled above"),
                    };
                    self.emit(&format!("{mnem} r0, r1"));
                }
            },
            Expr::Call { callee, args } => {
                self.gen_call(callee, args)?;
            }
            Expr::Index { .. } => {
                let ty = self.type_of(e)?;
                self.gen_addr(e)?;
                match ty {
                    Type::Array(..) => {} // nested arrays decay to the address
                    ty => self.load_from_addr_in_r0(&ty),
                }
            }
            Expr::PostIncDec { target, inc } => {
                let ty = self.type_of(target)?;
                // Pointers step by their element size, as in C.
                let step: u32 = match ty.decayed() {
                    Type::Ptr(e) => e.size().max(1),
                    _ => 1,
                };
                self.gen_addr(target)?;
                self.emit("mov r1, r0");
                if ty.is_byte() {
                    self.emit("loadb r0, [r1]");
                } else {
                    self.emit("load r0, [r1]");
                }
                self.emit("mov r2, r0");
                self.emit(&format!(
                    "addi r2, {:#x}",
                    if *inc { step } else { step.wrapping_neg() }
                ));
                if ty.is_byte() {
                    self.emit("storeb [r1], r2");
                } else {
                    self.emit("store [r1], r2");
                }
            }
        }
        Ok(())
    }

    fn gen_call(&mut self, callee: &Expr, args: &[Expr]) -> Result<(), CompileError> {
        if let Expr::Var(name) = callee {
            match name.as_str() {
                "read" | "write" => {
                    // Evaluate fd, buf, len left to right onto the stack.
                    for a in args {
                        self.gen_expr(a)?;
                        self.emit("push r0");
                    }
                    self.emit("pop r2");
                    self.emit("pop r1");
                    self.emit("pop r0");
                    if name == "read" && self.opts.harden.bounds_checks {
                        if let Some(bytes) = self.static_array_bytes(&args[1]) {
                            let ok = self.fresh_label("readlen_ok");
                            self.emit(&format!("cmpi r2, {}", bytes + 1));
                            self.emit(&format!("jb {ok}"));
                            self.emit(&format!("trap {}", trap::BOUNDS));
                            self.emit_label(&ok);
                        }
                    }
                    self.emit(&format!(
                        "sys {}",
                        if name == "read" {
                            swsec_vm::isa::sys::READ
                        } else {
                            swsec_vm::isa::sys::WRITE
                        }
                    ));
                    return Ok(());
                }
                "exit" => {
                    self.gen_expr(&args[0])?;
                    self.emit(&format!("sys {}", swsec_vm::isa::sys::EXIT));
                    return Ok(());
                }
                "rand" => {
                    self.emit(&format!("sys {}", swsec_vm::isa::sys::RAND));
                    return Ok(());
                }
                "alloc" | "free" => {
                    self.gen_expr(&args[0])?;
                    self.emit("push r0");
                    self.emit(&format!("call __{name}"));
                    self.emit("addi sp, 4");
                    return Ok(());
                }
                _ => {}
            }
        }
        // Ordinary call: push arguments right-to-left so that the first
        // argument ends up at [bp+8] in the callee.
        for a in args.iter().rev() {
            self.gen_expr(a)?;
            self.emit("push r0");
        }
        let direct: Option<u32Holder> = match callee {
            Expr::Var(name) => match self.resolve(name)? {
                Place::Function(holder) => Some(holder),
                _ => None,
            },
            _ => None,
        };
        match direct {
            Some(u32Holder::Label(label)) => self.emit(&format!("call {label}")),
            Some(u32Holder::Absolute(addr)) => {
                if self.opts.harden.strict_reentry {
                    self.emit(&format!("movi r0, {addr:#x}"));
                    self.emit_strict_outcall();
                } else {
                    self.emit(&format!("call {addr:#x}"));
                }
            }
            None => {
                // Indirect call through a function pointer.
                self.gen_expr(callee)?;
                if self.opts.harden.pma_fnptr_check {
                    // §IV-B: the pointer must point OUTSIDE this module's
                    // code, otherwise an attacker can aim it at an interior
                    // instruction (the Figure 4 exploit).
                    let bad = self.fresh_label("fnptr_bad");
                    let ok = self.fresh_label("fnptr_ok");
                    self.emit("movi r1, __text_start");
                    self.emit("cmp r0, r1");
                    self.emit(&format!("jb {ok}"));
                    self.emit("movi r1, __text_end");
                    self.emit("cmp r0, r1");
                    self.emit(&format!("jae {ok}"));
                    self.emit_label(&bad);
                    self.emit(&format!("trap {}", trap::FNPTR));
                    self.emit_label(&ok);
                }
                if self.opts.harden.strict_reentry {
                    self.emit_strict_outcall();
                } else {
                    self.emit("callr r0");
                }
            }
        }
        if !args.is_empty() {
            self.emit(&format!("addi sp, {:#x}", WORD * args.len() as u32));
        }
        Ok(())
    }

    /// Emits the strict-re-entry out-call sequence. On entry the call
    /// target is in `r0` and the arguments are already on the shared
    /// stack. The continuation (the address following the call site)
    /// is saved on the module's protected continuation stack; the
    /// external code receives the module's *return entry point* as its
    /// return address, so control can only re-enter through that
    /// designated entry.
    fn emit_strict_outcall(&mut self) {
        let cont_sp = self.cont_sp_addr.expect("strict mode allocates cells");
        let (_, stack_end) = self.cont_stack_range.expect("strict mode allocates cells");
        let cont = self.fresh_label("cont");
        let ok = self.fresh_label("cont_ok");
        // Push the continuation onto the internal stack (with overflow
        // check: a module driven into unbounded out-call recursion must
        // fail closed, not overwrite its own data).
        self.emit(&format!("movi r1, {cont_sp:#x}"));
        self.emit("load r2, [r1]");
        self.emit(&format!("cmpi r2, {stack_end:#x}"));
        self.emit(&format!("jb {ok}"));
        self.emit(&format!("trap {}", trap::ASSERT));
        self.emit_label(&ok);
        self.emit(&format!("movi r3, {cont}"));
        self.emit("store [r2], r3");
        self.emit("addi r2, 4");
        self.emit("store [r1], r2");
        // Hand the external code our return entry point as its return
        // address, then leave the module.
        self.emit("movi r1, __reentry");
        self.emit("push r1");
        self.emit("jmpr r0");
        self.emit_label(&cont);
    }

    /// Emits the module's single return-entry stub: pops the topmost
    /// continuation off the protected continuation stack and jumps to
    /// it. An attacker entering here without a pending out-call hits
    /// the underflow check.
    fn emit_reentry_stub(&mut self) {
        let cont_sp = self.cont_sp_addr.expect("strict mode allocates cells");
        let (stack_start, _) = self.cont_stack_range.expect("strict mode allocates cells");
        let ok = self.fresh_label("reentry_ok");
        self.emit_label("__reentry");
        // r0 carries the external call's return value; r1-r3 are scratch.
        self.emit(&format!("movi r1, {cont_sp:#x}"));
        self.emit("load r2, [r1]");
        self.emit(&format!("cmpi r2, {:#x}", stack_start + 1));
        self.emit(&format!("jae {ok}"));
        self.emit(&format!("trap {}", trap::ASSERT));
        self.emit_label(&ok);
        self.emit(&format!("addi r2, {:#x}", (-4i32) as u32));
        self.emit("store [r1], r2");
        self.emit("load r3, [r2]");
        self.emit("jmpr r3");
    }

    /// Emits the heap runtime: `__alloc` (first-fit over a LIFO free
    /// list, falling back to a bump pointer; returns null on
    /// exhaustion) and `__free` (pushes the chunk onto the free list,
    /// **without** any validity checking — dangling and double frees
    /// are the caller's undefined behaviour, exactly as in classic C
    /// allocators).
    ///
    /// Chunk layout: `[total_size:u32][payload …]`; when free, the
    /// first payload word holds the next-free link.
    fn emit_heap_runtime(&mut self, layout: LayoutConfig) {
        self.current_fn = "__heap".to_string();
        let heap_next = self.heap_next_cell;
        let free_list = self.free_list_cell;
        let heap_end = layout.heap_base + layout.heap_size;
        let asm = format!(
            "__alloc:\n\
             enter 0\n\
             load r1, [bp+8]\n\
             addi r1, 11\n\
             movi r2, 0xfffffff8\n\
             and r1, r2\n\
             movi r2, {free_list:#x}\n\
             .L__alloc_find:\n\
             load r3, [r2]\n\
             cmpi r3, 0\n\
             jz .L__alloc_new\n\
             load r4, [r3]\n\
             cmp r4, r1\n\
             jae .L__alloc_take\n\
             lea r2, [r3+4]\n\
             jmp .L__alloc_find\n\
             .L__alloc_take:\n\
             load r4, [r3+4]\n\
             store [r2], r4\n\
             lea r0, [r3+4]\n\
             leave\n\
             ret\n\
             .L__alloc_new:\n\
             movi r2, {heap_next:#x}\n\
             load r3, [r2]\n\
             mov r4, r3\n\
             add r4, r1\n\
             cmpi r4, {heap_end:#x}\n\
             jb .L__alloc_ok\n\
             movi r0, 0\n\
             leave\n\
             ret\n\
             .L__alloc_ok:\n\
             store [r2], r4\n\
             store [r3], r1\n\
             lea r0, [r3+4]\n\
             leave\n\
             ret\n\
             __free:\n\
             enter 0\n\
             load r1, [bp+8]\n\
             cmpi r1, 0\n\
             jz .L__free_done\n\
             lea r1, [r1-4]\n\
             movi r2, {free_list:#x}\n\
             load r3, [r2]\n\
             store [r1+4], r3\n\
             store [r2], r1\n\
             .L__free_done:\n\
             leave\n\
             ret\n"
        );
        let quarantine_asm = "\
__free:\n\
    enter 0\n\
    leave\n\
    ret\n";
        if self.opts.harden.heap_quarantine {
            // Replace __free with the quarantine variant: the chunk is
            // never recycled (and the free-list link is never written,
            // so freed payloads keep their stale contents without ever
            // being handed out again).
            let start = asm.find("__free:").expect("stub present");
            self.asm.push_str(&asm[..start]);
            self.asm.push_str(quarantine_asm);
        } else {
            self.asm.push_str(&asm);
        }
    }

    fn gen_stmt(&mut self, s: &Stmt, alloc: &mut FrameAlloc) -> Result<(), CompileError> {
        match s {
            Stmt::Decl { name, ty, init } => {
                let slot = alloc.allocate(name, ty);
                self.scopes
                    .last_mut()
                    .expect("inside a function")
                    .insert(name.clone(), slot.clone());
                if let Some(init) = init {
                    self.gen_expr(init)?;
                    if ty.is_byte() {
                        self.emit(&format!("storeb [bp{:+}], r0", slot.offset));
                    } else {
                        self.emit(&format!("store [bp{:+}], r0", slot.offset));
                    }
                }
            }
            Stmt::Expr(e) => {
                self.gen_expr(e)?;
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let else_label = self.fresh_label("else");
                let end = self.fresh_label("endif");
                self.gen_expr(cond)?;
                self.emit("cmpi r0, 0");
                self.emit(&format!("jz {else_label}"));
                self.gen_stmt(then_branch, alloc)?;
                self.emit(&format!("jmp {end}"));
                self.emit_label(&else_label);
                if let Some(e) = else_branch {
                    self.gen_stmt(e, alloc)?;
                }
                self.emit_label(&end);
            }
            Stmt::While { cond, body } => {
                let head = self.fresh_label("while");
                let end = self.fresh_label("endwhile");
                self.emit_label(&head);
                self.gen_expr(cond)?;
                self.emit("cmpi r0, 0");
                self.emit(&format!("jz {end}"));
                self.break_stack.push(end.clone());
                self.continue_stack.push(head.clone());
                self.gen_stmt(body, alloc)?;
                self.break_stack.pop();
                self.continue_stack.pop();
                self.emit(&format!("jmp {head}"));
                self.emit_label(&end);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.gen_stmt(init, alloc)?;
                }
                let head = self.fresh_label("for");
                let step_label = self.fresh_label("forstep");
                let end = self.fresh_label("endfor");
                self.emit_label(&head);
                if let Some(cond) = cond {
                    self.gen_expr(cond)?;
                    self.emit("cmpi r0, 0");
                    self.emit(&format!("jz {end}"));
                }
                self.break_stack.push(end.clone());
                self.continue_stack.push(step_label.clone());
                self.gen_stmt(body, alloc)?;
                self.break_stack.pop();
                self.continue_stack.pop();
                self.emit_label(&step_label);
                if let Some(step) = step {
                    self.gen_expr(step)?;
                }
                self.emit(&format!("jmp {head}"));
                self.emit_label(&end);
                self.scopes.pop();
            }
            Stmt::Return(value) => {
                if let Some(v) = value {
                    self.gen_expr(v)?;
                }
                let label = self.epilogue.clone();
                self.emit(&format!("jmp {label}"));
            }
            Stmt::Break => {
                let label = self
                    .break_stack
                    .last()
                    .ok_or_else(|| cerr("break outside loop"))?
                    .clone();
                self.emit(&format!("jmp {label}"));
            }
            Stmt::Continue => {
                let label = self
                    .continue_stack
                    .last()
                    .ok_or_else(|| cerr("continue outside loop"))?
                    .clone();
                self.emit(&format!("jmp {label}"));
            }
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.gen_stmt(s, alloc)?;
                }
                self.scopes.pop();
            }
        }
        Ok(())
    }

    fn gen_function(&mut self, f: &Function) -> Result<(), CompileError> {
        let body = match &f.body {
            Some(b) => b,
            None => return Ok(()),
        };
        self.current_fn = f.name.clone();
        self.epilogue = format!(".L{}_epilogue", f.name);
        self.scopes = vec![HashMap::new()];
        self.params = HashMap::new();
        let mut layout = FrameLayout::default();
        for (i, p) in f.params.iter().enumerate() {
            let offset = 8 + 4 * i as i32;
            self.params.insert(p.name.clone(), (offset, p.ty.clone()));
            layout.params.push((p.name.clone(), offset));
        }
        let canary = self.opts.harden.stack_canary;
        let mut alloc = FrameAlloc::new(canary, frame_locals_size(body));
        layout.frame_size = alloc.frame_size;
        layout.canary_offset = canary.then_some(-4);

        self.emit_label(&f.name);
        self.emit(&format!("enter {:#x}", alloc.frame_size));
        if canary {
            let addr = self.canary_addr.expect("canary cell allocated");
            self.emit(&format!("movi r1, {addr:#x}"));
            self.emit("load r1, [r1]");
            self.emit("store [bp-4], r1");
        }
        for s in body {
            self.gen_stmt(s, &mut alloc)?;
        }
        // Fall-through return (no value): land on the epilogue.
        let epi = self.epilogue.clone();
        self.emit_label(&epi);
        if canary {
            let addr = self.canary_addr.expect("canary cell allocated");
            let ok = self.fresh_label("canary_ok");
            self.emit(&format!("movi r1, {addr:#x}"));
            self.emit("load r1, [r1]");
            self.emit("load r2, [bp-4]");
            self.emit("cmp r1, r2");
            self.emit(&format!("jz {ok}"));
            self.emit(&format!("trap {}", trap::CANARY));
            self.emit_label(&ok);
        }
        if self.opts.harden.scrub_registers {
            for r in ["r1", "r2", "r3", "r4", "r5", "r6", "r7"] {
                self.emit(&format!("movi {r}, 0"));
            }
        }
        self.emit("leave");
        self.emit("ret");
        layout.locals = alloc.recorded;
        self.frames.insert(f.name.clone(), layout);
        Ok(())
    }
}

/// Allocates frame slots top-down below the (optional) canary.
struct FrameAlloc {
    next: i32,
    frame_size: u32,
    recorded: Vec<(String, FrameSlot)>,
}

impl FrameAlloc {
    fn new(canary: bool, locals_size: u32) -> FrameAlloc {
        let reserve = if canary { 4 } else { 0 };
        FrameAlloc {
            next: -(reserve as i32),
            frame_size: locals_size + reserve,
            recorded: Vec::new(),
        }
    }

    fn allocate(&mut self, name: &str, ty: &Type) -> FrameSlot {
        let size = align4(ty.size().max(1)) as i32;
        self.next -= size;
        let slot = FrameSlot {
            offset: self.next,
            ty: ty.clone(),
        };
        self.recorded.push((name.to_string(), slot.clone()));
        slot
    }
}

fn frame_locals_size(stmts: &[Stmt]) -> u32 {
    let mut total = 0u32;
    for s in stmts {
        total += stmt_locals_size(s);
    }
    total
}

fn stmt_locals_size(s: &Stmt) -> u32 {
    match s {
        Stmt::Decl { ty, .. } => align4(ty.size().max(1)),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            stmt_locals_size(then_branch)
                + else_branch.as_ref().map(|e| stmt_locals_size(e)).unwrap_or(0)
        }
        Stmt::While { body, .. } => stmt_locals_size(body),
        Stmt::For { init, body, .. } => {
            init.as_ref().map(|i| stmt_locals_size(i)).unwrap_or(0) + stmt_locals_size(body)
        }
        Stmt::Block(stmts) => frame_locals_size(stmts),
        _ => 0,
    }
}

/// Compiles a checked translation unit to a loadable program.
///
/// # Errors
///
/// Returns a [`CompileError`] wrapping semantic errors, unresolved
/// externs, or (never expected) assembler failures on generated code.
///
/// # Examples
///
/// ```
/// use swsec_minc::{compile, parse, CompileOptions};
/// use swsec_vm::prelude::*;
///
/// let unit = parse("void main() { exit(7); }")?;
/// let program = compile(&unit, &CompileOptions::default())?;
/// let mut m = Machine::new();
/// program.load(&mut m)?;
/// assert_eq!(m.run(1_000), RunOutcome::Halted(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(unit: &Unit, opts: &CompileOptions) -> Result<CompiledProgram, CompileError> {
    sema::check(unit)?;
    let layout = opts.layout.0;
    let mut data = DataBuilder {
        base: layout.data_base,
        bytes: Vec::new(),
    };
    // Canary cell first so its address is stable.
    let canary_addr = opts.harden.stack_canary.then(|| data.alloc(4, 4));
    // Heap allocator state: bump pointer and free-list head. The
    // allocator deliberately reuses freed chunks LIFO, like a classic
    // malloc — the substrate of use-after-free exploitation.
    let heap_next_cell = data.alloc(4, 4);
    data.write(heap_next_cell, &layout.heap_base.to_le_bytes());
    let free_list_cell = data.alloc(4, 4);
    // Strict-re-entry continuation stack (depth 64) and its pointer.
    let (cont_sp_addr, cont_stack_range) = if opts.harden.strict_reentry {
        let sp_cell = data.alloc(4, 4);
        let stack_start = data.alloc(4 * 64, 4);
        data.write(sp_cell, &stack_start.to_le_bytes());
        (Some(sp_cell), Some((stack_start, stack_start + 4 * 64)))
    } else {
        (None, None)
    };

    // Globals.
    let mut globals = BTreeMap::new();
    for g in &unit.globals {
        let size = g.ty.size().max(1);
        let addr = data.alloc(size, if g.ty.is_byte() { 1 } else { 4 });
        match &g.init {
            Some(GlobalInit::Int(v)) => {
                if g.ty.is_byte() {
                    data.write(addr, &[*v as u8]);
                } else {
                    data.write(addr, &(*v as u32).to_le_bytes());
                }
            }
            Some(GlobalInit::Str(s)) => {
                let mut bytes = s.as_bytes().to_vec();
                bytes.push(0);
                data.write(addr, &bytes);
            }
            None => {}
        }
        globals.insert(
            g.name.clone(),
            GlobalSlot {
                addr,
                ty: g.ty.clone(),
            },
        );
    }

    let functions_sigs: HashMap<String, sema::FnSig> = unit
        .functions
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                sema::FnSig {
                    ret: f.ret.clone(),
                    params: f.params.iter().map(|p| p.ty.clone()).collect(),
                },
            )
        })
        .collect();

    let mut cg = Codegen {
        unit,
        opts,
        asm: format!(".org {:#x}\n__text_start:\n", layout.text_base),
        data,
        globals,
        functions_sigs,
        frames: BTreeMap::new(),
        canary_addr,
        cont_sp_addr,
        cont_stack_range,
        heap_next_cell,
        free_list_cell,
        strings: HashMap::new(),
        label_counter: 0,
        scopes: Vec::new(),
        params: HashMap::new(),
        current_fn: String::new(),
        epilogue: String::new(),
        break_stack: Vec::new(),
        continue_stack: Vec::new(),
    };

    if !opts.no_start {
        let main = unit
            .function("main")
            .ok_or_else(|| cerr("program has no `main` function"))?;
        cg.emit_label("_start");
        cg.emit("call main");
        if main.ret == Type::Void {
            cg.emit("movi r0, 0");
        }
        cg.emit(&format!("sys {}", swsec_vm::isa::sys::EXIT));
    }

    if opts.harden.strict_reentry {
        cg.current_fn = "__module".to_string();
        cg.emit_reentry_stub();
    }
    cg.emit_heap_runtime(layout);
    for f in &unit.functions {
        // Skip extern declarations that are satisfied by a later body.
        if f.body.is_none() {
            if !opts.externs.contains_key(&f.name)
                && !unit
                    .functions
                    .iter()
                    .any(|other| other.name == f.name && other.body.is_some())
            {
                return Err(cerr(format!(
                    "extern function `{}` has no resolved address",
                    f.name
                )));
            }
            continue;
        }
        cg.gen_function(f)?;
    }
    cg.asm.push_str("__text_end:\n");

    let assembled = swsec_asm::assemble(&cg.asm)
        .map_err(|e| cerr(format!("internal: generated assembly failed: {e}")))?;
    let functions = unit
        .functions
        .iter()
        .filter(|f| f.body.is_some())
        .map(|f| {
            let addr = assembled.labels[&f.name];
            (f.name.clone(), addr)
        })
        .collect();
    let exports = unit
        .functions
        .iter()
        .filter(|f| f.body.is_some() && !f.is_static)
        .map(|f| f.name.clone())
        .collect();
    Ok(CompiledProgram {
        text_base: layout.text_base,
        text: assembled.bytes,
        data_base: layout.data_base,
        data: cg.data.bytes,
        entry: if opts.no_start {
            None
        } else {
            Some(assembled.labels["_start"])
        },
        functions,
        exports,
        globals: cg.globals,
        frames: cg.frames,
        canary_addr,
        reentry_addr: opts
            .harden
            .strict_reentry
            .then(|| assembled.labels["__reentry"]),
        listing: cg.asm,
        layout,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use swsec_vm::cpu::{Fault, RunOutcome};
    use swsec_vm::isa::trap;

    fn run_src(src: &str) -> RunOutcome {
        run_with(src, &CompileOptions::default(), &[])
    }

    fn run_with(src: &str, opts: &CompileOptions, input: &[u8]) -> RunOutcome {
        let unit = parse(src).unwrap();
        let prog = compile(&unit, opts).unwrap();
        let mut m = Machine::new();
        prog.load(&mut m).unwrap();
        if let Some(addr) = prog.canary_addr {
            let _ = addr;
            prog.install_canary(&mut m, 0xdead_4321).unwrap();
        }
        m.io_mut().feed_input(0, input);
        m.run(1_000_000)
    }

    fn output_of(src: &str, input: &[u8]) -> Vec<u8> {
        let unit = parse(src).unwrap();
        let prog = compile(&unit, &CompileOptions::default()).unwrap();
        let mut m = Machine::new();
        prog.load(&mut m).unwrap();
        m.io_mut().feed_input(0, input);
        assert!(m.run(1_000_000).is_halted());
        m.io().output(1).to_vec()
    }

    #[test]
    fn exit_code_flows_from_main() {
        assert_eq!(run_src("int main() { return 42; }"), RunOutcome::Halted(42));
    }

    #[test]
    fn symbol_table_resolves_function_bodies() {
        let unit = parse(
            "int helper(int x) { return x + 1; }\n\
             int main() { return helper(41); }",
        )
        .unwrap();
        let prog = compile(&unit, &CompileOptions::default()).unwrap();
        let table = prog.symbol_table();
        assert_eq!(table.len(), 2);
        for (name, addr) in &prog.functions {
            assert_eq!(table.resolve(*addr), Some(name.as_str()), "{name}");
        }
        assert_eq!(table.resolve(prog.text_end()), None);
    }

    #[test]
    fn void_main_exits_zero() {
        assert_eq!(run_src("void main() { }"), RunOutcome::Halted(0));
    }

    #[test]
    fn arithmetic_expressions() {
        assert_eq!(
            run_src("int main() { return (1 + 2 * 3 - 4) / 3 + 10 % 3; }"),
            RunOutcome::Halted(2) // (7-4)/3=1, 10%3=1 → 2
        );
    }

    #[test]
    fn signed_division_and_modulo() {
        assert_eq!(
            run_src("int main() { return -7 / 2 + 10; }"),
            RunOutcome::Halted(7) // -3 + 10
        );
        assert_eq!(
            run_src("int main() { return -7 % 3 + 10; }"),
            RunOutcome::Halted(9) // -1 + 10
        );
    }

    #[test]
    fn comparisons_yield_zero_one() {
        assert_eq!(
            run_src("int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }"),
            RunOutcome::Halted(4)
        );
    }

    #[test]
    fn signed_comparison_with_negatives() {
        assert_eq!(
            run_src("int main() { return -1 < 1; }"),
            RunOutcome::Halted(1)
        );
    }

    #[test]
    fn short_circuit_evaluation() {
        // Division by zero on the right of && must not be evaluated.
        assert_eq!(
            run_src("int main() { int z = 0; return (0 && (1 / z)) + ((1 || (1 / z)) * 2); }"),
            RunOutcome::Halted(2)
        );
    }

    #[test]
    fn locals_params_and_calls() {
        assert_eq!(
            run_src(
                "int add3(int a, int b, int c) { return a + b + c; }\n\
                 int main() { int x = 10; return add3(x, 20, 12); }"
            ),
            RunOutcome::Halted(42)
        );
    }

    #[test]
    fn recursion_factorial() {
        assert_eq!(
            run_src(
                "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\n\
                 int main() { return fact(5); }"
            ),
            RunOutcome::Halted(120)
        );
    }

    #[test]
    fn globals_with_initializers() {
        assert_eq!(
            run_src(
                "int counter = 40;\n\
                 int main() { counter = counter + 2; return counter; }"
            ),
            RunOutcome::Halted(42)
        );
    }

    #[test]
    fn global_char_array_with_string_init() {
        assert_eq!(
            output_of(
                "char msg[16] = \"hello\";\n\
                 void main() { write(1, msg, 5); }",
                &[]
            ),
            b"hello"
        );
    }

    #[test]
    fn while_loop_sums() {
        assert_eq!(
            run_src(
                "int main() { int i = 0; int s = 0; while (i < 10) { s = s + i; i++; } return s; }"
            ),
            RunOutcome::Halted(45)
        );
    }

    #[test]
    fn for_loop_with_break_continue() {
        assert_eq!(
            run_src(
                "int main() { int s = 0; for (int i = 0; i < 100; i++) { \
                   if (i % 2 == 1) continue; if (i >= 10) break; s = s + i; } return s; }"
            ),
            RunOutcome::Halted(20) // 0+2+4+6+8
        );
    }

    #[test]
    fn post_increment_returns_old_value() {
        assert_eq!(
            run_src("int main() { int i = 5; int j = i++; return j * 10 + i; }"),
            RunOutcome::Halted(56)
        );
    }

    #[test]
    fn post_decrement_like_tries_left() {
        assert_eq!(
            run_src("int t = 3; int main() { t--; t--; return t; }"),
            RunOutcome::Halted(1)
        );
    }

    #[test]
    fn arrays_index_read_write() {
        assert_eq!(
            run_src(
                "int main() { int a[4]; a[0] = 10; a[1] = 20; a[2] = a[0] + a[1]; return a[2]; }"
            ),
            RunOutcome::Halted(30)
        );
    }

    #[test]
    fn char_arrays_are_byte_packed() {
        assert_eq!(
            run_src(
                "int main() { char b[4]; b[0] = 1; b[1] = 2; b[2] = 3; b[3] = 4; \
                 return b[0] + b[1] * 10 + b[2] * 100 + b[3] * 1000; }"
            ),
            RunOutcome::Halted(4321)
        );
    }

    #[test]
    fn pointers_and_address_of() {
        assert_eq!(
            run_src("int main() { int x = 5; int *p = &x; *p = 7; return x; }"),
            RunOutcome::Halted(7)
        );
    }

    #[test]
    fn pointer_into_array_via_index() {
        assert_eq!(
            run_src(
                "int main() { int a[3]; a[0] = 1; a[1] = 2; a[2] = 3; \
                 int *p = a; return p[2]; }"
            ),
            RunOutcome::Halted(3)
        );
    }

    #[test]
    fn string_literals_are_addressable() {
        assert_eq!(output_of("void main() { write(1, \"hi\", 2); }", &[]), b"hi");
    }

    #[test]
    fn read_write_echo() {
        assert_eq!(
            output_of(
                "void main() { char buf[8]; int n = read(0, buf, 8); write(1, buf, n); }",
                b"ping"
            ),
            b"ping"
        );
    }

    #[test]
    fn function_pointer_call() {
        assert_eq!(
            run_src(
                "int forty_two() { return 42; }\n\
                 int call_it(int (*f)()) { return f(); }\n\
                 int main() { return call_it(forty_two); }"
            ),
            RunOutcome::Halted(42)
        );
    }

    #[test]
    fn figure1_frame_layout_matches_paper() {
        let unit = parse(
            "void get_request(int fd, char buf[]) { read(fd, buf, 16); }\n\
             void process(int fd) { char buf[16]; get_request(fd, buf); }\n\
             void main() { int fd = 1; process(fd); }",
        )
        .unwrap();
        let prog = compile(&unit, &CompileOptions::default()).unwrap();
        let frame = &prog.frames["process"];
        // buf occupies [bp-16, bp) — immediately below the saved bp, as
        // in Figure 1(c).
        let (name, slot) = &frame.locals[0];
        assert_eq!(name, "buf");
        assert_eq!(slot.offset, -16);
        assert_eq!(frame.frame_size, 16);
        // Parameters start at bp+8.
        assert_eq!(frame.params[0], ("fd".to_string(), 8));
    }

    #[test]
    fn overflow_without_protection_corrupts_return_address() {
        // The §III-B stack smash: read 24 bytes into a 16-byte buffer;
        // bytes 16..20 hit the saved bp, 20..24 the return address.
        let src = "void f(int fd) { char buf[16]; read(fd, buf, 24); }\n\
                   void main() { f(0); }";
        let mut input = vec![b'A'; 20];
        input.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        let outcome = run_with(src, &CompileOptions::default(), &input);
        // Execution jumps to 0xdeadbeef — unmapped — and faults there.
        match outcome {
            RunOutcome::Fault(Fault::Mem(e)) => assert_eq!(e.addr, 0xdead_beef),
            other => panic!("expected wild jump fault, got {other:?}"),
        }
    }

    #[test]
    fn canary_detects_the_same_overflow() {
        let src = "void f(int fd) { char buf[16]; read(fd, buf, 28); }\n\
                   void main() { f(0); }";
        let mut opts = CompileOptions::default();
        opts.harden.stack_canary = true;
        let mut input = vec![b'A'; 24];
        input.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        let outcome = run_with(src, &opts, &input);
        assert!(
            matches!(
                outcome,
                RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::CANARY
            ),
            "expected canary trap, got {outcome:?}"
        );
    }

    #[test]
    fn canary_is_transparent_to_honest_runs() {
        let src = "int add(int a, int b) { char buf[8]; buf[0] = 1; return a + b + buf[0]; }\n\
                   int main() { return add(20, 21); }";
        let mut opts = CompileOptions::default();
        opts.harden.stack_canary = true;
        assert_eq!(run_with(src, &opts, &[]), RunOutcome::Halted(42));
    }

    #[test]
    fn bounds_check_traps_oob_index() {
        let src = "int main() { int a[4]; int i = 5; a[i] = 1; return 0; }";
        let mut opts = CompileOptions::default();
        opts.harden.bounds_checks = true;
        let outcome = run_with(src, &opts, &[]);
        assert!(
            matches!(
                outcome,
                RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::BOUNDS
            ),
            "got {outcome:?}"
        );
    }

    #[test]
    fn bounds_check_traps_negative_index() {
        let src = "int main() { int a[4]; int i = -1; a[i] = 1; return 0; }";
        let mut opts = CompileOptions::default();
        opts.harden.bounds_checks = true;
        let outcome = run_with(src, &opts, &[]);
        assert!(matches!(
            outcome,
            RunOutcome::Fault(Fault::SoftwareTrap { .. })
        ));
    }

    #[test]
    fn bounds_check_traps_oversized_read() {
        let src = "void main() { char buf[16]; read(0, buf, 32); }";
        let mut opts = CompileOptions::default();
        opts.harden.bounds_checks = true;
        let outcome = run_with(src, &opts, b"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
        assert!(matches!(
            outcome,
            RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::BOUNDS
        ));
    }

    #[test]
    fn bounds_check_allows_in_bounds_accesses() {
        let src = "int main() { int a[4]; for (int i = 0; i < 4; i++) a[i] = i; \
                   char b[8]; read(0, b, 8); return a[3]; }";
        let mut opts = CompileOptions::default();
        opts.harden.bounds_checks = true;
        assert_eq!(run_with(src, &opts, b"12345678"), RunOutcome::Halted(3));
    }

    #[test]
    fn extern_functions_resolve_to_given_addresses() {
        // Compile a callee at one base, then a caller linking to it.
        let callee_unit = parse("int answer() { return 42; }").unwrap();
        let mut callee_opts = CompileOptions {
            no_start: true,
            ..CompileOptions::default()
        };
        callee_opts.layout.0.text_base = 0x0900_0000;
        callee_opts.layout.0.data_base = 0x0910_0000;
        let callee = compile(&callee_unit, &callee_opts).unwrap();

        let caller_unit =
            parse("extern int answer();\nint main() { return answer(); }").unwrap();
        let mut caller_opts = CompileOptions::default();
        caller_opts
            .externs
            .insert("answer".into(), callee.function_addr("answer").unwrap());
        let caller = compile(&caller_unit, &caller_opts).unwrap();

        let mut m = Machine::new();
        caller.load(&mut m).unwrap();
        m.mem_mut()
            .map(callee.text_base, callee.text.len() as u32, Perm::RX)
            .unwrap();
        m.mem_mut().poke_bytes(callee.text_base, &callee.text).unwrap();
        assert_eq!(m.run(100_000), RunOutcome::Halted(42));
    }

    #[test]
    fn unresolved_extern_is_an_error() {
        let unit = parse("extern int missing();\nint main() { return missing(); }").unwrap();
        let err = compile(&unit, &CompileOptions::default()).unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn modules_compile_without_start() {
        let unit = parse(
            "static int secret = 666;\n\
             int get_secret(int pin) { if (pin == 1234) return secret; return 0; }",
        )
        .unwrap();
        let opts = CompileOptions {
            no_start: true,
            ..CompileOptions::default()
        };
        let prog = compile(&unit, &opts).unwrap();
        assert!(prog.entry.is_none());
        assert_eq!(prog.exports, vec!["get_secret".to_string()]);
        assert!(prog.functions.contains_key("get_secret"));
    }

    #[test]
    fn static_functions_not_exported() {
        let unit = parse(
            "static int helper() { return 1; }\n\
             int api() { return helper(); }",
        )
        .unwrap();
        let opts = CompileOptions {
            no_start: true,
            ..CompileOptions::default()
        };
        let prog = compile(&unit, &opts).unwrap();
        assert_eq!(prog.exports, vec!["api".to_string()]);
    }

    #[test]
    fn scrub_registers_zeroes_temporaries() {
        let src = "int f() { int x = 1234; return x + 1; }\n\
                   int main() { return f() - 1235; }";
        let mut opts = CompileOptions::default();
        opts.harden.scrub_registers = true;
        let unit = parse(src).unwrap();
        let prog = compile(&unit, &opts).unwrap();
        let mut m = Machine::new();
        prog.load(&mut m).unwrap();
        assert_eq!(m.run(1_000_000), RunOutcome::Halted(0));
        // After the run every scrubbed register reads zero.
        for r in [
            swsec_vm::isa::Reg::R1,
            swsec_vm::isa::Reg::R2,
            swsec_vm::isa::Reg::R3,
        ] {
            assert_eq!(m.reg(r), 0, "register {r} not scrubbed");
        }
    }

    #[test]
    fn global_scalar_char() {
        assert_eq!(
            run_src("char c = 7; int main() { c = c + 1; return c; }"),
            RunOutcome::Halted(8)
        );
    }

    #[test]
    fn nested_scopes_shadow() {
        assert_eq!(
            run_src("int main() { int x = 1; { int x = 2; x = 3; } return x; }"),
            RunOutcome::Halted(1)
        );
    }

    #[test]
    fn listing_contains_paper_style_prologue() {
        let unit = parse("void process(int fd) { char buf[16]; }\nvoid main() { process(1); }")
            .unwrap();
        let prog = compile(&unit, &CompileOptions::default()).unwrap();
        assert!(prog.listing.contains("enter 0x10"));
        assert!(prog.listing.contains("process:"));
    }

    #[test]
    fn bitwise_and_shift_operators() {
        assert_eq!(
            run_src("int main() { return ((6 & 3) | (1 << 3) | (1 ^ 3)) + (16 >> 2); }"),
            RunOutcome::Halted((2 | 8 | 2) + 4)
        );
    }

    #[test]
    fn arithmetic_shift_right_is_signed() {
        assert_eq!(
            run_src("int main() { return (-8 >> 1) + 10; }"),
            RunOutcome::Halted(6)
        );
    }
}
