//! Semantic analysis: name resolution, arity/lvalue checking and
//! expression typing.
//!
//! MinC deliberately keeps C's *permissive* typing — integers, chars
//! and pointers mix freely in arithmetic, and **no bounds information
//! is attached to pointers** — because the vulnerability classes under
//! study (§III-A of the paper) exist precisely because the source
//! language accepts such programs. What sema rejects is only what a
//! 1990s C compiler would reject: unknown names, wrong arity, assigning
//! to non-lvalues, `break` outside a loop.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast::{BinOp, Expr, Function, Stmt, Type, UnaryOp, Unit};

/// A semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SemaError {}

fn err(message: impl Into<String>) -> SemaError {
    SemaError {
        message: message.into(),
    }
}

/// The built-in functions every MinC program may call.
///
/// `read`/`write` mirror POSIX and are the I/O attacker's interface;
/// `exit` terminates with a code; `rand` returns a platform random word.
pub fn builtins() -> HashMap<&'static str, (Type, Vec<Type>)> {
    let charp = Type::Ptr(Box::new(Type::Char));
    HashMap::from([
        ("read", (Type::Int, vec![Type::Int, charp.clone(), Type::Int])),
        ("write", (Type::Int, vec![Type::Int, charp.clone(), Type::Int])),
        ("exit", (Type::Void, vec![Type::Int])),
        ("rand", (Type::Int, vec![])),
        ("alloc", (charp.clone(), vec![Type::Int])),
        ("free", (Type::Void, vec![charp])),
    ])
}

/// Signature of a declared function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Return type.
    pub ret: Type,
    /// Parameter types.
    pub params: Vec<Type>,
}

/// Scope-stack resolver shared by sema, the code generator and the
/// reference interpreter, so all three agree on what a name means.
#[derive(Debug)]
pub struct Scopes {
    stack: Vec<HashMap<String, Type>>,
}

impl Default for Scopes {
    fn default() -> Self {
        Scopes::new()
    }
}

impl Scopes {
    /// Creates an empty scope stack.
    pub fn new() -> Scopes {
        Scopes { stack: vec![] }
    }

    /// Enters a nested scope.
    pub fn push(&mut self) {
        self.stack.push(HashMap::new());
    }

    /// Leaves the innermost scope.
    pub fn pop(&mut self) {
        self.stack.pop();
    }

    /// Declares `name` in the innermost scope; returns `false` if it was
    /// already declared there.
    pub fn declare(&mut self, name: &str, ty: Type) -> bool {
        self.stack
            .last_mut()
            .expect("scope stack never empty while declaring")
            .insert(name.to_string(), ty)
            .is_none()
    }

    /// Resolves `name`, innermost scope first.
    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.stack.iter().rev().find_map(|s| s.get(name))
    }
}

struct Checker<'a> {
    unit: &'a Unit,
    globals: HashMap<String, Type>,
    functions: HashMap<String, FnSig>,
    builtins: HashMap<&'static str, (Type, Vec<Type>)>,
    scopes: Scopes,
    loop_depth: usize,
    current_ret: Type,
}

impl Checker<'_> {
    fn is_lvalue(&self, e: &Expr) -> bool {
        matches!(
            e,
            Expr::Var(_) | Expr::Index { .. } | Expr::Unary { op: UnaryOp::Deref, .. }
        )
    }

    fn type_of_var(&self, name: &str) -> Result<Type, SemaError> {
        if let Some(ty) = self.scopes.lookup(name) {
            return Ok(ty.clone());
        }
        if let Some(ty) = self.globals.get(name) {
            return Ok(ty.clone());
        }
        if let Some(sig) = self.functions.get(name) {
            // A bare function name is a function pointer.
            return Ok(Type::FnPtr(Box::new(sig.ret.clone()), sig.params.clone()));
        }
        Err(err(format!("use of undeclared identifier `{name}`")))
    }

    fn check_expr(&mut self, e: &Expr) -> Result<Type, SemaError> {
        match e {
            Expr::IntLit(_) => Ok(Type::Int),
            Expr::StrLit(_) => Ok(Type::Ptr(Box::new(Type::Char))),
            Expr::Var(name) => self.type_of_var(name),
            Expr::Assign { target, value } => {
                if !self.is_lvalue(target) {
                    return Err(err("left side of assignment is not an lvalue"));
                }
                let t = self.check_expr(target)?;
                if matches!(t, Type::Array(..)) {
                    return Err(err("cannot assign to an array"));
                }
                self.check_expr(value)?;
                Ok(t)
            }
            Expr::Unary { op, expr } => {
                let t = self.check_expr(expr)?;
                match op {
                    UnaryOp::Neg | UnaryOp::Not => Ok(Type::Int),
                    UnaryOp::Deref => match t.decayed() {
                        Type::Ptr(inner) => Ok(*inner),
                        other => Err(err(format!("cannot dereference value of type {other}"))),
                    },
                    UnaryOp::Addr => {
                        if !self.is_lvalue(expr) {
                            return Err(err("cannot take the address of a non-lvalue"));
                        }
                        Ok(Type::Ptr(Box::new(t.decayed())))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?.decayed();
                let rt = self.check_expr(rhs)?.decayed();
                match op {
                    BinOp::Add | BinOp::Sub => {
                        // Pointer ± integer keeps the pointer type
                        // (byte-granular arithmetic; indexing scales).
                        if matches!(lt, Type::Ptr(_)) {
                            Ok(lt)
                        } else if matches!(rt, Type::Ptr(_)) {
                            Ok(rt)
                        } else {
                            Ok(Type::Int)
                        }
                    }
                    _ => Ok(Type::Int),
                }
            }
            Expr::Call { callee, args } => {
                // Built-ins and named functions get arity checking;
                // function-pointer calls are checked structurally.
                let (ret, params): (Type, Vec<Type>) = match callee.as_ref() {
                    Expr::Var(name) => {
                        if let Some((ret, params)) = self.builtins.get(name.as_str()) {
                            (ret.clone(), params.clone())
                        } else if let Some(sig) = self.functions.get(name) {
                            (sig.ret.clone(), sig.params.clone())
                        } else {
                            match self.type_of_var(name)? {
                                Type::FnPtr(ret, params) => (*ret, params),
                                other => {
                                    return Err(err(format!(
                                        "`{name}` of type {other} is not callable"
                                    )))
                                }
                            }
                        }
                    }
                    other => match self.check_expr(other)?.decayed() {
                        Type::FnPtr(ret, params) => (*ret, params),
                        t => return Err(err(format!("value of type {t} is not callable"))),
                    },
                };
                if args.len() != params.len() {
                    return Err(err(format!(
                        "call passes {} arguments, expected {}",
                        args.len(),
                        params.len()
                    )));
                }
                for a in args {
                    self.check_expr(a)?;
                }
                Ok(ret)
            }
            Expr::Index { base, index } => {
                let bt = self.check_expr(base)?.decayed();
                self.check_expr(index)?;
                match bt {
                    Type::Ptr(inner) => Ok(*inner),
                    other => Err(err(format!("cannot index value of type {other}"))),
                }
            }
            Expr::PostIncDec { target, .. } => {
                if !self.is_lvalue(target) {
                    return Err(err("operand of ++/-- is not an lvalue"));
                }
                self.check_expr(target)
            }
        }
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), SemaError> {
        match s {
            Stmt::Decl { name, ty, init } => {
                if ty == &Type::Void {
                    return Err(err(format!("variable `{name}` cannot have type void")));
                }
                if let Some(init) = init {
                    self.check_expr(init)?;
                    if matches!(ty, Type::Array(..)) {
                        return Err(err(format!(
                            "array `{name}` cannot have a scalar initializer"
                        )));
                    }
                }
                if !self.scopes.declare(name, ty.clone()) {
                    return Err(err(format!("`{name}` declared twice in the same scope")));
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.check_expr(e)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_expr(cond)?;
                self.check_stmt(then_branch)?;
                if let Some(e) = else_branch {
                    self.check_stmt(e)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.check_expr(cond)?;
                self.loop_depth += 1;
                let r = self.check_stmt(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push();
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.check_expr(cond)?;
                }
                if let Some(step) = step {
                    self.check_expr(step)?;
                }
                self.loop_depth += 1;
                let r = self.check_stmt(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                r
            }
            Stmt::Return(value) => {
                match (value, &self.current_ret) {
                    (Some(_), Type::Void) => {
                        return Err(err("void function returns a value"))
                    }
                    (Some(v), _) => {
                        self.check_expr(v)?;
                    }
                    (None, _) => {}
                }
                Ok(())
            }
            Stmt::Break => {
                if self.loop_depth == 0 {
                    return Err(err("`break` outside of a loop"));
                }
                Ok(())
            }
            Stmt::Continue => {
                if self.loop_depth == 0 {
                    return Err(err("`continue` outside of a loop"));
                }
                Ok(())
            }
            Stmt::Block(stmts) => {
                self.scopes.push();
                for s in stmts {
                    self.check_stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
        }
    }

    fn check_function(&mut self, f: &Function) -> Result<(), SemaError> {
        let body = match &f.body {
            Some(b) => b,
            None => return Ok(()),
        };
        self.current_ret = f.ret.clone();
        self.scopes.push();
        let mut seen = HashSet::new();
        for p in &f.params {
            if !seen.insert(p.name.clone()) {
                return Err(err(format!(
                    "parameter `{}` of `{}` declared twice",
                    p.name, f.name
                )));
            }
            self.scopes.declare(&p.name, p.ty.clone());
        }
        for s in body {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }
}

/// Validates a translation unit.
///
/// # Errors
///
/// Returns the first [`SemaError`]: undeclared names, duplicate
/// definitions, wrong call arity, non-lvalue assignment targets,
/// `break`/`continue` outside loops, void-typed variables.
pub fn check(unit: &Unit) -> Result<(), SemaError> {
    let builtin_map = builtins();
    let mut globals = HashMap::new();
    for g in &unit.globals {
        if builtin_map.contains_key(g.name.as_str()) {
            return Err(err(format!("`{}` shadows a builtin", g.name)));
        }
        if globals.insert(g.name.clone(), g.ty.clone()).is_some() {
            return Err(err(format!("global `{}` defined twice", g.name)));
        }
        if let Some(init) = &g.init {
            match (init, &g.ty) {
                (crate::ast::GlobalInit::Str(s), Type::Array(elem, n)) => {
                    if **elem != Type::Char {
                        return Err(err(format!(
                            "string initializer on non-char array `{}`",
                            g.name
                        )));
                    }
                    if s.len() + 1 > *n {
                        return Err(err(format!(
                            "string initializer too long for `{}[{}]`",
                            g.name, n
                        )));
                    }
                }
                (crate::ast::GlobalInit::Str(_), _) => {
                    return Err(err(format!(
                        "string initializer on non-array global `{}`",
                        g.name
                    )))
                }
                (crate::ast::GlobalInit::Int(_), Type::Array(..)) => {
                    return Err(err(format!(
                        "integer initializer on array global `{}`",
                        g.name
                    )))
                }
                _ => {}
            }
        }
    }
    let mut functions = HashMap::new();
    for f in &unit.functions {
        if builtin_map.contains_key(f.name.as_str()) {
            return Err(err(format!("function `{}` shadows a builtin", f.name)));
        }
        let sig = FnSig {
            ret: f.ret.clone(),
            params: f.params.iter().map(|p| p.ty.clone()).collect(),
        };
        if let Some(previous) = functions.insert(f.name.clone(), sig.clone()) {
            // A body may follow an extern declaration with the same
            // signature; true duplicates are rejected.
            if previous != sig {
                return Err(err(format!(
                    "function `{}` redeclared with a different signature",
                    f.name
                )));
            }
            let bodies = unit
                .functions
                .iter()
                .filter(|other| other.name == f.name && other.body.is_some())
                .count();
            if bodies > 1 {
                return Err(err(format!("function `{}` defined twice", f.name)));
            }
        }
    }
    let mut checker = Checker {
        unit,
        globals,
        functions,
        builtins: builtin_map,
        scopes: Scopes::new(),
        loop_depth: 0,
        current_ret: Type::Void,
    };
    for f in &checker.unit.functions {
        checker.check_function(f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), SemaError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn accepts_figure1_server() {
        check_src(
            "void get_request(int fd, char buf[]) { read(fd, buf, 16); }\n\
             void process(int fd) { char buf[16]; get_request(fd, buf); }\n\
             void main() { int fd = 1; process(fd); }",
        )
        .unwrap();
    }

    #[test]
    fn accepts_overflowing_read_without_complaint() {
        // The spatial vulnerability of §III-A: reading 32 bytes into a
        // 16-byte buffer is *well-typed* C. Sema must accept it.
        check_src(
            "void f(int fd) { char buf[16]; read(fd, buf, 32); }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = check_src("void f() { x = 1; }").unwrap_err();
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn rejects_wrong_arity() {
        let e = check_src("int g(int a) { return a; } void f() { g(1, 2); }").unwrap_err();
        assert!(e.message.contains("arguments"));
    }

    #[test]
    fn rejects_assignment_to_rvalue() {
        let e = check_src("void f() { 1 = 2; }").unwrap_err();
        assert!(e.message.contains("lvalue"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = check_src("void f() { break; }").unwrap_err();
        assert!(e.message.contains("break"));
    }

    #[test]
    fn rejects_duplicate_local_in_same_scope() {
        let e = check_src("void f() { int x; int x; }").unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn allows_shadowing_in_nested_scope() {
        check_src("void f() { int x; { int x; x = 1; } }").unwrap();
    }

    #[test]
    fn rejects_duplicate_global() {
        let e = check_src("int x; int x;").unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn rejects_void_variable() {
        let e = check_src("void f() { void x; }").unwrap_err();
        assert!(e.message.contains("void"));
    }

    #[test]
    fn rejects_value_return_from_void() {
        let e = check_src("void f() { return 3; }").unwrap_err();
        assert!(e.message.contains("void function"));
    }

    #[test]
    fn rejects_indexing_an_int() {
        let e = check_src("void f() { int x; x[0] = 1; }").unwrap_err();
        assert!(e.message.contains("index"));
    }

    #[test]
    fn rejects_deref_of_int() {
        let e = check_src("void f() { int x; *x = 1; }").unwrap_err();
        assert!(e.message.contains("dereference"));
    }

    #[test]
    fn accepts_function_pointer_call() {
        check_src(
            "int get_secret(int (*get_pin)()) { return get_pin(); }",
        )
        .unwrap();
    }

    #[test]
    fn function_name_usable_as_pointer_value() {
        check_src(
            "int from_stdin() { return 4; }\n\
             extern int get_secret(int (*get_pin)());\n\
             void main() { get_secret(from_stdin); }",
        )
        .unwrap();
    }

    #[test]
    fn extern_then_definition_accepted() {
        check_src("int f(int a); int f(int a) { return a; }").unwrap();
    }

    #[test]
    fn two_bodies_rejected() {
        let e =
            check_src("int f() { return 1; } int f() { return 2; }").unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn string_initializer_must_fit() {
        let e = check_src("char m[3] = \"abc\";").unwrap_err();
        assert!(e.message.contains("too long"));
    }

    #[test]
    fn builtin_shadowing_rejected() {
        assert!(check_src("int read;").is_err());
        assert!(check_src("int read(int x) { return x; }").is_err());
    }

    #[test]
    fn pointer_arithmetic_types() {
        check_src(
            "void f(char *p) { char c; c = *(p + 1); p = p - 1; }",
        )
        .unwrap();
    }
}
