//! Recursive-descent parser for MinC.

use std::fmt;

use crate::ast::{BinOp, Expr, Function, Global, GlobalInit, Param, Stmt, Type, UnaryOp, Unit};
use crate::lexer::{lex, LexError};
use crate::token::{Spanned, Token};

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 at end of input).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected `{expected}`, found `{t}`"))),
            None => Err(self.error(format!("expected `{expected}`, found end of input"))),
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(name)) => Ok(name),
            Some(t) => Err(ParseError {
                line: self.tokens[self.pos - 1].line,
                message: format!("expected identifier, found `{t}`"),
            }),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::KwInt) | Some(Token::KwChar) | Some(Token::KwVoid)
        )
    }

    fn parse_base_type(&mut self) -> Result<Type, ParseError> {
        match self.bump() {
            Some(Token::KwInt) => Ok(Type::Int),
            Some(Token::KwChar) => Ok(Type::Char),
            Some(Token::KwVoid) => Ok(Type::Void),
            Some(t) => Err(self.error(format!("expected type, found `{t}`"))),
            None => Err(self.error("expected type, found end of input")),
        }
    }

    fn parse_pointer_suffix(&mut self, mut ty: Type) -> Type {
        while self.eat(&Token::Star) {
            ty = Type::Ptr(Box::new(ty));
        }
        ty
    }

    /// Parses a declarator after the base type:
    /// `*`* (ident | `(` `*` ident `)` `(` type-list `)`) (`[` n `]`)?.
    /// Returns the name and complete type.
    fn parse_declarator(&mut self, base: Type) -> Result<(String, Type), ParseError> {
        let ty = self.parse_pointer_suffix(base);
        if self.peek() == Some(&Token::LParen) && self.peek2() == Some(&Token::Star) {
            // Function-pointer declarator: ( * name ) ( params )
            self.bump(); // (
            self.bump(); // *
            let name = self.expect_ident()?;
            self.expect(&Token::RParen)?;
            self.expect(&Token::LParen)?;
            let mut params = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    let base = self.parse_base_type()?;
                    let pty = self.parse_pointer_suffix(base);
                    params.push(pty);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok((name, Type::FnPtr(Box::new(ty), params)));
        }
        let name = self.expect_ident()?;
        if self.eat(&Token::LBracket) {
            if self.eat(&Token::RBracket) {
                // Unsized `T name[]` — legal only where arrays decay to
                // pointers (parameters); represented directly as T*.
                return Ok((name, Type::Ptr(Box::new(ty))));
            }
            let size = match self.bump() {
                Some(Token::Int(n)) if n >= 0 => n as usize,
                _ => return Err(self.error("expected array size")),
            };
            self.expect(&Token::RBracket)?;
            return Ok((name, Type::Array(Box::new(ty), size)));
        }
        Ok((name, ty))
    }

    fn parse_param(&mut self) -> Result<Param, ParseError> {
        let base = self.parse_base_type()?;
        let (name, ty) = self.parse_declarator(base)?;
        // Array parameters decay to pointers, as in C.
        Ok(Param {
            name,
            ty: ty.decayed(),
        })
    }

    fn parse_unit(&mut self) -> Result<Unit, ParseError> {
        let mut unit = Unit::default();
        while self.peek().is_some() {
            let is_extern = self.eat(&Token::KwExtern);
            let is_static = self.eat(&Token::KwStatic);
            let base = self.parse_base_type()?;
            let (name, ty) = self.parse_declarator(base)?;
            if self.peek() == Some(&Token::LParen) {
                // Function definition or declaration.
                self.bump();
                let mut params = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    if self.peek() == Some(&Token::KwVoid) && self.peek2() == Some(&Token::RParen)
                    {
                        self.bump(); // f(void)
                    } else {
                        loop {
                            params.push(self.parse_param()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                let body = if self.eat(&Token::Semi) {
                    None
                } else {
                    self.expect(&Token::LBrace)?;
                    Some(self.parse_block_body()?)
                };
                if is_extern && body.is_some() {
                    return Err(self.error(format!("extern function `{name}` has a body")));
                }
                unit.functions.push(Function {
                    name,
                    ret: ty,
                    params,
                    body,
                    is_static,
                });
            } else {
                // Global variable.
                if ty == Type::Void {
                    return Err(self.error(format!("global `{name}` cannot have type void")));
                }
                let init = if self.eat(&Token::Assign) {
                    Some(self.parse_global_init()?)
                } else {
                    None
                };
                self.expect(&Token::Semi)?;
                unit.globals.push(Global {
                    name,
                    ty,
                    init,
                    is_static,
                });
            }
        }
        Ok(unit)
    }

    fn parse_global_init(&mut self) -> Result<GlobalInit, ParseError> {
        match self.peek() {
            Some(Token::Str(_)) => {
                if let Some(Token::Str(s)) = self.bump() {
                    Ok(GlobalInit::Str(s))
                } else {
                    unreachable!("peeked a string")
                }
            }
            Some(Token::Minus) => {
                self.bump();
                match self.bump() {
                    Some(Token::Int(n)) => Ok(GlobalInit::Int(-n)),
                    _ => Err(self.error("expected integer after `-`")),
                }
            }
            Some(Token::Int(_)) => {
                if let Some(Token::Int(n)) = self.bump() {
                    Ok(GlobalInit::Int(n))
                } else {
                    unreachable!("peeked an int")
                }
            }
            _ => Err(self.error("global initializers must be integer or string constants")),
        }
    }

    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.bump(); // consume }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.parse_block_body()?))
            }
            Some(Token::KwIf) => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                let then_branch = Box::new(self.parse_stmt()?);
                let else_branch = if self.eat(&Token::KwElse) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            Some(Token::KwWhile) => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::While { cond, body })
            }
            Some(Token::KwFor) => {
                self.bump();
                self.expect(&Token::LParen)?;
                let init = if self.eat(&Token::Semi) {
                    None
                } else if self.is_type_start() {
                    let stmt = self.parse_decl_stmt()?;
                    Some(Box::new(stmt))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(&Token::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == Some(&Token::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Token::Semi)?;
                let step = if self.peek() == Some(&Token::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Token::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Some(Token::KwReturn) => {
                self.bump();
                let value = if self.peek() == Some(&Token::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Token::Semi)?;
                Ok(Stmt::Return(value))
            }
            Some(Token::KwBreak) => {
                self.bump();
                self.expect(&Token::Semi)?;
                Ok(Stmt::Break)
            }
            Some(Token::KwContinue) => {
                self.bump();
                self.expect(&Token::Semi)?;
                Ok(Stmt::Continue)
            }
            Some(Token::KwInt | Token::KwChar | Token::KwVoid) => self.parse_decl_stmt(),
            Some(Token::Semi) => {
                self.bump();
                Ok(Stmt::Block(Vec::new()))
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn parse_decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let base = self.parse_base_type()?;
        let (name, ty) = self.parse_declarator(base)?;
        let init = if self.eat(&Token::Assign) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect(&Token::Semi)?;
        Ok(Stmt::Decl { name, ty, init })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_or()?;
        if self.eat(&Token::Assign) {
            let value = self.parse_assign()?;
            return Ok(Expr::Assign {
                target: Box::new(lhs),
                value: Box::new(value),
            });
        }
        Ok(lhs)
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bitor()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.parse_bitor()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_bitor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bitxor()?;
        while self.eat(&Token::Pipe) {
            let rhs = self.parse_bitxor()?;
            lhs = Expr::Binary {
                op: BinOp::BitOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_bitxor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bitand()?;
        while self.eat(&Token::Caret) {
            let rhs = self.parse_bitand()?;
            lhs = Expr::Binary {
                op: BinOp::BitXor,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_bitand(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_equality()?;
        while self.peek() == Some(&Token::Amp) && self.peek2() != Some(&Token::Amp) {
            self.bump();
            let rhs = self.parse_equality()?;
            lhs = Expr::Binary {
                op: BinOp::BitAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                Some(Token::EqEq) => BinOp::Eq,
                Some(Token::Ne) => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_relational()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_shift()?;
        loop {
            let op = match self.peek() {
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Ge) => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_shift()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::Shl) => BinOp::Shl,
                Some(Token::Shr) => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Some(Token::Minus) => Some(UnaryOp::Neg),
            Some(Token::Bang) => Some(UnaryOp::Not),
            Some(Token::Star) => Some(UnaryOp::Deref),
            Some(Token::Amp) => Some(UnaryOp::Addr),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.parse_unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary()?;
        loop {
            match self.peek() {
                Some(Token::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                    };
                }
                Some(Token::LBracket) => {
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect(&Token::RBracket)?;
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(index),
                    };
                }
                Some(Token::PlusPlus) => {
                    self.bump();
                    expr = Expr::PostIncDec {
                        target: Box::new(expr),
                        inc: true,
                    };
                }
                Some(Token::MinusMinus) => {
                    self.bump();
                    expr = Expr::PostIncDec {
                        target: Box::new(expr),
                        inc: false,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::IntLit(v)),
            Some(Token::Str(s)) => Ok(Expr::StrLit(s)),
            Some(Token::Ident(name)) => Ok(Expr::Var(name)),
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(t) => Err(ParseError {
                line: self.tokens[self.pos - 1].line,
                message: format!("expected expression, found `{t}`"),
            }),
            None => Err(self.error("expected expression, found end of input")),
        }
    }
}

/// Parses a MinC translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
///
/// # Examples
///
/// ```
/// let unit = swsec_minc::parse(
///     "int add(int a, int b) { return a + b; }\n\
///      void main() { exit(add(40, 2)); }",
/// )?;
/// assert_eq!(unit.functions.len(), 2);
/// # Ok::<(), swsec_minc::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Unit, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.parse_unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_function() {
        let unit = parse("int add(int a, int b) { return a + b; }").unwrap();
        let f = unit.function("add").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
        assert!(f.body.is_some());
    }

    #[test]
    fn parses_figure1_server() {
        let src = r#"
            void get_request(int fd, char buf[]) {
                read(fd, buf, 16);
            }
            void process(int fd) {
                char buf[16];
                get_request(fd, buf);
            }
            void main() {
                int fd = 1;
                process(fd);
            }
        "#;
        let unit = parse(src).unwrap();
        assert_eq!(unit.functions.len(), 3);
        // Array parameter decays to char*.
        let get_request = unit.function("get_request").unwrap();
        assert_eq!(get_request.params[1].ty, Type::Ptr(Box::new(Type::Char)));
    }

    #[test]
    fn parses_figure2_secret_module() {
        let src = r#"
            static int tries_left = 3;
            static int PIN = 1234;
            static int secret = 666;
            int get_secret(int provided_pin) {
                if (tries_left > 0) {
                    if (PIN == provided_pin) {
                        tries_left = 3;
                        return secret;
                    } else { tries_left--; return 0; }
                } else return 0;
            }
        "#;
        let unit = parse(src).unwrap();
        assert_eq!(unit.globals.len(), 3);
        assert!(unit.globals.iter().all(|g| g.is_static));
        assert!(unit.function("get_secret").is_some());
    }

    #[test]
    fn parses_figure4_fn_pointer_param() {
        let src = r#"
            static int secret = 666;
            int get_secret(int (*get_pin)()) {
                if (secret == get_pin()) { return secret; }
                return 0;
            }
        "#;
        let unit = parse(src).unwrap();
        let f = unit.function("get_secret").unwrap();
        assert_eq!(
            f.params[0].ty,
            Type::FnPtr(Box::new(Type::Int), vec![])
        );
    }

    #[test]
    fn parses_extern_declaration() {
        let unit = parse("extern int get_secret(int pin);").unwrap();
        let f = unit.function("get_secret").unwrap();
        assert!(f.body.is_none());
    }

    #[test]
    fn extern_with_body_rejected() {
        assert!(parse("extern int f() { return 1; }").is_err());
    }

    #[test]
    fn parses_globals_with_initializers() {
        let unit = parse(
            "int x = 5;\nint neg = -3;\nchar msg[8] = \"hi\";\nint zeroed;",
        )
        .unwrap();
        assert_eq!(unit.globals[0].init, Some(GlobalInit::Int(5)));
        assert_eq!(unit.globals[1].init, Some(GlobalInit::Int(-3)));
        assert_eq!(unit.globals[2].init, Some(GlobalInit::Str("hi".into())));
        assert_eq!(unit.globals[3].init, None);
    }

    #[test]
    fn precedence_mul_over_add() {
        let unit = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let body = unit.function("f").unwrap().body.as_ref().unwrap();
        match &body[0] {
            Stmt::Return(Some(Expr::Binary { op: BinOp::Add, rhs, .. })) => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected AST: {other:?}"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let unit = parse("void f() { int a; int b; a = b = 1; }").unwrap();
        let body = unit.function("f").unwrap().body.as_ref().unwrap();
        match &body[2] {
            Stmt::Expr(Expr::Assign { value, .. }) => {
                assert!(matches!(**value, Expr::Assign { .. }));
            }
            other => panic!("unexpected AST: {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            int f(int n) {
                int total = 0;
                for (int i = 0; i < n; i++) {
                    if (i % 2 == 0) { total = total + i; }
                    else { continue; }
                    while (total > 100) { break; }
                }
                return total;
            }
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn bitand_vs_logical_and() {
        let unit = parse("int f(int a, int b) { return a & b && a; }").unwrap();
        let body = unit.function("f").unwrap().body.as_ref().unwrap();
        match &body[0] {
            Stmt::Return(Some(Expr::Binary { op: BinOp::And, lhs, .. })) => {
                assert!(matches!(**lhs, Expr::Binary { op: BinOp::BitAnd, .. }));
            }
            other => panic!("unexpected AST: {other:?}"),
        }
    }

    #[test]
    fn address_of_and_deref() {
        let unit = parse("void f() { int x; int *p; p = &x; *p = 3; }").unwrap();
        let body = unit.function("f").unwrap().body.as_ref().unwrap();
        assert!(matches!(
            &body[2],
            Stmt::Expr(Expr::Assign { value, .. })
                if matches!(**value, Expr::Unary { op: UnaryOp::Addr, .. })
        ));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse("int f() {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        assert!(parse("void f() { int x = 1 }").is_err());
    }

    #[test]
    fn void_param_list_is_empty() {
        let unit = parse("int f(void) { return 0; }").unwrap();
        assert!(unit.function("f").unwrap().params.is_empty());
    }
}
