//! Heap allocator tests: `alloc`/`free` on both the compiled machine
//! and the reference interpreter, including the temporal-violation
//! semantics of explicit deallocation (§III-A: "such deallocation can
//! happen implicitly or explicitly").

use swsec_minc::interp::{self, InterpOutcome};
use swsec_minc::{compile, parse, CompileOptions};
use swsec_vm::cpu::{Machine, RunOutcome};

fn run_vm(src: &str, input: &[u8]) -> (RunOutcome, Vec<u8>) {
    let unit = parse(src).unwrap();
    let prog = compile(&unit, &CompileOptions::default()).unwrap();
    let mut m = Machine::new();
    prog.load(&mut m).unwrap();
    m.io_mut().feed_input(0, input);
    let outcome = m.run(5_000_000);
    let out = m.io().output(1).to_vec();
    (outcome, out)
}

fn run_ref(src: &str, input: &[u8]) -> InterpOutcome {
    let unit = parse(src).unwrap();
    interp::run(&unit, &[(0, input.to_vec())], 5_000_000).outcome
}

#[test]
fn alloc_returns_usable_memory() {
    let src = "int main() { char *p = alloc(16); \
               for (int i = 0; i < 16; i++) p[i] = i; \
               int s = 0; for (int i = 0; i < 16; i++) s = s + p[i]; \
               return s; }";
    assert_eq!(run_vm(src, &[]).0, RunOutcome::Halted(120));
    assert_eq!(run_ref(src, &[]), InterpOutcome::Exit(120));
}

#[test]
fn distinct_allocations_do_not_alias() {
    let src = "int main() { char *a = alloc(8); char *b = alloc(8); \
               a[0] = 1; b[0] = 2; return a[0] * 10 + b[0]; }";
    assert_eq!(run_vm(src, &[]).0, RunOutcome::Halted(12));
    assert_eq!(run_ref(src, &[]), InterpOutcome::Exit(12));
}

#[test]
fn freed_chunks_are_reused_lifo_on_the_machine() {
    // The machine allocator reuses the freed chunk for the next
    // same-size request — the substrate of use-after-free attacks.
    let src = "int main() { char *a = alloc(16); free(a); \
               char *b = alloc(16); \
               return b == a; }";
    // Pointer equality: at machine level the addresses coincide. (The
    // reference semantics trap the comparison of a dangling pointer —
    // run the machine only.)
    assert_eq!(run_vm(src, &[]).0, RunOutcome::Halted(1));
}

#[test]
fn machine_allocator_returns_null_when_exhausted() {
    let src = "int main() { int n = 0; \
               while (alloc(4096) != 0) { n++; if (n > 100) return 99; } \
               return n; }";
    // 64 KiB heap / (4096+8 rounded) chunks — exhausts well below 100.
    let (outcome, _) = run_vm(src, &[]);
    match outcome {
        RunOutcome::Halted(n) => assert!((2..=16).contains(&n), "n = {n}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn use_after_free_is_a_source_level_trap() {
    let src = "int main() { char *p = alloc(8); p[0] = 7; free(p); return p[0]; }";
    match run_ref(src, &[]) {
        InterpOutcome::Trap(v) => assert!(v.message.contains("temporal"), "{}", v.message),
        other => panic!("expected temporal trap, got {other:?}"),
    }
    // The machine happily reads through the dangling pointer — and
    // what it finds is the allocator's free-list link, which `free`
    // wrote over the first payload word (the classic glibc "fd
    // pointer" behaviour; here the list was empty, so 0).
    assert_eq!(run_vm(src, &[]).0, RunOutcome::Halted(0));
}

#[test]
fn double_free_is_a_source_level_trap() {
    let src = "int main() { char *p = alloc(8); free(p); free(p); return 0; }";
    match run_ref(src, &[]) {
        InterpOutcome::Trap(v) => assert!(v.message.contains("double free")),
        other => panic!("expected double-free trap, got {other:?}"),
    }
}

#[test]
fn free_of_stack_memory_is_a_source_level_trap() {
    let src = "int main() { char buf[8]; free(buf); return 0; }";
    match run_ref(src, &[]) {
        InterpOutcome::Trap(v) => assert!(v.message.contains("non-heap")),
        other => panic!("expected non-heap trap, got {other:?}"),
    }
}

#[test]
fn free_null_is_a_no_op() {
    let src = "int main() { char *p; p = p - p + 0; free(0); return 42; }";
    // Simpler: free(0) directly.
    let src2 = "int main() { free(0); return 42; }";
    let _ = src;
    assert_eq!(run_vm(src2, &[]).0, RunOutcome::Halted(42));
    assert_eq!(run_ref(src2, &[]), InterpOutcome::Exit(42));
}

#[test]
fn interior_free_is_a_source_level_trap() {
    let src = "int main() { char *p = alloc(8); free(p + 4); return 0; }";
    match run_ref(src, &[]) {
        InterpOutcome::Trap(v) => assert!(v.message.contains("middle")),
        other => panic!("expected interior-free trap, got {other:?}"),
    }
}

#[test]
fn classic_use_after_free_type_confusion() {
    // The classic UAF: a "session" record is freed; an attacker-
    // controlled "name" buffer reuses its chunk; the dangling session
    // pointer now reads attacker bytes. session[0] is the is_admin
    // flag.
    let src = "\
void main() {\n\
    char *session = alloc(16);\n\
    session[0] = 0;           // is_admin = false\n\
    free(session);\n\
    char *name = alloc(16);   // reuses the freed chunk\n\
    read(0, name, 16);        // attacker-controlled\n\
    if (session[0] != 0) { write(1, \"ADMIN\", 5); }\n\
    else { write(1, \"USER\", 4); }\n\
}\n";
    // Benign input: first byte zero → USER on the machine.
    let (outcome, out) = run_vm(src, &[0u8; 16]);
    assert!(outcome.is_halted());
    assert_eq!(out, b"USER");
    // Attack input: first byte nonzero → the dangling read sees it.
    let (outcome, out) = run_vm(src, &[1u8; 16]);
    assert!(outcome.is_halted());
    assert_eq!(out, b"ADMIN");
    // The source semantics trap the dangling read either way.
    match run_ref(src, &[1u8; 16]) {
        InterpOutcome::Trap(v) => assert!(v.message.contains("temporal")),
        other => panic!("expected temporal trap, got {other:?}"),
    }
}

#[test]
fn heap_equivalence_for_correct_programs() {
    // A correct alloc/use/free lifecycle is observationally identical
    // on both sides.
    let src = "\
void main() {\n\
    char *buf = alloc(32);\n\
    int n = read(0, buf, 32);\n\
    write(1, buf, n);\n\
    free(buf);\n\
    char *second = alloc(8);\n\
    second[0] = 'X';\n\
    write(1, second, 1);\n\
    free(second);\n\
}\n";
    let (outcome, out) = run_vm(src, b"hello");
    assert_eq!(outcome, RunOutcome::Halted(0));
    assert_eq!(out, b"helloX");
    let unit = parse(src).unwrap();
    let r = interp::run(&unit, &[(0, b"hello".to_vec())], 5_000_000);
    assert_eq!(r.outcome, InterpOutcome::Exit(0));
    assert_eq!(r.io, vec![(1, b"helloX".to_vec())]);
}

#[test]
fn heap_overflow_is_a_spatial_trap_at_source_level() {
    let src = "void main() { char *p = alloc(8); read(0, p, 32); }";
    match run_ref(src, &[0x41; 32]) {
        InterpOutcome::Trap(v) => assert!(v.message.contains("spatial")),
        other => panic!("expected spatial trap, got {other:?}"),
    }
    // On the machine the overflow silently corrupts the neighbouring
    // chunk header — heap metadata corruption, the classic heap attack
    // surface.
    let (outcome, _) = run_vm(src, &[0x41; 32]);
    assert!(outcome.is_halted());
}
