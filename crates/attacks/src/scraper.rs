//! Memory-scraping malware (§IV, the machine-code attacker).
//!
//! A scraper is attacker machine code that walks the address space
//! looking for secrets — credit card numbers, keys, PINs. Two
//! implementations are provided:
//!
//! * [`Scraper`] — a fast model that performs exactly the loads the
//!   malicious code would perform, honoring page permissions and
//!   protected-module access control. A byte inside a protected module
//!   is invisible to it; everything else is fair game.
//! * [`scraper_program`] — real scraper *machine code* that runs on the
//!   VM, for end-to-end demonstrations.
//!
//! A kernel-level scraper without PMA is modelled by
//! [`Scraper::kernel`]: page permissions don't apply (the kernel maps
//! everything), but PMA checks still do — that is the paper's point:
//! PMA protects even against a compromised OS.

use swsec_asm::assemble;
use swsec_vm::cpu::Machine;
use swsec_vm::mem::Access;

/// Privilege level of the scraping code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrapePrivilege {
    /// Userland malicious module: page permissions and PMA both apply.
    User,
    /// Kernel malware: page permissions don't constrain it, but
    /// protected-module access control still does.
    Kernel,
}

/// A memory scraper: attacker code at a given address, scanning with a
/// given privilege.
#[derive(Debug, Clone, Copy)]
pub struct Scraper {
    ip: u32,
    privilege: ScrapePrivilege,
}

impl Scraper {
    /// A userland scraper whose code executes at `ip` (the PMA rules
    /// judge accesses by where the instruction pointer is).
    pub fn user(ip: u32) -> Scraper {
        Scraper {
            ip,
            privilege: ScrapePrivilege::User,
        }
    }

    /// A kernel-level scraper (malware inside the OS).
    pub fn kernel() -> Scraper {
        Scraper {
            ip: 0xc000_0000, // kernel space; outside every module
            privilege: ScrapePrivilege::Kernel,
        }
    }

    /// Whether this scraper can read the byte at `addr`.
    pub fn can_read(&self, m: &Machine, addr: u32) -> bool {
        if let Some(pma) = m.protection() {
            if pma.check_data(self.ip, addr).is_err() {
                return false;
            }
        }
        match self.privilege {
            ScrapePrivilege::User => m
                .mem()
                .perm_at(addr)
                .is_some_and(|p| !m.mem().enforce() || p.can_read()),
            ScrapePrivilege::Kernel => m.mem().is_mapped(addr),
        }
    }

    /// Reads the byte at `addr` if permitted.
    pub fn read(&self, m: &Machine, addr: u32) -> Option<u8> {
        if !self.can_read(m, addr) {
            return None;
        }
        match self.privilege {
            ScrapePrivilege::User => m.mem().read_u8(addr, Access::Read).ok(),
            ScrapePrivilege::Kernel => {
                m.mem().peek_bytes(addr, 1).ok().map(|v| v[0])
            }
        }
    }

    /// Scans every mapped region for `needle`, returning the addresses
    /// of all matches the scraper can actually see.
    pub fn scan(&self, m: &Machine, needle: &[u8]) -> Vec<u32> {
        if needle.is_empty() {
            return Vec::new();
        }
        let mut hits = Vec::new();
        for (range, _) in m.mem().regions() {
            let mut window: Vec<Option<u8>> = Vec::new();
            let len = range.end.wrapping_sub(range.start);
            for i in 0..len {
                let addr = range.start.wrapping_add(i);
                window.push(self.read(m, addr));
                if window.len() > needle.len() {
                    window.remove(0);
                }
                if window.len() == needle.len()
                    && window
                        .iter()
                        .zip(needle)
                        .all(|(b, n)| *b == Some(*n))
                {
                    hits.push(addr.wrapping_sub(needle.len() as u32 - 1));
                }
            }
        }
        hits
    }

    /// Scans for a little-endian 32-bit value.
    pub fn scan_word(&self, m: &Machine, value: u32) -> Vec<u32> {
        self.scan(m, &value.to_le_bytes())
    }
}

/// Assembles a real in-VM scraper: machine code at `base` that scans
/// `[scan_start, scan_end)` for the 32-bit little-endian `needle_word`,
/// writes each match address to channel `out_fd`, and exits with the
/// number of hits.
pub fn scraper_program(
    base: u32,
    scan_start: u32,
    scan_end: u32,
    needle_word: u32,
    out_fd: u32,
) -> Vec<u8> {
    // r3 = cursor, r4 = end, r5 = needle, r6 = hit count.
    let src = format!(
        ".org {base:#x}\n\
         movi r3, {scan_start:#x}\n\
         movi r4, {scan_end:#x}\n\
         movi r5, {needle_word:#x}\n\
         movi r6, 0\n\
         loop:\n\
         cmp r3, r4\n\
         jae done\n\
         load r0, [r3]\n\
         cmp r0, r5\n\
         jnz next\n\
         addi r6, 1\n\
         store [r7], r3\n\
         movi r0, {out_fd:#x}\n\
         mov r1, r7\n\
         movi r2, 4\n\
         sys 2\n\
         next:\n\
         addi r3, 1\n\
         jmp loop\n\
         done:\n\
         mov r0, r6\n\
         sys 0\n"
    );
    assemble(&src).expect("static scraper assembles").bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_vm::mem::Perm;
    use swsec_vm::policy::{ProtectedRegion, ProtectionMap};
    use swsec_vm::prelude::*;

    fn machine_with_secret() -> Machine {
        let mut m = Machine::new();
        m.mem_mut().map(0x0805_0000, 0x1000, Perm::RW).unwrap();
        m.mem_mut()
            .poke_bytes(0x0805_0100, &666u32.to_le_bytes())
            .unwrap();
        m.mem_mut().map(0x0900_0000, 0x1000, Perm::RX).unwrap(); // attacker code page
        m
    }

    #[test]
    fn user_scraper_finds_unprotected_secret() {
        let m = machine_with_secret();
        let scraper = Scraper::user(0x0900_0000);
        assert_eq!(scraper.scan_word(&m, 666), vec![0x0805_0100]);
    }

    #[test]
    fn kernel_scraper_ignores_page_permissions() {
        let mut m = machine_with_secret();
        m.mem_mut().set_perm(0x0805_0000, 0x1000, Perm::NONE);
        assert!(Scraper::user(0x0900_0000).scan_word(&m, 666).is_empty());
        assert_eq!(Scraper::kernel().scan_word(&m, 666), vec![0x0805_0100]);
    }

    #[test]
    fn pma_defeats_even_the_kernel_scraper() {
        let mut m = machine_with_secret();
        m.set_protection(Some(ProtectionMap::new(vec![ProtectedRegion::new(
            0x0a00_0000..0x0a00_1000,
            0x0805_0000..0x0805_1000,
            vec![0x0a00_0000],
        )])));
        assert!(Scraper::kernel().scan_word(&m, 666).is_empty());
        assert!(Scraper::user(0x0900_0000).scan_word(&m, 666).is_empty());
    }

    #[test]
    fn module_can_still_read_its_own_data() {
        let mut m = machine_with_secret();
        m.set_protection(Some(ProtectionMap::new(vec![ProtectedRegion::new(
            0x0a00_0000..0x0a00_1000,
            0x0805_0000..0x0805_1000,
            vec![0x0a00_0000],
        )])));
        // A "scraper" whose IP is inside the module models the module's
        // own code: rule 3 grants it access.
        let inside = Scraper::user(0x0a00_0800);
        assert_eq!(inside.scan_word(&m, 666), vec![0x0805_0100]);
    }

    #[test]
    fn in_vm_scraper_program_finds_secret() {
        let mut m = machine_with_secret();
        let code = scraper_program(0x0900_0000, 0x0805_0000, 0x0805_0200, 666, 5);
        m.mem_mut().poke_bytes(0x0900_0000, &code).unwrap();
        // Scratch word for the store/write at r7.
        m.mem_mut().map(0x0930_0000, 0x1000, Perm::RW).unwrap();
        m.set_reg(Reg::R7, 0x0930_0000);
        m.set_ip(0x0900_0000);
        assert_eq!(m.run(2_000_000), RunOutcome::Halted(1));
        assert_eq!(m.io().output(5), &0x0805_0100u32.to_le_bytes());
    }

    #[test]
    fn in_vm_scraper_faults_against_pma() {
        let mut m = machine_with_secret();
        m.set_protection(Some(ProtectionMap::new(vec![ProtectedRegion::new(
            0x0a00_0000..0x0a00_1000,
            0x0805_0000..0x0805_1000,
            vec![0x0a00_0000],
        )])));
        let code = scraper_program(0x0900_0000, 0x0805_0000, 0x0805_0200, 666, 5);
        m.mem_mut().poke_bytes(0x0900_0000, &code).unwrap();
        m.mem_mut().map(0x0930_0000, 0x1000, Perm::RW).unwrap();
        m.set_reg(Reg::R7, 0x0930_0000);
        m.set_ip(0x0900_0000);
        let outcome = m.run(2_000_000);
        assert!(
            matches!(outcome, RunOutcome::Fault(Fault::Pma(_))),
            "scraper should fault on the protected region, got {outcome:?}"
        );
    }

    #[test]
    fn empty_needle_matches_nothing() {
        let m = machine_with_secret();
        assert!(Scraper::kernel().scan(&m, b"").is_empty());
    }
}
