//! Shellcode: small machine-code programs the attacker injects as data.
//!
//! Each builder assembles a self-contained routine for a given load
//! address (shellcode is position-dependent in this ISA, as addresses
//! are absolute). The classic payloads are provided: exit with a
//! marker, write a message to a channel, and exfiltrate a memory range
//! — the post-exploitation halves of the §III-B attacks.

use swsec_asm::assemble;
use swsec_vm::isa::sys;

/// Shellcode that exits the process with `code` — the minimal proof of
/// arbitrary code execution (an attacker-chosen exit code is observable
/// behaviour the source program cannot produce).
pub fn exit_shellcode(code: u32) -> Vec<u8> {
    let src = format!(
        "movi r0, {code:#x}\n\
         sys {exit}\n",
        exit = sys::EXIT
    );
    assemble(&src).expect("static shellcode assembles").bytes
}

/// Shellcode that writes `message` to channel `fd` and exits with
/// `code`. `base` is the address the shellcode will run at (needed to
/// reference its embedded message).
pub fn write_shellcode(base: u32, fd: u32, message: &[u8], code: u32) -> Vec<u8> {
    let escaped: String = message
        .iter()
        .map(|&b| match b {
            b'"' => "\\\"".to_string(),
            b'\\' => "\\\\".to_string(),
            b'\n' => "\\n".to_string(),
            0x20..=0x7e => (b as char).to_string(),
            _ => "\\0".to_string(), // non-printables collapse; fine for markers
        })
        .collect();
    let src = format!(
        ".org {base:#x}\n\
         movi r0, {fd:#x}\n\
         movi r1, msg\n\
         movi r2, {len:#x}\n\
         sys {write}\n\
         movi r0, {code:#x}\n\
         sys {exit}\n\
         msg: .ascii \"{escaped}\"\n",
        len = message.len(),
        write = sys::WRITE,
        exit = sys::EXIT,
    );
    assemble(&src).expect("static shellcode assembles").bytes
}

/// Shellcode that dumps `len` bytes starting at `addr` to channel `fd`
/// and exits — memory exfiltration (the machine-code half of an
/// information-leak attack).
pub fn dump_memory_shellcode(fd: u32, addr: u32, len: u32) -> Vec<u8> {
    let src = format!(
        "movi r0, {fd:#x}\n\
         movi r1, {addr:#x}\n\
         movi r2, {len:#x}\n\
         sys {write}\n\
         movi r0, 0\n\
         sys {exit}\n",
        write = sys::WRITE,
        exit = sys::EXIT,
    );
    assemble(&src).expect("static shellcode assembles").bytes
}

/// Shellcode that stores `value` to `addr` then exits with `code` —
/// the minimal data-corruption primitive.
pub fn poke_shellcode(addr: u32, value: u32, code: u32) -> Vec<u8> {
    let src = format!(
        "movi r1, {addr:#x}\n\
         movi r0, {value:#x}\n\
         store [r1], r0\n\
         movi r0, {code:#x}\n\
         sys {exit}\n",
        exit = sys::EXIT,
    );
    assemble(&src).expect("static shellcode assembles").bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_vm::mem::Perm;
    use swsec_vm::prelude::*;

    fn run_shellcode(bytes: &[u8], base: u32) -> (RunOutcome, Machine) {
        let mut m = Machine::new();
        m.mem_mut().map(base, 0x1000, Perm::RX).unwrap();
        m.mem_mut().poke_bytes(base, bytes).unwrap();
        m.set_ip(base);
        let outcome = m.run(10_000);
        (outcome, m)
    }

    #[test]
    fn exit_shellcode_exits_with_marker() {
        let (outcome, _) = run_shellcode(&exit_shellcode(0x1337), 0x4000);
        assert_eq!(outcome, RunOutcome::Halted(0x1337));
    }

    #[test]
    fn write_shellcode_emits_message() {
        let code = write_shellcode(0x4000, 1, b"PWNED", 7);
        let (outcome, m) = run_shellcode(&code, 0x4000);
        assert_eq!(outcome, RunOutcome::Halted(7));
        assert_eq!(m.io().output(1), b"PWNED");
    }

    #[test]
    fn dump_memory_shellcode_exfiltrates() {
        let mut m = Machine::new();
        m.mem_mut().map(0x4000, 0x1000, Perm::RX).unwrap();
        m.mem_mut().map(0x8000, 0x1000, Perm::RW).unwrap();
        m.mem_mut().poke_bytes(0x8000, b"secret-key-material").unwrap();
        let code = dump_memory_shellcode(2, 0x8000, 10);
        m.mem_mut().poke_bytes(0x4000, &code).unwrap();
        m.set_ip(0x4000);
        assert_eq!(m.run(10_000), RunOutcome::Halted(0));
        assert_eq!(m.io().output(2), b"secret-key");
    }

    #[test]
    fn poke_shellcode_corrupts_data() {
        let mut m = Machine::new();
        m.mem_mut().map(0x4000, 0x1000, Perm::RX).unwrap();
        m.mem_mut().map(0x8000, 0x1000, Perm::RW).unwrap();
        let code = poke_shellcode(0x8000, 0x0000_0001, 3);
        m.mem_mut().poke_bytes(0x4000, &code).unwrap();
        m.set_ip(0x4000);
        assert_eq!(m.run(10_000), RunOutcome::Halted(3));
        assert_eq!(m.mem().peek_u32(0x8000).unwrap(), 1);
    }

    #[test]
    fn shellcode_is_compact_enough_for_small_buffers() {
        // Exit shellcode must fit into the paper's 16-byte buffer.
        assert!(exit_shellcode(42).len() <= 16);
    }
}
