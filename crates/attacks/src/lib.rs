//! # swsec-attacks — the attack arsenal of §III-B and §IV
//!
//! Everything the paper's two attackers can do, as a library:
//!
//! * [`payload`] — overflow payload construction driven by compiled
//!   frame layouts (stack smashing, code-pointer overwrite, data-only);
//! * [`shellcode`] — injectable machine-code routines (direct code
//!   injection, memory exfiltration, data corruption);
//! * [`gadgets`] — ROP gadget discovery by misaligned linear sweep,
//!   plus interior-instruction location for the Figure 4 attack;
//! * [`rop`] — ROP chain and return-to-libc frame construction;
//! * [`scraper`] — memory-scraping malware at user and kernel
//!   privilege, both as a fast model and as real in-VM code.
//!
//! These tools are *constructive* on purpose: the countermeasure
//! experiments must demonstrate each attack succeeding on an
//! unprotected platform before showing the countermeasure stopping it.
//!
//! ```
//! use swsec_attacks::payload::Payload;
//!
//! let payload = Payload::new().pad(16, b'A').word(0x0804_8401).build();
//! assert_eq!(payload.len(), 20);
//! ```

#![warn(missing_docs)]

pub mod gadgets;
pub mod payload;
pub mod rop;
pub mod scraper;
pub mod shellcode;

pub use gadgets::{find_instr_addr, Gadget, GadgetFinder};
pub use payload::Payload;
pub use rop::RopChain;
pub use scraper::{scraper_program, ScrapePrivilege, Scraper};
